//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! `Mutex` whose `lock()` returns the guard directly (no `Result`) and a
//! `Condvar` that waits on that guard. Backed by `std::sync` with poison
//! recovery, which matches parking_lot's no-poisoning semantics closely
//! enough for our tuner/semaphore use (a panicking worker doesn't wedge
//! the lock for everyone else).

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            // detlint-unrelated: poison recovery keeps parking_lot's
            // "panic does not poison" behaviour.
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard wrapping `std::sync::MutexGuard` in an `Option` so `Condvar::wait`
/// can move the inner guard out and back (std's wait consumes the guard).
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present");
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let start = Instant::now();
        let mut done = m.lock();
        while !*done {
            let res = cv.wait_for(&mut done, Duration::from_secs(5));
            assert!(!res.timed_out() || *done || start.elapsed() < Duration::from_secs(5));
        }
        t.join().unwrap();
        assert!(*done);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
