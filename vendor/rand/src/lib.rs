//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. This shim keeps the same module paths (`rand::rngs::StdRng`,
//! `rand::SeedableRng`, `rand::Rng`) and the same *determinism contract*
//! (`seed_from_u64` yields a reproducible stream), but the underlying
//! generator is xoshiro256++ seeded via SplitMix64 rather than ChaCha12.
//! Nothing in the workspace depends on the exact stream, only on it being
//! stable for a given seed.
//!
//! Deliberately absent: `thread_rng`, `from_entropy`, `OsRng`, `random` —
//! every construction path requires an explicit seed, which is exactly the
//! property `detlint` rule DET003 enforces.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of `u64`/`u32` words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (same approach as
    /// upstream `rand`): reproducible across platforms and runs.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from the generator's raw words.
pub trait Standard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Integer-like types with uniform range sampling (Lemire-style rejection).
pub trait UniformInt: Copy {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8, i64, i32);

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling over the largest multiple of `span` below 2^64.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone || zone == u64::MAX {
            return v % span;
        }
    }
}

/// Ranges usable with [`Rng::gen_range`], mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end.to_u64().wrapping_sub(self.start.to_u64());
        T::from_u64(self.start.to_u64().wrapping_add(uniform_u64(rng, span)))
    }
}

impl<T: UniformInt + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let span = end.to_u64().wrapping_sub(start.to_u64()).wrapping_add(1);
        if span == 0 {
            // Full u64 domain.
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(start.to_u64().wrapping_add(uniform_u64(rng, span)))
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        // Sampling in [0,1) then scaling approaches but never returns
        // exactly `end`; close enough for the continuous uses here.
        start + f64::sample_standard(rng) * (end - start)
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        start + f32::sample_standard(rng) * (end - start)
    }
}

/// High-level sampling interface, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Different stream than upstream (ChaCha12), same contract:
    /// a given seed always produces the same sequence.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(word);
            }
            // Guard against the all-zero state (invalid for xoshiro).
            if s == [0; 4] {
                let mut sm = 0x1234_5678_9ABC_DEF0u64;
                for w in &mut s {
                    *w = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
        for _ in 0..200 {
            let v = rng.gen_range(3..=4u64);
            assert!(v == 3 || v == 4);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    fn takes_dyn(rng: &mut (impl Rng + ?Sized)) -> f64 {
        rng.gen()
    }

    #[test]
    fn works_through_generic_and_reborrow() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = takes_dyn(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
