//! Offline stand-in for the subset of `criterion` 0.5 this workspace uses.
//!
//! Measures with plain `std::time::Instant` sampling and prints a one-line
//! mean/min per benchmark — none of criterion's statistics, HTML reports,
//! or regression detection. Benchmarks remain runnable via `cargo bench`
//! and compile under `cargo test --benches`; when the harness receives
//! `--test` (cargo's "compile-check benches during test" mode) each
//! routine runs exactly once.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// iteration regardless; the variants exist for signature compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: if self.test_mode {
                Duration::ZERO // one iteration per sample loop below
            } else {
                self.measurement_time
            },
            warm_up: if self.test_mode {
                Duration::ZERO
            } else {
                self.warm_up_time
            },
            sample_size: if self.test_mode { 1 } else { self.sample_size },
        };
        f(&mut bencher);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{id:<44} (no samples)");
            return self;
        }
        let mean = samples.iter().map(|d| d.as_secs_f64()).sum::<f64>() / samples.len() as f64;
        let min = samples
            .iter()
            .map(Duration::as_secs_f64)
            .fold(f64::INFINITY, f64::min);
        println!(
            "{id:<44} mean {:>12} min {:>12} ({} samples)",
            format_time(mean),
            format_time(min),
            samples.len()
        );
        self
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    warm_up: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Run until the per-bench budget is spent, in `sample_size` samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let per_sample = self.budget.div_f64(self.sample_size.max(1) as f64);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let mut iters = 0u32;
            loop {
                black_box(routine());
                iters += 1;
                if start.elapsed() >= per_sample {
                    break;
                }
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    /// Like `iter` but with per-iteration setup excluded from timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.warm_up;
        loop {
            let input = setup();
            black_box(routine(input));
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let per_sample = self.budget.div_f64(self.sample_size.max(1) as f64);
        for _ in 0..self.sample_size {
            let mut timed = Duration::ZERO;
            let mut iters = 0u32;
            loop {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                timed += start.elapsed();
                iters += 1;
                if timed >= per_sample {
                    break;
                }
            }
            self.samples.push(timed / iters);
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3));
        c.test_mode = false;
        let mut runs = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs >= 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::ZERO)
            .measurement_time(Duration::from_millis(2));
        c.test_mode = false;
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u64; 8]
                },
                |v| {
                    runs += 1;
                    v.iter().sum::<u64>()
                },
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, runs); // exactly one setup per routine call
        assert!(runs >= 2);
    }
}
