//! Value-generation strategies (generation-only; no shrink trees).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value` from the test RNG.
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let source = Rc::new(self);
        BoxedStrategy(Rc::new(move |rng| source.gen_value(rng)))
    }

    /// Build recursive structures: at each of `depth` levels the result is
    /// an even choice between a leaf (`self`) and one application of `f`
    /// to the previous level, which bounds nesting at `depth`.
    /// `_desired_size`/`_expected_branch` are accepted for upstream
    /// signature compatibility; size is already bounded by the collection
    /// strategies `f` composes.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let deeper = f(level).boxed();
            level = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        level
    }
}

/// Type-erased, cheaply clonable strategy (`Rc`-backed; single-threaded
/// like the upstream value tree, which is fine inside one test fn).
pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.gen_value(rng))
    }
}

/// Uniform choice between strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].gen_value(rng)
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(usize, u8, u16, u32, u64, i32, i64, f32, f64);

/// Regex-lite string patterns: `"[a-z][a-z0-9_]{0,8}"` etc. (see
/// [`crate::string`] for the supported grammar).
impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
