//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! The build container cannot fetch crates, so this shim reimplements the
//! pieces our property tests rely on: the `proptest!` macro, `Strategy`
//! with `prop_map`/`prop_recursive`/`boxed`, `prop_oneof!`, `Just`,
//! `any::<T>()`, `prop::collection::vec`, numeric-range and string-pattern
//! strategies, and `prop_assert*`. Differences from upstream, on purpose:
//!
//! * **No shrinking.** A failing case reports its case index and message
//!   but is not minimized.
//! * **Deterministic by construction.** The per-test RNG is seeded from a
//!   hash of the test's module path + name, so failures reproduce exactly
//!   — which is the property this workspace's detlint pass cares about.
//! * Case count comes from `ProptestConfig` (default 256, overridable via
//!   the `PROPTEST_CASES` environment variable, as upstream).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop` (module alias used as
    /// `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    lhs,
                    rhs,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fail the current test case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: `{:?}` == `{:?}`", lhs, rhs);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests. Mirrors upstream syntax:
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn holds(x in 0u64..100, v in prop::collection::vec(any::<bool>(), 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::gen_value(&($strategy), &mut rng);
                )*
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body;
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "{} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..10, 10u64..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..7, y in -2i64..=2, f in 0.25f64..0.75) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_and_tuples(v in prop::collection::vec(any::<bool>(), 2..5), p in pair()) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(p.0 < 10 && p.1 >= 10);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u64), (5u64..8).prop_map(|x| x * 10)]) {
            prop_assert!(v == 1 || (50..80).contains(&v), "got {v}");
        }

        #[test]
        fn string_patterns_match_shape(s in "[a-z][a-z0-9_]{0,8}", t in "[ ]{2,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(t.chars().all(|c| c == ' ') && (2..=4).contains(&t.len()));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let strat = any::<i64>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::TestRng::deterministic("recursive");
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        for _ in 0..50 {
            let t = strat.gen_value(&mut rng);
            assert!(depth(&t) <= 7);
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        use rand::Rng;
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }
}
