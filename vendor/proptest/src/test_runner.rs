//! Runner configuration, deterministic test RNG, and case errors.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Subset of upstream `ProptestConfig`: only the case count matters to a
/// generation-only runner.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG, seeded from a hash of the test's full path
/// so every run (and every machine) generates the same cases.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A failed property case (carried by `prop_assert*` early returns).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}
