//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Element-count specification: exact size, `lo..hi`, or `lo..=hi`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` of values from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}
