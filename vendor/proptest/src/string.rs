//! Regex-lite string generation for `&str` strategies.
//!
//! Supported grammar (the subset our tests use):
//!
//! * character classes `[...]` containing literals, `\`-escapes
//!   (`\n`, `\t`, `\\`, `\-`, ...) and ranges like `a-z` or ` -~`
//! * literal characters outside classes (same escapes)
//! * an optional `{m}` / `{m,n}` repetition after any atom
//!   (regex semantics: both bounds inclusive)

use crate::test_runner::TestRng;
use rand::Rng;

struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => {
                // Decode class members first (escape-aware), then fold
                // unescaped `-` between two members into a range.
                let mut members: Vec<(char, bool)> = Vec::new();
                loop {
                    match chars.next() {
                        None => panic!("unterminated [class] in pattern {pattern:?}"),
                        Some(']') => break,
                        Some('\\') => {
                            let esc = chars
                                .next()
                                .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                            members.push((unescape(esc), true));
                        }
                        Some(m) => members.push((m, false)),
                    }
                }
                let mut set = Vec::new();
                let mut i = 0;
                while i < members.len() {
                    if i + 2 < members.len() && members[i + 1] == ('-', false) {
                        let (lo, hi) = (members[i].0, members[i + 2].0);
                        assert!(lo <= hi, "inverted range {lo}-{hi} in {pattern:?}");
                        set.extend(lo..=hi);
                        i += 3;
                    } else {
                        set.push(members[i].0);
                        i += 1;
                    }
                }
                set
            }
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                vec![unescape(esc)]
            }
            lit => vec![lit],
        };
        // Optional {m} / {m,n} repetition.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    None => panic!("unterminated {{m,n}} in pattern {pattern:?}"),
                    Some('}') => break,
                    Some(d) => spec.push(d),
                }
            }
            let mut parts = spec.splitn(2, ',');
            let m: usize = parts
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad repetition {spec:?} in {pattern:?}"));
            let n = match parts.next() {
                None => m,
                Some(hi) => hi
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repetition {spec:?} in {pattern:?}")),
            };
            (m, n)
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in {pattern:?}");
        assert!(!choices.is_empty(), "empty [class] in {pattern:?}");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let count = rng.gen_range(atom.min..=atom.max);
        for _ in 0..count {
            out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::test_runner::TestRng;

    #[test]
    fn class_ranges_and_literals() {
        let mut rng = TestRng::deterministic("string");
        for _ in 0..100 {
            let s = super::generate("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!((1..=9).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn printable_ascii_with_newline() {
        let mut rng = TestRng::deterministic("string2");
        for _ in 0..50 {
            let s = super::generate("[ -~\n]{0,200}", &mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn escaped_dash_is_literal() {
        let mut rng = TestRng::deterministic("string3");
        for _ in 0..50 {
            let s = super::generate("[a-c\\- ]{1,8}", &mut rng);
            assert!(s
                .chars()
                .all(|c| ('a'..='c').contains(&c) || c == '-' || c == ' '));
        }
    }

    #[test]
    fn bare_literals_repeat() {
        let mut rng = TestRng::deterministic("string4");
        let s = super::generate("ab{3}c", &mut rng);
        assert_eq!(s, "abbbc");
    }
}
