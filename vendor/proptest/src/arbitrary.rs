//! `any::<T>()` for the primitive types the workspace's tests use.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u32()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u32() as i32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range; avoids NaN/inf which
        // upstream `any::<f64>()` also excludes by default.
        let mantissa: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let exp = rng.gen_range(-64i32..64) as f64;
        mantissa * exp.exp2()
    }
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
