//! Offline stand-in for `crossbeam::thread::scope`, implemented over
//! `std::thread::scope` (stable since 1.63). Preserves the piece of the
//! crossbeam contract this workspace relies on: `scope(..)` returns
//! `Err(payload)` when a spawned thread panics instead of propagating the
//! panic, and spawn closures receive a `&Scope` they can ignore.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    type Payload = Box<dyn Any + Send + 'static>;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        panics: Arc<Mutex<Vec<Payload>>>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives a `&Scope` (like
        /// crossbeam) so nested spawns are possible; a panic inside the
        /// closure is captured and surfaced as the scope's `Err` result.
        pub fn spawn<F, T>(&self, f: F)
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let child = Scope {
                inner: self.inner,
                panics: self.panics.clone(),
            };
            let panics = self.panics.clone();
            self.inner.spawn(move || {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&child))) {
                    panics
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(payload);
                }
            });
        }
    }

    /// Run `f` with a scope handle; join all spawned threads before
    /// returning. `Err` carries the first captured panic payload.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let panics: Arc<Mutex<Vec<Payload>>> = Arc::new(Mutex::new(Vec::new()));
        let result = std::thread::scope(|s| {
            let wrapper = Scope {
                inner: s,
                panics: panics.clone(),
            };
            catch_unwind(AssertUnwindSafe(|| f(&wrapper)))
        });
        // All scoped threads are joined by now, so we hold the only Arc.
        let mut captured = panics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match result {
            Err(payload) => Err(payload),
            Ok(value) => {
                if captured.is_empty() {
                    Ok(value)
                } else {
                    Err(captured.remove(0))
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn joins_all_threads() {
            let counter = AtomicUsize::new(0);
            super::scope(|scope| {
                for _ in 0..8 {
                    scope.spawn(|_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        }

        #[test]
        fn child_panic_becomes_err() {
            let res = super::scope(|scope| {
                scope.spawn(|_| panic!("boom"));
            });
            let payload = res.expect_err("child panic must surface as Err");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
            assert_eq!(msg, "boom");
        }

        #[test]
        fn nested_spawn_works() {
            let counter = AtomicUsize::new(0);
            super::scope(|scope| {
                scope.spawn(|inner| {
                    inner.spawn(|_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                });
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 1);
        }
    }
}
