//! The Fig. 4 (right) placement problem solved *properly* multi-objective:
//! instead of sweeping scalarization weights (see `continuum_placement`),
//! NSGA-II recovers the whole cost/latency Pareto front in one run.
//!
//! ```sh
//! cargo run --release --example pareto_placement
//! ```

use e2clab::metrics::Table;
use e2clab::net::{LinkSpec, Topology};
use e2clab::optim::{Nsga2, Space};

const LAYERS: [&str; 3] = ["edge", "fog", "cloud"];
const SPEED: [f64; 3] = [0.25, 0.6, 1.0];
const EGRESS_COST: [f64; 3] = [0.0, 0.02, 0.08];
const STAGE_WORK: [f64; 3] = [0.05, 0.25, 0.4];
const STAGE_INPUT_MB: [f64; 3] = [2.0, 0.5, 0.1];

fn topology() -> Topology {
    let mut t = Topology::new();
    t.constrain("edge", "fog", LinkSpec::new(10.0, 400.0));
    t.constrain("fog", "cloud", LinkSpec::new(40.0, 1_000.0));
    t.constrain("edge", "cloud", LinkSpec::new(50.0, 300.0));
    t
}

fn latency(p: &[f64], topo: &Topology) -> f64 {
    let mut total = 0.0;
    let mut here = "edge";
    for (stage, &placement) in p.iter().enumerate() {
        let layer = LAYERS[placement as usize];
        let bytes = (STAGE_INPUT_MB[stage] * 1e6) as u64;
        if here != layer {
            total += topo.transfer_secs(here, layer, bytes);
        }
        total += STAGE_WORK[stage] / SPEED[placement as usize];
        here = layer;
    }
    if here != "edge" {
        total += topo.rtt_secs(here, "edge") / 2.0;
    }
    total
}

fn comm_cost(p: &[f64]) -> f64 {
    let mut cost = 0.0;
    let mut here = 0usize;
    for (stage, &placement) in p.iter().enumerate() {
        let to = placement as usize;
        if to != here {
            cost += STAGE_INPUT_MB[stage] / 1e3 * EGRESS_COST[to.max(here)];
        }
        here = to;
    }
    cost * 1e3
}

fn main() {
    let topo = topology();
    let space = Space::new()
        .int("preprocess", 0, 2)
        .int("extract", 0, 2)
        .int("search", 0, 2);

    println!("Fig. 4 (right) as a true multi-objective problem — NSGA-II Pareto front\n");
    let mut nsga = Nsga2::new(17);
    let mut f = |p: &[f64]| vec![latency(p, &topo), comm_cost(p)];
    let mut front = nsga.minimize(&space, &mut f, 60);
    front.sort_by(|a, b| {
        a.objectives[0]
            .partial_cmp(&b.objectives[0])
            .expect("finite objectives")
    });

    let mut table = Table::new([
        "placement(pre,extract,search)",
        "latency(s)",
        "comm_cost(m$)",
    ]);
    for sol in &front {
        table.row([
            format!(
                "({},{},{})",
                LAYERS[sol.x[0] as usize], LAYERS[sol.x[1] as usize], LAYERS[sol.x[2] as usize]
            ),
            format!("{:.3}", sol.objectives[0]),
            format!("{:.2}", sol.objectives[1]),
        ]);
    }
    print!("{table}");
    println!(
        "\n{} non-dominated placements: the front runs from all-edge (zero egress, slow cores)",
        front.len()
    );
    println!("to cloud-heavy (fast cores, paid egress) — the decision the methodology hands back to the operator.");
}
