//! The paper's Listing 1, in Rust: a user-defined optimization of the
//! Pl@ntNet Identification Engine thread pools, driven through the tune
//! layer directly (SkOptSearch + ConcurrencyLimiter + AsyncHyperBand).
//!
//! ```sh
//! cargo run --release --example plantnet_tuning
//! ```

use e2clab::des::SimTime;
use e2clab::optim::{Acquisition, BayesOpt, InitialDesign, SurrogateKind};
use e2clab::plantnet::sim::{Experiment, ExperimentSpec};
use e2clab::plantnet::PoolConfig;
use e2clab::tune::searcher::{ConcurrencyLimiter, SkOptSearch};
use e2clab::tune::tuner::{Mode, Tuner};
use e2clab::tune::AsyncHyperBand;
use std::sync::Arc;

fn main() {
    // Listing 1, lines 6-11: the search algorithm.
    let algo = SkOptSearch::new(
        BayesOpt::new(PoolConfig::space(), 2021)
            .base_estimator(SurrogateKind::ExtraTrees) // base_estimator='ET'
            .n_initial_points(10) // n_initial_points
            .initial_point_generator(InitialDesign::Lhs) // "lhs"
            .acq_func(Acquisition::GpHedge), // acq_func="gp_hedge"
    );
    // Listing 1, line 12: ConcurrencyLimiter(algo, max_concurrent=2).
    let algo = ConcurrencyLimiter::new(algo, 2);
    // Listing 1, line 13: AsyncHyperBandScheduler().
    let scheduler = Arc::new(AsyncHyperBand::new(2, 2, 8));

    // Listing 1, lines 14-26: tune.run(...).
    let tuner = Tuner::new(24, 2, Mode::Min)
        .metric("user_resp_time")
        .name("plantnet_engine");
    let analysis = tuner.run(Box::new(algo), scheduler, |point, ctx| {
        // Listing 1, lines 28-36: run_objective — deploy the configuration
        // and report the metric. We report once per 30 simulated seconds
        // so AsyncHyperBand can cut hopeless configurations early.
        let cfg = PoolConfig::from_point(point);
        let mut spec = ExperimentSpec::quick(cfg, 80);
        spec.duration = SimTime::from_secs(30);
        spec.warmup = SimTime::from_secs(5);
        let mut last = f64::INFINITY;
        for epoch in 0..8u64 {
            let m = Experiment::run(spec, 500 + ctx.trial_id * 16 + epoch);
            last = m.response.mean;
            if ctx.report(last) == e2clab::tune::Decision::Stop {
                break;
            }
        }
        last
    });

    println!(
        "{} trials, {} stopped early by AsyncHyperBand",
        analysis.trials().len(),
        analysis.stopped_early_count()
    );
    let best = analysis.best_trial().expect("successful trial");
    let cfg = PoolConfig::from_point(&best.config);
    println!(
        "best configuration: {cfg}  ->  user_resp_time {:.3} s",
        best.value().expect("finished")
    );
    println!(
        "paper (Table III): http=54 download=54 extract=7 simsearch=53 -> 2.484 s at 80 requests"
    );
}
