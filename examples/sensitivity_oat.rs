//! One-at-a-time sensitivity analysis around an optimum (§IV-C): vary the
//! Extract and Simsearch pools around the preliminary optimum, evaluate
//! every variant, and report per-variable effects — plus a Morris
//! elementary-effects screening over the whole space as the "which knob
//! matters at all" pre-analysis.
//!
//! ```sh
//! cargo run --release --example sensitivity_oat
//! ```

use e2clab::des::SimTime;
use e2clab::metrics::Table;
use e2clab::optim::{morris, oat_effects, OatPlan};
use e2clab::plantnet::sim::{Experiment, ExperimentSpec};
use e2clab::plantnet::PoolConfig;

fn evaluate(point: &[f64], seed: u64) -> f64 {
    let cfg = PoolConfig::from_point(point);
    let mut spec = ExperimentSpec::quick(cfg, 80);
    spec.duration = SimTime::from_secs(120);
    spec.warmup = SimTime::from_secs(20);
    Experiment::run(spec, seed).response.mean
}

fn main() {
    let space = PoolConfig::space();
    let center = PoolConfig::preliminary_optimum().to_point();

    // The paper's plan: extract ±2 (dim 3), simsearch ±3 (dim 2).
    let plan = OatPlan::around(&space, &center, &[(3, 2.0), (2, 3.0)]);
    println!(
        "OAT around {} — {} configurations",
        PoolConfig::preliminary_optimum(),
        plan.len()
    );

    let outputs: Vec<f64> = plan
        .configurations()
        .iter()
        .map(|p| evaluate(p, 42))
        .collect();

    let mut table = Table::new([
        "variable",
        "center_resp(s)",
        "best_value",
        "best_resp(s)",
        "range(s)",
    ]);
    for effect in oat_effects(&plan, &outputs) {
        table.row([
            space.names()[effect.dim].clone(),
            format!("{:.3}", effect.center_output),
            format!("{}", effect.best.0),
            format!("{:.3}", effect.best.1),
            format!("{:.3}", effect.range),
        ]);
    }
    print!("{table}");

    // Morris screening across all four pools.
    println!("\nMorris elementary effects (8 trajectories):");
    let mut f = |p: &[f64]| evaluate(p, 77);
    let effects = morris(&space, &mut f, 8, 3);
    let mut morris_table = Table::new(["variable", "mu_star", "sigma"]);
    for (name, (mu, sigma)) in space.names().iter().zip(effects) {
        morris_table.row([name.clone(), format!("{mu:.3}"), format!("{sigma:.3}")]);
    }
    print!("{morris_table}");
    println!("\nexpect: http and extract dominate (admission + GPU/CPU bottleneck); download barely matters");
}
