//! Fig. 4 (right): "where should the workflow components be executed to
//! minimize communication costs and end-to-end latency?" — a
//! multi-objective placement problem over the continuum, solved with the
//! Eq. 1 formalization plus a metaheuristic, using the network topology
//! substrate for the cost model.
//!
//! Three pipeline stages (preprocess → extract → search) must each be
//! placed on edge, fog or cloud. Placing compute close to the user cuts
//! latency but edge/fog resources are slower and moving intermediate data
//! across layers costs bandwidth.
//!
//! ```sh
//! cargo run --release --example continuum_placement
//! ```

use e2clab::metrics::Table;
use e2clab::net::{LinkSpec, Topology};
use e2clab::optim::{DifferentialEvolution, Metaheuristic, OptimizationProblem, Sense, Space};

const LAYERS: [&str; 3] = ["edge", "fog", "cloud"];
/// Relative compute speed per layer (cloud GPUs are fast, edge is slow).
const SPEED: [f64; 3] = [0.25, 0.6, 1.0];
/// $/GB-equivalent transfer price of moving data *up* to each layer.
const EGRESS_COST: [f64; 3] = [0.0, 0.02, 0.08];
/// Work per stage (seconds at cloud speed) and data volume flowing into
/// it (MB): preprocess / extract / search.
const STAGE_WORK: [f64; 3] = [0.05, 0.25, 0.4];
const STAGE_INPUT_MB: [f64; 3] = [2.0, 0.5, 0.1];

fn topology() -> Topology {
    let mut t = Topology::new();
    t.constrain("edge", "fog", LinkSpec::new(10.0, 400.0));
    t.constrain("fog", "cloud", LinkSpec::new(40.0, 1_000.0));
    t.constrain("edge", "cloud", LinkSpec::new(50.0, 300.0));
    t
}

/// End-to-end latency of a placement (stages run where `p` says; data
/// moves between consecutive stages' layers, starting from the user at
/// the edge).
fn latency(p: &[f64], topo: &Topology) -> f64 {
    let mut total = 0.0;
    let mut here = "edge";
    for (stage, &placement) in p.iter().enumerate() {
        let layer = LAYERS[placement as usize];
        let bytes = (STAGE_INPUT_MB[stage] * 1e6) as u64;
        if here != layer {
            total += topo.transfer_secs(here, layer, bytes);
        }
        total += STAGE_WORK[stage] / SPEED[placement as usize];
        here = layer;
    }
    // The response returns to the user at the edge.
    if here != "edge" {
        total += topo.rtt_secs(here, "edge") / 2.0;
    }
    total
}

/// Communication cost of a placement (egress pricing on moved data).
fn comm_cost(p: &[f64]) -> f64 {
    let mut cost = 0.0;
    let mut here = 0usize; // edge
    for (stage, &placement) in p.iter().enumerate() {
        let to = placement as usize;
        if to != here {
            cost += STAGE_INPUT_MB[stage] / 1e3 * EGRESS_COST[to.max(here)];
        }
        here = to;
    }
    cost * 1e3 // milli-dollars per request, for readable numbers
}

fn main() {
    let topo = std::sync::Arc::new(topology());
    let space = Space::new()
        .int("preprocess", 0, 2)
        .int("extract", 0, 2)
        .int("search", 0, 2);

    println!("Fig. 4 (right) — multi-objective placement: min communication cost AND latency\n");
    let mut table = Table::new([
        "latency_weight",
        "placement(pre,extract,search)",
        "latency(s)",
        "comm_cost(m$)",
    ]);
    // Sweep the scalarization weight to trace the trade-off curve.
    for (w_latency, w_cost) in [(1.0, 0.0), (1.0, 1.0), (1.0, 5.0), (1.0, 25.0), (0.0, 1.0)] {
        let topo_obj = topo.clone();
        let topo_con = topo.clone();
        let problem =
            OptimizationProblem::single(space.clone(), "latency", Sense::Minimize, move |p| {
                latency(p, &topo_obj)
            })
            .and_objective("comm_cost", Sense::Minimize, comm_cost)
            // The paper's example constraint: response time below a bound.
            .subject_to(move |p| latency(p, &topo_con) - 3.0);

        let mut de = DifferentialEvolution::new(11);
        let mut objective = |p: &[f64]| problem.penalized(p, Some(&[w_latency, w_cost]));
        let result = de.minimize(&space, &mut objective, 2000);
        let p = space.sanitize(&result.best_x);
        table.row([
            format!("{w_latency}:{w_cost}"),
            format!(
                "({},{},{})",
                LAYERS[p[0] as usize], LAYERS[p[1] as usize], LAYERS[p[2] as usize]
            ),
            format!("{:.3}", latency(&p, &topo)),
            format!("{:.2}", comm_cost(&p)),
        ]);
    }
    print!("{table}");
    println!("\nlatency-dominated weights push compute to the cloud (fast cores);");
    println!("cost-dominated weights keep everything at the edge (no egress).");
}
