//! Quickstart: define an experiment from a configuration document, deploy
//! it on the simulated Grid'5000 testbed, run a small optimization cycle
//! and print the Phase III summary.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use e2clab::conf::schema::ExperimentConf;
use e2clab::core::{Experiment as FrameworkExperiment, OptimizationManager};
use e2clab::plantnet::sim::{Experiment, ExperimentSpec};
use e2clab::plantnet::PoolConfig;
use e2clab::testbed::grid5000;

const CONF: &str = r#"
name: quickstart
layers:
  - name: cloud
    services:
      - name: engine
        cluster: chifflot
        quantity: 1
  - name: edge
    services:
      - name: clients
        cluster: gros
        quantity: 4
network:
  - src: edge
    dst: cloud
    delay_ms: 5.0
    rate_mbps: 10000
optimization:
  metric: user_resp_time
  mode: min
  name: quickstart-tuning
  num_samples: 12
  max_concurrent: 4
  search:
    algo: extra_trees
    n_initial_points: 6
    initial_point_generator: lhs
    acq_func: gp_hedge
  config:
    - name: http
      type: randint
      bounds: [20, 60]
    - name: download
      type: randint
      bounds: [20, 60]
    - name: simsearch
      type: randint
      bounds: [20, 60]
    - name: extract
      type: randint
      bounds: [3, 9]
"#;

fn main() {
    // Phase I: parse and validate the experiment definition.
    let doc = e2clab::conf::parse(CONF).expect("configuration parses");
    let conf = ExperimentConf::from_value(&doc).expect("configuration validates");

    // Deploy on the simulated testbed (reservation + network emulation).
    let mut exp = FrameworkExperiment::new(conf.clone(), grid5000::paper_testbed());
    exp.deploy().expect("deployment succeeds");
    println!("--- deployed scenario ---\n{}", exp.describe());

    // Phase II: the optimization cycle over the Pl@ntNet engine model.
    // Short runs keep the example under a minute; the bench harness runs
    // the full 1380 s protocol.
    let manager = OptimizationManager::new(conf.optimization.expect("present")).with_seed(7);
    let summary = manager.run(|ctx| {
        let cfg = PoolConfig::from_point(&ctx.point);
        let mut spec = ExperimentSpec::quick(cfg, 80);
        spec.duration = e2clab::des::SimTime::from_secs(90);
        spec.warmup = e2clab::des::SimTime::from_secs(15);
        Experiment::run(spec, 10_000 + ctx.trial_id).response.mean
    });
    let summary = summary.expect("optimization run");

    // Phase III: the reproducibility summary.
    println!("--- optimization summary ---\n{}", summary.render());

    let baseline = Experiment::run(ExperimentSpec::quick(PoolConfig::baseline(), 80), 1);
    println!(
        "baseline response: {:.3} s — found configuration improves it by {:.1}%",
        baseline.response.mean,
        (1.0 - summary.best_value.expect("successful run") / baseline.response.mean) * 100.0
    );
}
