//! Drive the *real-thread* engine backend: the same pipeline and pool
//! semantics as the simulator, but on actual OS threads with real blocking
//! semaphores — then cross-check that the DES and the real threads agree
//! on who wins between two configurations.
//!
//! ```sh
//! cargo run --release --example realtime_engine
//! ```

use e2clab::metrics::Table;
use e2clab::plantnet::rt::RtEngine;
use e2clab::plantnet::sim::{Experiment, ExperimentSpec};
use e2clab::plantnet::PoolConfig;

fn main() {
    // 100x time compression keeps the example quick while preserving the
    // pool-contention structure.
    let scale = 0.01;
    let clients = 24;
    let requests_per_client = 4;

    println!(
        "real-thread engine: {clients} client threads x {requests_per_client} requests, time scale {scale}\n"
    );

    let mut table = Table::new([
        "config",
        "rt_resp(s, model time)",
        "des_resp(s)",
        "agreement",
    ]);
    let configs = [
        ("baseline", PoolConfig::baseline()),
        (
            "starved extract",
            PoolConfig {
                extract: 2,
                ..PoolConfig::baseline()
            },
        ),
        (
            "tiny admission",
            PoolConfig {
                http: 6,
                ..PoolConfig::baseline()
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, cfg) in configs {
        let rt = RtEngine::new(cfg, scale).run(clients, requests_per_client, 7);
        let mut spec = ExperimentSpec::quick(cfg, clients);
        spec.duration = e2clab::des::SimTime::from_secs(60);
        spec.warmup = e2clab::des::SimTime::from_secs(5);
        let des = Experiment::run(spec, 7);
        rows.push((name, rt.response.mean, des.response.mean));
    }
    // Agreement = do both backends rank the configurations identically?
    let mut rt_rank: Vec<usize> = (0..rows.len()).collect();
    rt_rank.sort_by(|&a, &b| rows[a].1.partial_cmp(&rows[b].1).expect("finite"));
    let mut des_rank: Vec<usize> = (0..rows.len()).collect();
    des_rank.sort_by(|&a, &b| rows[a].2.partial_cmp(&rows[b].2).expect("finite"));
    let agree = rt_rank == des_rank;
    for (name, rt, des) in &rows {
        table.row([
            name.to_string(),
            format!("{rt:.3}"),
            format!("{des:.3}"),
            if agree { "same ranking" } else { "DIFFERENT" }.to_string(),
        ]);
    }
    print!("{table}");
    println!(
        "\nboth backends must rank the configurations identically: {}",
        if agree { "yes" } else { "NO — investigate!" }
    );
}
