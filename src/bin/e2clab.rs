//! The `e2clab` command-line interface.
//!
//! Mirrors the workflow the paper demonstrates, including the repeatability
//! command it quotes verbatim ("*one may repeat those experiments easily by
//! issuing: `e2clab optimize --repeat 6 --duration 1380 ...`*"):
//!
//! ```text
//! e2clab validate <conf.yaml>
//!     Parse and validate an experiment configuration.
//! e2clab deploy <conf.yaml>
//!     Dry-run deployment: reserve nodes on the simulated Grid'5000
//!     testbed, apply network emulation, print the scenario.
//! e2clab optimize [--repeat N] [--duration SECS] [--seed S]
//!                 [--archive DIR] [--faults SPEC] [--trace DIR]
//!                 [--replay-check] [--journal DIR | --resume DIR]
//!                 [--crash-at N] <conf.yaml>
//!     Run the optimization cycle of the configuration's `optimization`
//!     section against the Pl@ntNet engine model and print the Phase III
//!     summary. `--faults` injects deterministic trial failures for
//!     testing the retry layer, e.g.
//!     `--faults "fail:2@0;delay:4:500;nan:5"` (fail trial 2's first
//!     attempt, delay trial 4 by 500 ms, make trial 5 return NaN).
//!     `--trace DIR` records the deterministic structured event log
//!     (worker lifecycle, scheduler rung decisions, searcher ask/tell,
//!     DES batches, engine queue depths) to `DIR/trace.jsonl`, plus
//!     Prometheus text snapshots: `DIR/metrics.prom` for the cycle and
//!     `DIR/cycles/cycle_<trial>.prom` per evaluated trial.
//!     `--replay-check` runs the same seeded cycle twice (at the
//!     configured `max_concurrent` — the commit sequencer makes even
//!     concurrent cycles replay bit-exactly) and byte-diffs
//!     `evaluations.csv` and `trials/trials.jsonl` — and, with `--trace`,
//!     every trace artifact — between the two runs: a self-check that the
//!     run is actually replayable.
//!     `--journal DIR` makes the run crash-safe: every searcher ask/tell,
//!     scheduler decision and attempt outcome is appended (fsync'd) to a
//!     write-ahead log in `DIR` before taking effect; `--resume DIR`
//!     continues a killed run from its journal (replaying the decision
//!     sequence deterministically) and converges on byte-identical
//!     artifacts; `--crash-at N` is the chaos knob — the process exits
//!     (code 86) right after the Nth journal append of this process.
//!     Journaled runs execute trials on up to `max_concurrent` workers;
//!     effects commit in canonical ask order, so resume is deterministic
//!     at any concurrency.
//!     `--workers N` farms evaluations out to N `e2clab worker` child
//!     processes over a framed stdio protocol. The commit sequencer is
//!     unchanged, so every artifact is byte-identical to an in-process
//!     run — even when workers are killed mid-trial (the supervisor
//!     detects the loss, respawns with seeded backoff and re-dispatches
//!     the ask transparently). `--kill-worker W@N` is the matching chaos
//!     knob: SIGKILL worker W after its Nth dispatched ask.
//! e2clab worker [--repeat N] [--duration SECS] [--clients N]
//!               [--builtin quad]
//!     Farm child process (spawned by `optimize --workers`): speaks the
//!     length-prefixed, CRC-framed protocol on stdin/stdout and runs one
//!     engine evaluation per ask. `--builtin quad` swaps in a cheap
//!     deterministic quadratic objective for tests and benches.
//! e2clab serve --out DIR [--scale USERS_PER_DAY] [--epochs N]
//!              [--epoch-duration SECS] [--samples N] [--concurrent N]
//!              [--slo SECS] [--queue-bound N] [--shed-after SECS]
//!              [--seed S] [--first-year Y] [--replay-check]
//!              [--journal DIR | --resume DIR] [--crash-at N]
//!              [--crash-at-epoch K]
//!     Open-loop serving mode with continuous re-optimization: replay
//!     the Fig. 2 seasonal growth curve scaled to `--scale` users/day as
//!     a piecewise-constant arrival schedule (one epoch per trace
//!     month), and re-run the seeded optimization cycle per epoch under
//!     overload semantics (admission queue bounded at `--queue-bound`,
//!     deadline shedding after `--shed-after` seconds, `--slo` response
//!     bound). Writes `DIR/serving.csv` (one row per epoch: offered /
//!     admitted / rejected / shed / SLO violations plus the tuned pool
//!     config), `DIR/trace.jsonl` and a full per-epoch archive under
//!     `DIR/epochs/epoch_NN/`. `--journal` makes the run crash-safe
//!     (per-epoch journals plus a serving-level WAL of rendered CSV
//!     rows); `--resume` continues a killed run to byte-identical
//!     artifacts; `--crash-at N` kills mid-epoch after the Nth journal
//!     append, `--crash-at-epoch K` kills at the epoch-K boundary (both
//!     exit 86). `--replay-check` runs the whole serving loop twice and
//!     byte-diffs serving.csv, trace.jsonl and every epoch archive.
//! e2clab report <archive-dir>
//!     Re-print the summary of a previously written archive.
//! e2clab trace summarize <dir|trace.jsonl>
//!     Render a recorded trace as per-phase breakdowns and per-trial
//!     critical paths (ask -> execute -> tell, in virtual-time units).
//! e2clab lint [--config FILE] [--format text|json|sarif] [--out FILE]
//!             [--baseline FILE] [--update-baseline] [--no-baseline] [root]
//!     Run the detlint static-analysis pass — determinism (DET001–005),
//!     crash-safety panics (PANIC001–003), non-atomic artifact I/O
//!     (IO001–002), blocking-under-lock (LOCK001) and stale suppressions
//!     (SUP001) — over every `.rs` file under `root` (default: this
//!     workspace). Findings recorded in the committed baseline
//!     (`<root>/lint.baseline`, override with `--baseline`) are reported
//!     as accepted debt; only *new* findings fail the run.
//!     `--update-baseline` regenerates the baseline from the current
//!     findings and exits clean; `--no-baseline` gates on the raw finding
//!     set. `--format json|sarif` emits machine-readable output (byte-
//!     stable, fixed key order); `--out FILE` writes it atomically via
//!     the journal crate's write-rename path while the text summary still
//!     goes to stdout.
//! e2clab bench [--filter PAT] [--out DIR] [--iters N] [--warmup N]
//!              [--seed S] [--list]
//!     Run the registered benchmark suite (DES event loop, Pl@ntNet 600 s
//!     run, 50-trial Bayesian cycle, journal WAL append/replay, journal
//!     wire encode/decode) and write one `BENCH_<name>.json` report per
//!     benchmark to `--out` (default: current directory). `--filter`
//!     selects by name substring or exact tag (`smoke` matches every
//!     registered benchmark); `--iters`/`--warmup` override each
//!     benchmark's measurement policy (as do the `E2C_BENCH_ITERS` /
//!     `E2C_BENCH_WARMUP` environment variables); `--list` prints the
//!     selected names without running anything.
//! ```

use e2c_conf::schema::ExperimentConf;
use e2c_core::experiment::Experiment;
use e2c_core::optimization::{JournalConfig, OptimizationManager};
use e2c_des::SimTime;
use e2c_testbed::grid5000;
use e2c_tune::FaultPlan;
use plantnet::sim::{Experiment as EngineRun, ExperimentSpec};
use plantnet::PoolConfig;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  e2clab validate <conf.yaml>\n  e2clab deploy <conf.yaml>\n  \
         e2clab optimize [--repeat N] [--duration SECS] [--seed S] [--archive DIR] \
         [--faults SPEC] [--trace DIR] [--replay-check] [--journal DIR | --resume DIR] \
         [--crash-at N] [--workers N] [--kill-worker W@N] <conf.yaml>\n  \
         e2clab worker [--repeat N] [--duration SECS] [--clients N] [--builtin quad]\n  \
         e2clab serve --out DIR [--scale USERS_PER_DAY] [--epochs N] [--epoch-duration SECS] \
         [--samples N] [--concurrent N] [--slo SECS] [--queue-bound N] [--shed-after SECS] \
         [--seed S] [--first-year Y] [--replay-check] [--journal DIR | --resume DIR] \
         [--crash-at N] [--crash-at-epoch K]\n  \
         e2clab report <archive-dir>\n  \
         e2clab trace summarize <dir|trace.jsonl>\n  \
         e2clab lint [--config FILE] [--format text|json|sarif] [--out FILE] \
         [--baseline FILE] [--update-baseline] [--no-baseline] [root]\n  \
         e2clab bench [--filter PAT] [--out DIR] [--iters N] [--warmup N] [--seed S] [--list]\n  \
         e2clab fuzz [--codec NAME] [--iters N] [--seed S] [--out DIR] [--list]"
    );
    ExitCode::from(2)
}

/// Workspace root for `lint` when no explicit path is given: the compiled
/// source tree if it still exists (dev checkout), otherwise the current
/// directory.
fn workspace_root() -> PathBuf {
    // The binary lives in the workspace's root package, so its manifest
    // directory IS the workspace root.
    let compiled = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    if compiled.join("Cargo.toml").is_file() {
        // Canonicalize so report labels are workspace-relative.
        compiled.canonicalize().unwrap_or(compiled)
    } else {
        PathBuf::from(".")
    }
}

/// Workload knobs shared by every evaluation of a cycle (the engine run
/// behind the objective).
#[derive(Clone, Copy)]
struct CycleSpec {
    repeat: usize,
    duration: u64,
    clients: usize,
}

/// Run one full optimization cycle. With a trace directory this wires a
/// fresh [`e2c_trace::Tracer`] through the manager, tuner, scheduler and
/// the Pl@ntNet engine, then exports `trace.jsonl`, a cycle-level
/// `metrics.prom` and one `cycles/cycle_<trial>.prom` snapshot per trial.
#[allow(clippy::too_many_arguments)]
fn run_cycle(
    opt_conf: &e2c_conf::schema::OptimizationConf,
    seed: u64,
    faults: &FaultPlan,
    archive: Option<PathBuf>,
    trace_dir: Option<&std::path::Path>,
    spec: CycleSpec,
    journal: Option<JournalConfig>,
    farm: Option<e2c_tune::FarmSpec>,
) -> Result<e2c_core::optimization::OptimizationSummary, String> {
    let tracer = trace_dir.map(|_| e2c_trace::Tracer::new());
    if let Some(dir) = trace_dir {
        std::fs::create_dir_all(dir.join("cycles"))
            .map_err(|e| format!("--trace {}: {e}", dir.display()))?;
    }
    // Cycle-level samples keyed by trial id. Collected in a map rather
    // than a Registry because concurrent workers finish trials out of
    // order, while a TimeSeries only accepts in-order appends — the
    // registry is built from the sorted map after the run, which also
    // keeps `metrics.prom` deterministic under concurrency. Shared (Arc)
    // between the in-process objective and the farm's aux hook — farmed
    // runs must land their samples in exactly the same map.
    let cycle_samples =
        std::sync::Arc::new(std::sync::Mutex::new(std::collections::BTreeMap::new()));
    // Journaled + traced runs persist the per-trial samples in a side WAL
    // (`samples.wal`): completed trials are not re-evaluated on resume,
    // yet `metrics.prom` must still cover them.
    let samples_wal = match (&journal, trace_dir) {
        (Some(jc), Some(_)) => {
            let path = jc.dir.join("samples.wal");
            let wal = if jc.resume && path.is_file() {
                let (wal, records) = e2c_journal::Wal::open(&path)
                    .map_err(|e| format!("--resume: open {}: {e}", path.display()))?;
                let mut map = cycle_samples
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                for (i, rec) in records.iter().enumerate() {
                    let line = std::str::from_utf8(rec)
                        .map_err(|e| format!("samples.wal record {i}: not UTF-8: {e}"))?;
                    let mut parts = line.split('\t');
                    let (trial, mean, completed) = (|| {
                        Some((
                            parts.next()?.parse::<u64>().ok()?,
                            parts.next()?.parse::<f64>().ok()?,
                            parts.next()?.parse::<f64>().ok()?,
                        ))
                    })()
                    .ok_or_else(|| format!("samples.wal record {i}: malformed: {line:?}"))?;
                    map.insert(trial, (mean, completed));
                }
                wal
            } else {
                e2c_journal::Wal::create(&path).map_err(|e| {
                    if e.kind() == std::io::ErrorKind::AlreadyExists {
                        format!(
                            "--journal: {} already exists — use --resume to continue it",
                            path.display()
                        )
                    } else {
                        format!("--journal: create {}: {e}", path.display())
                    }
                })?
            };
            Some(std::sync::Arc::new(std::sync::Mutex::new(wal)))
        }
        _ => None,
    };
    let trace_out = trace_dir.map(std::path::Path::to_path_buf);
    let obj_trace_out = trace_out.clone();
    let samples = std::sync::Arc::clone(&cycle_samples);
    let samples_wal_obj = samples_wal.clone();
    let objective = move |ctx: &e2c_core::optimization::EvalContext| {
        let trace_out = &obj_trace_out;
        let samples_wal = &samples_wal_obj;
        let cfg = PoolConfig::from_point(&ctx.point);
        let mut espec = ExperimentSpec::paper(cfg, spec.clients);
        espec.duration = SimTime::from_secs(spec.duration);
        espec.warmup = SimTime::from_secs((spec.duration / 10).min(60));
        // Engine events go through the evaluation's own trace handle:
        // under concurrent execution it is a per-trial buffer the commit
        // sequencer splices into the run trace in canonical order.
        let metrics = EngineRun::run_repeated_traced(
            espec,
            spec.repeat,
            1000 + ctx.trial_id,
            ctx.tracer.clone(),
        );
        if let Some(dir) = &trace_out {
            // Per-trial engine snapshot: repetitions concatenated on one
            // time axis, exported in Prometheus text form.
            let mut merged = e2c_metrics::Registry::new();
            for (rep, run) in metrics.runs.iter().enumerate() {
                merged.append_shifted(&run.registry, (rep as u64 * spec.duration) as f64);
            }
            let mut buf = Vec::new();
            let _ = merged.write_prometheus(&mut buf);
            let path = dir
                .join("cycles")
                .join(format!("cycle_{:04}.prom", ctx.trial_id));
            if let Err(e) = e2c_journal::write_atomic(&path, &buf) {
                eprintln!("trace: {}: {e}", path.display());
            }
            let completed = metrics.runs.iter().map(|r| r.completed).sum::<u64>();
            samples
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(ctx.trial_id, (metrics.response.mean, completed as f64));
            if let Some(wal) = samples_wal {
                let line = format!(
                    "{}\t{}\t{}",
                    ctx.trial_id, metrics.response.mean, completed as f64
                );
                if let Err(e) = wal
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .append(line.as_bytes())
                {
                    eprintln!("samples.wal: {e}");
                }
            }
        }
        metrics.response.mean
    };
    let mut manager = OptimizationManager::new(opt_conf.clone())
        .with_seed(seed)
        .with_faults(faults.clone());
    if let Some(dir) = archive {
        manager = manager.with_archive(dir);
    }
    if let Some(tr) = &tracer {
        manager = manager.with_trace(tr.clone());
    }
    if let Some(jc) = journal {
        manager = manager.with_journal(jc);
    }
    if let Some(spec) = farm {
        // Multi-process execution: the engine runs in `e2clab worker`
        // children; this hook lands each result's side artifacts exactly
        // where the in-process objective would have written them, so a
        // farmed run's outputs are byte-identical to an in-process one.
        manager = manager.with_farm(spec);
        let trace_out = trace_out.clone();
        let samples = std::sync::Arc::clone(&cycle_samples);
        let samples_wal = samples_wal.clone();
        manager = manager.with_aux_hook(std::sync::Arc::new(
            move |ctx: &e2c_core::optimization::EvalContext, aux: &[(String, String)]| {
                let Some(dir) = &trace_out else { return };
                let field =
                    |name: &str| aux.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str());
                if let Some(prom) = field("prom") {
                    let path = dir
                        .join("cycles")
                        .join(format!("cycle_{:04}.prom", ctx.trial_id));
                    if let Err(e) = e2c_journal::write_atomic(&path, prom.as_bytes()) {
                        eprintln!("trace: {}: {e}", path.display());
                    }
                }
                let mean = field("mean").and_then(|v| v.parse::<f64>().ok());
                let completed = field("completed").and_then(|v| v.parse::<f64>().ok());
                if let (Some(mean), Some(completed)) = (mean, completed) {
                    samples
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .insert(ctx.trial_id, (mean, completed));
                    if let Some(wal) = &samples_wal {
                        let line = format!("{}\t{}\t{}", ctx.trial_id, mean, completed);
                        if let Err(e) = wal
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .append(line.as_bytes())
                        {
                            eprintln!("samples.wal: {e}");
                        }
                    }
                }
            },
        ));
    }
    let summary = manager.run(objective).map_err(|e| e.to_string())?;
    if let (Some(tr), Some(dir)) = (&tracer, trace_dir) {
        tr.save(&dir.join("trace.jsonl"))
            .map_err(|e| format!("trace: {}: {e}", dir.display()))?;
        let mut registry = e2c_metrics::Registry::new();
        for (&trial, &(mean, completed)) in cycle_samples
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            let t = trial as f64;
            registry.record("objective_response_mean", t, mean);
            registry.record("trial_completed_requests", t, completed);
        }
        let mut buf = Vec::new();
        let _ = registry.write_prometheus(&mut buf);
        e2c_journal::write_atomic(&dir.join("metrics.prom"), &buf)
            .map_err(|e| format!("trace: {}: {e}", dir.display()))?;
    }
    Ok(summary)
}

/// Run the same seeded optimization twice at the configured concurrency
/// (the commit sequencer orders effects canonically, so bit-exact replay
/// holds under concurrent suggestion too) and byte-diff the
/// reproducibility artifacts of the two runs. With `--trace`, the trace
/// artifacts (`trace.jsonl`, `metrics.prom`, `cycles/*.prom`) are diffed
/// too.
fn run_replay_check(
    opt_conf: e2c_conf::schema::OptimizationConf,
    seed: u64,
    faults: FaultPlan,
    archive: Option<PathBuf>,
    trace: Option<PathBuf>,
    spec: CycleSpec,
) -> ExitCode {
    let pid = std::process::id();
    let dir_a = archive
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("e2clab-replay-a-{pid}")));
    let dir_b = std::env::temp_dir().join(format!("e2clab-replay-b-{pid}"));
    let _ = std::fs::remove_dir_all(&dir_b);
    let trace_b = trace
        .as_ref()
        .map(|_| std::env::temp_dir().join(format!("e2clab-replay-trace-b-{pid}")));
    if let Some(tb) = &trace_b {
        let _ = std::fs::remove_dir_all(tb);
    }
    for (dir, tdir) in [(&dir_a, trace.as_deref()), (&dir_b, trace_b.as_deref())] {
        match run_cycle(
            &opt_conf,
            seed,
            &faults,
            Some(dir.clone()),
            tdir,
            spec,
            None,
            None,
        ) {
            Ok(summary) => {
                if dir == &dir_a {
                    print!("{}", summary.render());
                }
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Pairs of (label, file in run A, file in run B) to byte-compare.
    let mut pairs: Vec<(String, PathBuf, PathBuf)> = ["evaluations.csv", "trials/trials.jsonl"]
        .into_iter()
        .map(|rel| (rel.to_string(), dir_a.join(rel), dir_b.join(rel)))
        .collect();
    if let (Some(ta), Some(tb)) = (&trace, &trace_b) {
        let mut rels = vec!["trace.jsonl".to_string(), "metrics.prom".to_string()];
        if let Ok(read) = std::fs::read_dir(ta.join("cycles")) {
            let mut names: Vec<String> = read
                .flatten()
                .filter_map(|e| e.file_name().into_string().ok())
                .collect();
            names.sort();
            rels.extend(names.into_iter().map(|n| format!("cycles/{n}")));
        }
        for rel in rels {
            pairs.push((format!("trace/{rel}"), ta.join(&rel), tb.join(&rel)));
        }
    }
    let mut ok = true;
    for (label, path_a, path_b) in pairs {
        match (std::fs::read(path_a), std::fs::read(path_b)) {
            (Ok(a), Ok(b)) if a == b => {
                println!("replay-check: {label} identical ({} bytes)", a.len());
            }
            (Ok(a), Ok(b)) => {
                eprintln!(
                    "replay-check: {label} DIFFERS ({} vs {} bytes) — run is not replayable",
                    a.len(),
                    b.len()
                );
                ok = false;
            }
            (a, b) => {
                eprintln!("replay-check: {label}: {:?} vs {:?}", a.err(), b.err());
                ok = false;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir_b);
    if let Some(tb) = &trace_b {
        let _ = std::fs::remove_dir_all(tb);
    }
    if archive.is_none() {
        let _ = std::fs::remove_dir_all(&dir_a);
    } else {
        println!("archive written to {}", dir_a.display());
    }
    if let Some(dir) = &trace {
        println!("trace written to {}", dir.display());
    }
    if ok {
        println!("replay-check: PASS — seeded run replays byte-identically");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Run the serving loop twice — the second time into scratch dirs — and
/// byte-diff every serving artifact: `serving.csv`, `trace.jsonl` and
/// the per-epoch archives. The serving driver layers epoch cycles over
/// the same commit sequencer as `optimize`, so the whole multi-epoch run
/// must replay bit-exactly.
fn run_serve_replay_check(cfg: &e2c_core::ServingConfig) -> ExitCode {
    let pid = std::process::id();
    let dir_b = std::env::temp_dir().join(format!("e2clab-serve-replay-b-{pid}"));
    let _ = std::fs::remove_dir_all(&dir_b);
    let mut cfg_b = cfg.clone();
    cfg_b.out_dir = dir_b.clone();
    for (c, first) in [(cfg, true), (&cfg_b, false)] {
        match e2c_core::serving::run_serving(c) {
            Ok(report) => {
                if first {
                    print!("{}", report.render());
                }
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut rels = vec!["serving.csv".to_string(), "trace.jsonl".to_string()];
    if let Ok(read) = std::fs::read_dir(cfg.out_dir.join("epochs")) {
        let mut names: Vec<String> = read
            .flatten()
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort();
        for name in names {
            for file in ["evaluations.csv", "best.yaml", "trials/trials.jsonl"] {
                rels.push(format!("epochs/{name}/{file}"));
            }
        }
    }
    let mut ok = true;
    for rel in rels {
        match (
            std::fs::read(cfg.out_dir.join(&rel)),
            std::fs::read(dir_b.join(&rel)),
        ) {
            (Ok(a), Ok(b)) if a == b => {
                println!("replay-check: {rel} identical ({} bytes)", a.len());
            }
            (Ok(a), Ok(b)) => {
                eprintln!(
                    "replay-check: {rel} DIFFERS ({} vs {} bytes) — run is not replayable",
                    a.len(),
                    b.len()
                );
                ok = false;
            }
            (a, b) => {
                eprintln!("replay-check: {rel}: {:?} vs {:?}", a.err(), b.err());
                ok = false;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir_b);
    if ok {
        println!("replay-check: PASS — serving run replays byte-identically");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn load_conf(path: &str) -> Result<ExperimentConf, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = e2c_conf::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    ExperimentConf::from_value(&doc).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(|s| s.as_str()) else {
        return usage();
    };
    match command {
        "validate" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            match load_conf(path) {
                Ok(conf) => {
                    println!("ok: experiment `{}`", conf.name);
                    println!(
                        "  layers: {}  network rules: {}  optimization: {}",
                        conf.layers.len(),
                        conf.network.len(),
                        if conf.optimization.is_some() {
                            "yes"
                        } else {
                            "no"
                        }
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("invalid: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "deploy" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let conf = match load_conf(path) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("invalid: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut exp = Experiment::new(conf, grid5000::paper_testbed());
            match exp.deploy() {
                Ok(()) => {
                    print!("{}", exp.describe());
                    exp.teardown();
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("deployment failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "optimize" => {
            // Flag parsing: --repeat N --duration SECS --seed S
            // --archive DIR --faults SPEC --trace DIR.
            let mut repeat = 1usize;
            let mut duration = 1380u64;
            let mut seed = 0u64;
            let mut archive: Option<PathBuf> = None;
            let mut trace: Option<PathBuf> = None;
            let mut faults = FaultPlan::new();
            let mut replay_check = false;
            let mut journal: Option<PathBuf> = None;
            let mut resume: Option<PathBuf> = None;
            let mut crash_at: Option<u64> = None;
            let mut workers = 0usize;
            let mut kill_worker: Option<(usize, u64)> = None;
            let mut conf_path: Option<String> = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                let mut grab = |name: &str| -> Option<String> {
                    let v = it.next();
                    if v.is_none() {
                        eprintln!("{name} needs a value");
                    }
                    v.cloned()
                };
                match arg.as_str() {
                    "--repeat" => match grab("--repeat").and_then(|v| v.parse().ok()) {
                        Some(v) => repeat = v,
                        None => return usage(),
                    },
                    "--duration" => match grab("--duration").and_then(|v| v.parse().ok()) {
                        Some(v) => duration = v,
                        None => return usage(),
                    },
                    "--seed" => match grab("--seed").and_then(|v| v.parse().ok()) {
                        Some(v) => seed = v,
                        None => return usage(),
                    },
                    "--archive" => match grab("--archive") {
                        Some(v) => archive = Some(PathBuf::from(v)),
                        None => return usage(),
                    },
                    "--trace" => match grab("--trace") {
                        Some(v) => trace = Some(PathBuf::from(v)),
                        None => return usage(),
                    },
                    "--faults" => match grab("--faults") {
                        Some(v) => match FaultPlan::parse(&v) {
                            Ok(plan) => faults = plan,
                            Err(e) => {
                                eprintln!("--faults: {e}");
                                return usage();
                            }
                        },
                        None => return usage(),
                    },
                    "--journal" => match grab("--journal") {
                        Some(v) => journal = Some(PathBuf::from(v)),
                        None => return usage(),
                    },
                    "--resume" => match grab("--resume") {
                        Some(v) => resume = Some(PathBuf::from(v)),
                        None => return usage(),
                    },
                    "--crash-at" => match grab("--crash-at").and_then(|v| v.parse().ok()) {
                        Some(v) => crash_at = Some(v),
                        None => return usage(),
                    },
                    "--workers" => match grab("--workers").and_then(|v| v.parse().ok()) {
                        Some(v) => workers = v,
                        None => return usage(),
                    },
                    // Chaos knob for the crash gate: SIGKILL worker W after
                    // its Nth dispatched ask. `W@N`, e.g. `--kill-worker 1@2`.
                    "--kill-worker" => match grab("--kill-worker").and_then(|v| {
                        let (w, n) = v.split_once('@')?;
                        Some((w.parse().ok()?, n.parse().ok()?))
                    }) {
                        Some(v) => kill_worker = Some(v),
                        None => return usage(),
                    },
                    "--replay-check" => replay_check = true,
                    other if !other.starts_with("--") => conf_path = Some(other.to_string()),
                    other => {
                        eprintln!("unknown flag {other}");
                        return usage();
                    }
                }
            }
            let Some(path) = conf_path else {
                return usage();
            };
            let conf = match load_conf(&path) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("invalid: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(opt_conf) = conf.optimization else {
                eprintln!("{path}: no `optimization` section");
                return ExitCode::FAILURE;
            };
            // Workload: total concurrent requests of all client services
            // (falls back to the paper's 80).
            let clients: usize = conf
                .layers
                .iter()
                .flat_map(|l| &l.services)
                .filter(|s| s.name.contains("client"))
                .map(|s| s.quantity * 20)
                .sum::<usize>()
                .max(80);
            let spec = CycleSpec {
                repeat,
                duration,
                clients,
            };
            if journal.is_some() && resume.is_some() {
                eprintln!("--journal and --resume are mutually exclusive");
                return usage();
            }
            if crash_at.is_some() && journal.is_none() && resume.is_none() {
                eprintln!("--crash-at needs --journal or --resume");
                return usage();
            }
            if replay_check && (journal.is_some() || resume.is_some()) {
                eprintln!("--replay-check cannot be combined with --journal/--resume");
                return usage();
            }
            if kill_worker.is_some() && workers == 0 {
                eprintln!("--kill-worker needs --workers");
                return usage();
            }
            if workers > 0 && replay_check {
                eprintln!("--workers cannot be combined with --replay-check");
                return usage();
            }
            // `--workers N` farms evaluations out to N `e2clab worker`
            // child processes. Deliberately NOT part of the journal
            // fingerprint: the worker count shapes wall-clock only, never
            // artifacts, so a resume may change it freely.
            let farm_spec = (workers > 0).then(|| {
                let exe = match std::env::current_exe() {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("--workers: cannot locate own binary: {e}");
                        std::process::exit(1);
                    }
                };
                let wargs = vec![
                    "worker".to_string(),
                    "--repeat".to_string(),
                    spec.repeat.to_string(),
                    "--duration".to_string(),
                    spec.duration.to_string(),
                    "--clients".to_string(),
                    spec.clients.to_string(),
                ];
                let mut fs = e2c_tune::FarmSpec::new(exe, wargs, workers, seed);
                fs.kill_after = kill_worker;
                fs
            });
            let journal_conf = journal
                .map(JournalConfig::fresh)
                .or_else(|| resume.map(JournalConfig::resume))
                .map(|jc| {
                    // Fold the CLI-level knobs that shape the objective into
                    // the journal fingerprint: a resume under a different
                    // workload must be refused, not silently diverge.
                    jc.crash_after(crash_at).extra_fingerprint(format!(
                        "repeat={repeat};duration={duration};clients={clients};faults={faults:?}",
                        repeat = spec.repeat,
                        duration = spec.duration,
                        clients = spec.clients,
                    ))
                });
            if replay_check {
                return run_replay_check(opt_conf, seed, faults, archive, trace, spec);
            }
            match run_cycle(
                &opt_conf,
                seed,
                &faults,
                archive.clone(),
                trace.as_deref(),
                spec,
                journal_conf,
                farm_spec,
            ) {
                Ok(summary) => {
                    print!("{}", summary.render());
                    if let Some(dir) = archive {
                        println!("archive written to {}", dir.display());
                    }
                    if let Some(dir) = trace {
                        println!("trace written to {}", dir.display());
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "serve" => {
            let mut out: Option<PathBuf> = None;
            let mut scale = 2_500_000.0f64;
            let mut epochs = 6usize;
            let mut epoch_duration = 180u64;
            let mut samples = 8usize;
            let mut concurrent = 2usize;
            let mut slo = 4.0f64;
            let mut queue_bound = 64usize;
            let mut shed_after = 8.0f64;
            let mut seed = 0u64;
            let mut first_year = 2017u32;
            let mut replay_check = false;
            let mut journal: Option<PathBuf> = None;
            let mut resume: Option<PathBuf> = None;
            let mut crash_at: Option<u64> = None;
            let mut crash_at_epoch: Option<usize> = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                let mut grab = |name: &str| -> Option<String> {
                    let v = it.next();
                    if v.is_none() {
                        eprintln!("{name} needs a value");
                    }
                    v.cloned()
                };
                match arg.as_str() {
                    "--out" => match grab("--out") {
                        Some(v) => out = Some(PathBuf::from(v)),
                        None => return usage(),
                    },
                    "--scale" => match grab("--scale").and_then(|v| v.parse().ok()) {
                        Some(v) => scale = v,
                        None => return usage(),
                    },
                    "--epochs" => match grab("--epochs").and_then(|v| v.parse().ok()) {
                        Some(v) => epochs = v,
                        None => return usage(),
                    },
                    "--epoch-duration" => {
                        match grab("--epoch-duration").and_then(|v| v.parse().ok()) {
                            Some(v) => epoch_duration = v,
                            None => return usage(),
                        }
                    }
                    "--samples" => match grab("--samples").and_then(|v| v.parse().ok()) {
                        Some(v) => samples = v,
                        None => return usage(),
                    },
                    "--concurrent" => match grab("--concurrent").and_then(|v| v.parse().ok()) {
                        Some(v) => concurrent = v,
                        None => return usage(),
                    },
                    "--slo" => match grab("--slo").and_then(|v| v.parse().ok()) {
                        Some(v) => slo = v,
                        None => return usage(),
                    },
                    "--queue-bound" => match grab("--queue-bound").and_then(|v| v.parse().ok()) {
                        Some(v) => queue_bound = v,
                        None => return usage(),
                    },
                    // `--shed-after 0` disables deadline shedding.
                    "--shed-after" => match grab("--shed-after").and_then(|v| v.parse().ok()) {
                        Some(v) => shed_after = v,
                        None => return usage(),
                    },
                    "--seed" => match grab("--seed").and_then(|v| v.parse().ok()) {
                        Some(v) => seed = v,
                        None => return usage(),
                    },
                    "--first-year" => match grab("--first-year").and_then(|v| v.parse().ok()) {
                        Some(v) => first_year = v,
                        None => return usage(),
                    },
                    "--journal" => match grab("--journal") {
                        Some(v) => journal = Some(PathBuf::from(v)),
                        None => return usage(),
                    },
                    "--resume" => match grab("--resume") {
                        Some(v) => resume = Some(PathBuf::from(v)),
                        None => return usage(),
                    },
                    "--crash-at" => match grab("--crash-at").and_then(|v| v.parse().ok()) {
                        Some(v) => crash_at = Some(v),
                        None => return usage(),
                    },
                    "--crash-at-epoch" => {
                        match grab("--crash-at-epoch").and_then(|v| v.parse().ok()) {
                            Some(v) => crash_at_epoch = Some(v),
                            None => return usage(),
                        }
                    }
                    "--replay-check" => replay_check = true,
                    other => {
                        eprintln!("unknown flag {other}");
                        return usage();
                    }
                }
            }
            let Some(out) = out else {
                eprintln!("serve needs --out DIR");
                return usage();
            };
            if journal.is_some() && resume.is_some() {
                eprintln!("--journal and --resume are mutually exclusive");
                return usage();
            }
            if (crash_at.is_some() || crash_at_epoch.is_some())
                && journal.is_none()
                && resume.is_none()
            {
                eprintln!("--crash-at/--crash-at-epoch need --journal or --resume");
                return usage();
            }
            if replay_check && (journal.is_some() || resume.is_some()) {
                eprintln!("--replay-check cannot be combined with --journal/--resume");
                return usage();
            }
            let mut cfg = e2c_core::ServingConfig::new(out);
            cfg.scale = scale;
            cfg.epochs = epochs;
            cfg.epoch_duration = SimTime::from_secs(epoch_duration);
            cfg.samples = samples;
            cfg.max_concurrent = concurrent;
            cfg.slo = slo;
            cfg.queue_bound = queue_bound;
            cfg.shed_after = (shed_after > 0.0).then(|| SimTime::from_secs_f64(shed_after));
            cfg.seed = seed;
            cfg.first_year = first_year;
            cfg.resume = resume.is_some();
            cfg.journal_dir = journal.or(resume);
            cfg.crash_at = crash_at;
            cfg.crash_at_epoch = crash_at_epoch;
            if replay_check {
                return run_serve_replay_check(&cfg);
            }
            match e2c_core::serving::run_serving(&cfg) {
                Ok(report) => {
                    print!("{}", report.render());
                    println!("serving artifacts written to {}", cfg.out_dir.display());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "worker" => {
            // Farm child: speaks the framed stdio protocol on stdin/stdout
            // and runs one engine evaluation per ask. Spawned by
            // `optimize --workers N`; not intended for interactive use.
            let mut repeat = 1usize;
            let mut duration = 1380u64;
            let mut clients = 80usize;
            let mut builtin: Option<String> = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                let mut grab = |name: &str| -> Option<String> {
                    let v = it.next();
                    if v.is_none() {
                        eprintln!("{name} needs a value");
                    }
                    v.cloned()
                };
                match arg.as_str() {
                    "--repeat" => match grab("--repeat").and_then(|v| v.parse().ok()) {
                        Some(v) => repeat = v,
                        None => return usage(),
                    },
                    "--duration" => match grab("--duration").and_then(|v| v.parse().ok()) {
                        Some(v) => duration = v,
                        None => return usage(),
                    },
                    "--clients" => match grab("--clients").and_then(|v| v.parse().ok()) {
                        Some(v) => clients = v,
                        None => return usage(),
                    },
                    // Cheap deterministic objective for farm tests and
                    // benches: no engine run, just a quadratic bowl.
                    "--builtin" => match grab("--builtin") {
                        Some(v) => builtin = Some(v),
                        None => return usage(),
                    },
                    other => {
                        eprintln!("unknown flag {other}");
                        return usage();
                    }
                }
            }
            let result = match builtin.as_deref() {
                Some("quad") => e2c_tune::worker::serve(|ask, _tracer| {
                    let value = ask
                        .config
                        .iter()
                        .map(|x| (x - 3.0) * (x - 3.0))
                        .sum::<f64>();
                    (value, Vec::new())
                }),
                Some(other) => {
                    eprintln!("unknown --builtin objective `{other}` (expected quad)");
                    return ExitCode::FAILURE;
                }
                // The engine objective: the exact computation the
                // in-process path runs, with side artifacts shipped back
                // as aux strings instead of written locally — the parent
                // owns the archive/trace directories.
                None => e2c_tune::worker::serve(move |ask, tracer| {
                    let cfg = PoolConfig::from_point(&ask.config);
                    let mut espec = ExperimentSpec::paper(cfg, clients);
                    espec.duration = SimTime::from_secs(duration);
                    espec.warmup = SimTime::from_secs((duration / 10).min(60));
                    let metrics = EngineRun::run_repeated_traced(
                        espec,
                        repeat,
                        1000 + ask.trial,
                        tracer.cloned(),
                    );
                    let mut aux = Vec::new();
                    if ask.traced {
                        let mut merged = e2c_metrics::Registry::new();
                        for (rep, run) in metrics.runs.iter().enumerate() {
                            merged.append_shifted(&run.registry, (rep as u64 * duration) as f64);
                        }
                        let mut buf = Vec::new();
                        let _ = merged.write_prometheus(&mut buf);
                        let completed = metrics.runs.iter().map(|r| r.completed).sum::<u64>();
                        // f64 `Display` round-trips exactly through `parse`,
                        // so the parent re-renders identical bytes.
                        aux.push(("mean".to_string(), metrics.response.mean.to_string()));
                        aux.push(("completed".to_string(), (completed as f64).to_string()));
                        aux.push((
                            "prom".to_string(),
                            String::from_utf8_lossy(&buf).into_owned(),
                        ));
                    }
                    (metrics.response.mean, aux)
                }),
            };
            match result {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("worker: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "trace" => {
            // `trace summarize <dir|trace.jsonl>`: render a recorded trace.
            let (Some(sub), Some(target)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            if sub != "summarize" {
                return usage();
            }
            let path = PathBuf::from(target);
            let file = if path.is_dir() {
                path.join("trace.jsonl")
            } else {
                path
            };
            match e2c_trace::load_jsonl(&file) {
                Ok(events) => {
                    print!("{}", e2c_trace::TraceSummary::from_events(&events).render());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "lint" => {
            let mut config = detlint::Config::default();
            let mut root: Option<PathBuf> = None;
            let mut format = String::from("text");
            let mut out_path: Option<PathBuf> = None;
            let mut baseline_path: Option<PathBuf> = None;
            let mut update_baseline = false;
            let mut no_baseline = false;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--config" => {
                        let Some(path) = it.next() else {
                            eprintln!("--config needs a value");
                            return usage();
                        };
                        let text = match std::fs::read_to_string(path) {
                            Ok(t) => t,
                            Err(e) => {
                                eprintln!("{path}: {e}");
                                return ExitCode::FAILURE;
                            }
                        };
                        if let Err(e) = config.apply_file(&text) {
                            eprintln!("{path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                    "--format" => {
                        let Some(value) = it.next() else {
                            eprintln!("--format needs a value");
                            return usage();
                        };
                        if !matches!(value.as_str(), "text" | "json" | "sarif") {
                            eprintln!("--format must be text, json or sarif");
                            return usage();
                        }
                        format = value.clone();
                    }
                    "--out" => {
                        let Some(value) = it.next() else {
                            eprintln!("--out needs a value");
                            return usage();
                        };
                        out_path = Some(PathBuf::from(value));
                    }
                    "--baseline" => {
                        let Some(value) = it.next() else {
                            eprintln!("--baseline needs a value");
                            return usage();
                        };
                        baseline_path = Some(PathBuf::from(value));
                    }
                    "--update-baseline" => update_baseline = true,
                    "--no-baseline" => no_baseline = true,
                    other if !other.starts_with("--") => root = Some(PathBuf::from(other)),
                    other => {
                        eprintln!("unknown flag {other}");
                        return usage();
                    }
                }
            }
            let root = root.unwrap_or_else(workspace_root);
            let baseline_file = baseline_path.unwrap_or_else(|| root.join("lint.baseline"));
            let mut report = match detlint::lint_workspace(&root, &config) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("lint failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if update_baseline {
                // Record the current raw finding set as accepted debt,
                // then gate this run against it (always clean).
                let baseline = detlint::Baseline::from_findings(report.errors.iter());
                let rendered = baseline.render();
                if let Err(e) = e2c_journal::write_atomic(&baseline_file, rendered.as_bytes()) {
                    eprintln!("{}: {e}", baseline_file.display());
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "wrote {} ({} entr{})",
                    baseline_file.display(),
                    baseline.len(),
                    if baseline.len() == 1 { "y" } else { "ies" }
                );
                report.apply_baseline(&baseline);
            } else if !no_baseline && baseline_file.is_file() {
                let text = match std::fs::read_to_string(&baseline_file) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("{}: {e}", baseline_file.display());
                        return ExitCode::FAILURE;
                    }
                };
                match detlint::Baseline::parse(&text) {
                    Ok(baseline) => report.apply_baseline(&baseline),
                    Err(e) => {
                        eprintln!("{}: {e}", baseline_file.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            let machine = match format.as_str() {
                "json" => Some(detlint::to_json(&report)),
                "sarif" => Some(detlint::to_sarif(&report)),
                _ => None,
            };
            match (machine, out_path) {
                (Some(rendered), Some(path)) => {
                    if let Err(e) = e2c_journal::write_atomic(&path, rendered.as_bytes()) {
                        eprintln!("{}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                    // Keep the human summary on stdout for CI logs.
                    print!("{}", report.render());
                }
                (Some(rendered), None) => print!("{rendered}"),
                (None, Some(path)) => {
                    let rendered = report.render();
                    if let Err(e) = e2c_journal::write_atomic(&path, rendered.as_bytes()) {
                        eprintln!("{}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                    print!("{rendered}");
                }
                (None, None) => print!("{}", report.render()),
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "bench" => {
            let mut filter: Option<String> = None;
            let mut out: Option<PathBuf> = None;
            let mut iters: Option<u32> = None;
            let mut warmup: Option<u32> = None;
            let mut seed = 0u64;
            let mut list = false;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                let mut grab = |name: &str| -> Option<String> {
                    let v = it.next();
                    if v.is_none() {
                        eprintln!("{name} needs a value");
                    }
                    v.cloned()
                };
                match arg.as_str() {
                    "--filter" => match grab("--filter") {
                        Some(v) => filter = Some(v),
                        None => return usage(),
                    },
                    "--out" => match grab("--out") {
                        Some(v) => out = Some(PathBuf::from(v)),
                        None => return usage(),
                    },
                    "--iters" => match grab("--iters").and_then(|v| v.parse().ok()) {
                        Some(v) => iters = Some(v),
                        None => return usage(),
                    },
                    "--warmup" => match grab("--warmup").and_then(|v| v.parse().ok()) {
                        Some(v) => warmup = Some(v),
                        None => return usage(),
                    },
                    "--seed" => match grab("--seed").and_then(|v| v.parse().ok()) {
                        Some(v) => seed = v,
                        None => return usage(),
                    },
                    "--list" => list = true,
                    other => {
                        eprintln!("unknown flag {other}");
                        return usage();
                    }
                }
            }
            let mut registry = e2c_bench::default_registry().with_seed(seed);
            if let Some(pat) = filter {
                registry = registry.with_filter(pat);
            }
            // --iters/--warmup override every benchmark's own policy;
            // either alone keeps the other knob at the registry default.
            if iters.is_some() || warmup.is_some() {
                let base = e2c_bench::BenchPolicy::default();
                registry = registry.with_policy(e2c_bench::BenchPolicy::new(
                    warmup.unwrap_or(base.warmup_iters),
                    iters.unwrap_or(base.measure_iters),
                ));
            }
            if list {
                for name in registry.selected() {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            if registry.selected().is_empty() {
                eprintln!("bench: no benchmark matches the filter");
                return ExitCode::FAILURE;
            }
            let out_dir = out.unwrap_or_else(|| PathBuf::from("."));
            if let Err(e) = std::fs::create_dir_all(&out_dir) {
                eprintln!("bench: create {}: {e}", out_dir.display());
                return ExitCode::FAILURE;
            }
            registry = registry.with_out_dir(out_dir.clone());
            match registry.run() {
                Ok(reports) => {
                    for r in &reports {
                        println!("{}", r.render_row());
                    }
                    println!(
                        "bench: {} report(s) written to {}",
                        reports.len(),
                        out_dir.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("bench: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "fuzz" => {
            let mut codec: Option<String> = None;
            let mut out: Option<PathBuf> = None;
            let mut iters = 10_000u64;
            let mut seed = 1u64;
            let mut list = false;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                let mut grab = |name: &str| -> Option<String> {
                    let v = it.next();
                    if v.is_none() {
                        eprintln!("{name} needs a value");
                    }
                    v.cloned()
                };
                match arg.as_str() {
                    "--codec" => match grab("--codec") {
                        Some(v) => codec = Some(v),
                        None => return usage(),
                    },
                    "--out" => match grab("--out") {
                        Some(v) => out = Some(PathBuf::from(v)),
                        None => return usage(),
                    },
                    "--iters" => match grab("--iters").and_then(|v| v.parse().ok()) {
                        Some(v) => iters = v,
                        None => return usage(),
                    },
                    "--seed" => match grab("--seed").and_then(|v| v.parse().ok()) {
                        Some(v) => seed = v,
                        None => return usage(),
                    },
                    "--list" => list = true,
                    other => {
                        eprintln!("unknown flag {other}");
                        return usage();
                    }
                }
            }
            let mut registry = e2c_fuzz::default_registry()
                .with_seed(seed)
                .with_iters(iters);
            if let Some(pat) = codec {
                registry = registry.with_filter(pat);
            }
            if list {
                for name in registry.selected() {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            if registry.selected().is_empty() {
                eprintln!("fuzz: no codec matches the filter");
                return ExitCode::FAILURE;
            }
            let out_dir = out.unwrap_or_else(|| PathBuf::from("."));
            if let Err(e) = std::fs::create_dir_all(&out_dir) {
                eprintln!("fuzz: create {}: {e}", out_dir.display());
                return ExitCode::FAILURE;
            }
            registry = registry.with_out_dir(out_dir.clone());
            match registry.run() {
                Ok(reports) => {
                    let mut failed = false;
                    for r in &reports {
                        println!("{}", r.render_row());
                        if let Some(f) = &r.failure {
                            failed = true;
                            eprintln!(
                                "fuzz: {}: {}\nreproduce: e2clab fuzz --codec {} --seed {} --iters {}\nartifact: {}",
                                r.name,
                                f.kind,
                                r.name,
                                r.seed,
                                r.iters_requested,
                                out_dir.join(format!("FUZZ_{}.crash", r.name)).display()
                            );
                        }
                    }
                    if failed {
                        ExitCode::FAILURE
                    } else {
                        println!("fuzz: {} codec(s) clean", reports.len());
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("fuzz: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "report" => {
            let Some(dir) = args.get(1) else {
                return usage();
            };
            let path = PathBuf::from(dir).join("summary.txt");
            match std::fs::read_to_string(&path) {
                Ok(text) => {
                    print!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{}: {e}", path.display());
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
