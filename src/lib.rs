//! # e2clab — reproducible performance optimization on the Edge-to-Cloud continuum
//!
//! A from-scratch Rust reproduction of *"Reproducible Performance
//! Optimization of Complex Applications on the Edge-to-Cloud Continuum"*
//! (CLUSTER 2021): the E2Clab experiment framework with its optimization
//! extension, every substrate it needs (testbed simulator, network
//! emulation, discrete-event engine, Bayesian optimization and
//! metaheuristics, a Ray-Tune-style trial runner), and the Pl@ntNet
//! Identification Engine model the paper evaluates.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! dependency so downstream users (and the `examples/`) can write
//! `use e2clab::optim::BayesOpt` etc.
//!
//! ## Crate map
//!
//! | module | crate | what it is |
//! |---|---|---|
//! | [`core`] | `e2c-core` | the framework: managers, services, experiment lifecycle, Optimization Manager, archive |
//! | [`conf`] | `e2c-conf` | YAML-subset parser + experiment schema |
//! | [`des`] | `e2c-des` | discrete-event simulation kernel |
//! | [`testbed`] | `e2c-testbed` | Grid'5000 model: clusters, reservations, deployments |
//! | [`net`] | `e2c-net` | network emulation (links, topology, shaping) |
//! | [`metrics`] | `e2c-metrics` | time series, online stats, summaries, tables |
//! | [`workload`] | `e2c-workload` | closed/open-loop generators, seasonal traces |
//! | [`optim`] | `e2c-optim` | spaces, samplers, surrogates, BO, metaheuristics, sensitivity |
//! | [`tune`] | `e2c-tune` | async parallel trial runner (searchers, ASHA) |
//! | [`trace`] | `e2c-trace` | deterministic structured event log + virtual clock |
//! | [`journal`] | `e2c-journal` | write-ahead log + atomic snapshot writes |
//! | [`bench`] | `e2c-bench` | benchmark API (`Benchmark`, `BenchRegistry`, `BENCH_*.json`) |
//! | [`detlint`] | `detlint` | determinism lint (DET001–DET005) |
//! | [`plantnet`] | `plantnet` | the Pl@ntNet engine model (DES + real threads) |
//!
//! ## Quickstart
//!
//! ```
//! use e2clab::optim::{Acquisition, BayesOpt, Space, SurrogateKind};
//!
//! // Minimize a black-box over a mixed search space, skopt-style.
//! let space = Space::new().int("threads", 1, 32).real("ratio", 0.0, 1.0);
//! let mut opt = BayesOpt::new(space, 42)
//!     .base_estimator(SurrogateKind::ExtraTrees)
//!     .acq_func(Acquisition::GpHedge)
//!     .n_initial_points(8);
//! for _ in 0..20 {
//!     let x = opt.ask();
//!     let y = (x[0] - 20.0).powi(2) + (x[1] - 0.25).powi(2);
//!     opt.tell(x, y);
//! }
//! assert!(opt.best().is_some());
//! ```

pub use detlint;
pub use e2c_bench as bench;
pub use e2c_conf as conf;
pub use e2c_core as core;
pub use e2c_des as des;
pub use e2c_journal as journal;
pub use e2c_metrics as metrics;
pub use e2c_net as net;
pub use e2c_testbed as testbed;
pub use e2c_trace as trace;
pub use e2c_tune as tune;
pub use e2c_workload as workload;
pub use plantnet;

/// Optimization toolkit (re-export of `e2c-optim` with the most-used
/// types flattened).
pub mod optim {
    pub use e2c_optim::acquisition::Acquisition;
    pub use e2c_optim::bayes::BayesOpt;
    pub use e2c_optim::linalg;
    pub use e2c_optim::metaheuristics::{
        DifferentialEvolution, GeneticAlgorithm, Metaheuristic, ParticleSwarm, SimulatedAnnealing,
    };
    pub use e2c_optim::pareto::{Nsga2, ParetoSolution};
    pub use e2c_optim::problem::{OptimizationProblem, Sense};
    pub use e2c_optim::sampling::InitialDesign;
    pub use e2c_optim::sensitivity::{morris, oat_effects, OatPlan};
    pub use e2c_optim::space::{Dimension, Point, Space};
    pub use e2c_optim::surrogate::{Surrogate, SurrogateKind};
}
