//! # e2c-core — the E2Clab framework core
//!
//! The paper's contribution is a methodology and its implementation as an
//! extension of E2Clab. This crate is that framework layer:
//!
//! * [`service`] — the *Services* abstraction (§V-C): anything deployable
//!   on the testbed implements [`service::Service`]; the Pl@ntNet engine
//!   and its clients are provided as user-defined services;
//! * [`managers`] — the E2Clab managers of Fig. 7: infrastructure
//!   provisioning, network emulation, monitoring;
//! * [`experiment`] — the experiment lifecycle (deploy → emulate → run →
//!   backup) with the `--repeat` protocol;
//! * [`optimization`] — **the Optimization Manager** (Fig. 5): Phase I
//!   (problem definition from `optimizer_conf`), Phase II (the
//!   optimization cycle: parallel deployment, asynchronous model
//!   optimization, reconfiguration), Phase III (reproducibility summary);
//! * [`archive`] — the Phase III artifact: a directory capturing the
//!   problem, the sampler, the algorithm and hyperparameters, every
//!   evaluated point, and the best configuration found;
//! * [`user_api`] — the class-based `Optimization` API of Listing 1
//!   (implement `setup` + `run_objective`, inherit the lifecycle).

pub mod archive;
pub mod experiment;
pub mod managers;
pub mod optimization;
pub mod service;
pub mod serving;
pub mod user_api;

pub use experiment::Experiment;
pub use optimization::{EvalContext, OptimizationManager, OptimizationSummary, RunError};
pub use service::Service;
pub use serving::{EpochRow, ServingConfig, ServingReport};
pub use user_api::UserOptimization;
