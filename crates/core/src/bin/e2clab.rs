//! The `e2clab` command-line interface.
//!
//! Mirrors the workflow the paper demonstrates, including the repeatability
//! command it quotes verbatim ("*one may repeat those experiments easily by
//! issuing: `e2clab optimize --repeat 6 --duration 1380 ...`*"):
//!
//! ```text
//! e2clab validate <conf.yaml>
//!     Parse and validate an experiment configuration.
//! e2clab deploy <conf.yaml>
//!     Dry-run deployment: reserve nodes on the simulated Grid'5000
//!     testbed, apply network emulation, print the scenario.
//! e2clab optimize [--repeat N] [--duration SECS] [--seed S]
//!                 [--archive DIR] [--faults SPEC] [--replay-check]
//!                 <conf.yaml>
//!     Run the optimization cycle of the configuration's `optimization`
//!     section against the Pl@ntNet engine model and print the Phase III
//!     summary. `--faults` injects deterministic trial failures for
//!     testing the retry layer, e.g.
//!     `--faults "fail:2@0;delay:4:500;nan:5"` (fail trial 2's first
//!     attempt, delay trial 4 by 500 ms, make trial 5 return NaN).
//!     `--replay-check` runs the same seeded cycle twice (sequentially)
//!     and byte-diffs `evaluations.csv` and `trials/trials.jsonl` between
//!     the two runs — a self-check that the run is actually replayable.
//! e2clab report <archive-dir>
//!     Re-print the summary of a previously written archive.
//! e2clab lint [--config FILE] [root]
//!     Run the detlint determinism pass (DET001–DET005) over every `.rs`
//!     file under `root` (default: this workspace). Exits non-zero when
//!     unsuppressed error-severity findings remain.
//! ```

use e2c_conf::schema::ExperimentConf;
use e2c_core::experiment::Experiment;
use e2c_core::optimization::OptimizationManager;
use e2c_des::SimTime;
use e2c_testbed::grid5000;
use e2c_tune::FaultPlan;
use plantnet::sim::{Experiment as EngineRun, ExperimentSpec};
use plantnet::PoolConfig;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  e2clab validate <conf.yaml>\n  e2clab deploy <conf.yaml>\n  \
         e2clab optimize [--repeat N] [--duration SECS] [--seed S] [--archive DIR] \
         [--faults SPEC] [--replay-check] <conf.yaml>\n  \
         e2clab report <archive-dir>\n  \
         e2clab lint [--config FILE] [root]"
    );
    ExitCode::from(2)
}

/// Workspace root for `lint` when no explicit path is given: the compiled
/// source tree if it still exists (dev checkout), otherwise the current
/// directory.
fn workspace_root() -> PathBuf {
    let compiled = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    if compiled.join("Cargo.toml").is_file() {
        // Canonicalize so report labels are workspace-relative.
        compiled.canonicalize().unwrap_or(compiled)
    } else {
        PathBuf::from(".")
    }
}

/// Run the same seeded optimization twice (sequentially — bit-exact replay
/// only holds without concurrent suggestion interleaving) and byte-diff
/// the reproducibility artifacts of the two runs.
fn run_replay_check<F>(
    opt_conf: e2c_conf::schema::OptimizationConf,
    seed: u64,
    faults: FaultPlan,
    archive: Option<PathBuf>,
    objective: F,
) -> ExitCode
where
    F: Fn(&e2c_core::optimization::EvalContext) -> f64 + Send + Sync,
{
    let dir_a = archive.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("e2clab-replay-a-{}", std::process::id()))
    });
    let dir_b = std::env::temp_dir().join(format!("e2clab-replay-b-{}", std::process::id()));
    // The trial log is append-only, so both runs need fresh directories.
    if dir_a.join("trials").join("trials.jsonl").is_file() {
        eprintln!(
            "--replay-check: {} already holds a trial log; pass a fresh --archive directory",
            dir_a.display()
        );
        return ExitCode::FAILURE;
    }
    let _ = std::fs::remove_dir_all(&dir_b);
    let mut conf = opt_conf;
    conf.max_concurrent = 1;
    for dir in [&dir_a, &dir_b] {
        let summary = OptimizationManager::new(conf.clone())
            .with_seed(seed)
            .with_faults(faults.clone())
            .with_archive(dir.clone())
            .run(&objective);
        if dir == &dir_a {
            print!("{}", summary.render());
        }
    }
    let mut ok = true;
    for rel in ["evaluations.csv", "trials/trials.jsonl"] {
        let a = std::fs::read(dir_a.join(rel));
        let b = std::fs::read(dir_b.join(rel));
        match (a, b) {
            (Ok(a), Ok(b)) if a == b => {
                println!("replay-check: {rel} identical ({} bytes)", a.len());
            }
            (Ok(a), Ok(b)) => {
                eprintln!(
                    "replay-check: {rel} DIFFERS ({} vs {} bytes) — run is not replayable",
                    a.len(),
                    b.len()
                );
                ok = false;
            }
            (a, b) => {
                eprintln!("replay-check: {rel}: {:?} vs {:?}", a.err(), b.err());
                ok = false;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir_b);
    if archive.is_none() {
        let _ = std::fs::remove_dir_all(&dir_a);
    } else {
        println!("archive written to {}", dir_a.display());
    }
    if ok {
        println!("replay-check: PASS — seeded run replays byte-identically");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn load_conf(path: &str) -> Result<ExperimentConf, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = e2c_conf::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    ExperimentConf::from_value(&doc).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(|s| s.as_str()) else {
        return usage();
    };
    match command {
        "validate" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            match load_conf(path) {
                Ok(conf) => {
                    println!("ok: experiment `{}`", conf.name);
                    println!(
                        "  layers: {}  network rules: {}  optimization: {}",
                        conf.layers.len(),
                        conf.network.len(),
                        if conf.optimization.is_some() {
                            "yes"
                        } else {
                            "no"
                        }
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("invalid: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "deploy" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let conf = match load_conf(path) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("invalid: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut exp = Experiment::new(conf, grid5000::paper_testbed());
            match exp.deploy() {
                Ok(()) => {
                    print!("{}", exp.describe());
                    exp.teardown();
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("deployment failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "optimize" => {
            // Flag parsing: --repeat N --duration SECS --seed S
            // --archive DIR --faults SPEC.
            let mut repeat = 1usize;
            let mut duration = 1380u64;
            let mut seed = 0u64;
            let mut archive: Option<PathBuf> = None;
            let mut faults = FaultPlan::new();
            let mut replay_check = false;
            let mut conf_path: Option<String> = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                let mut grab = |name: &str| -> Option<String> {
                    let v = it.next();
                    if v.is_none() {
                        eprintln!("{name} needs a value");
                    }
                    v.cloned()
                };
                match arg.as_str() {
                    "--repeat" => match grab("--repeat").and_then(|v| v.parse().ok()) {
                        Some(v) => repeat = v,
                        None => return usage(),
                    },
                    "--duration" => match grab("--duration").and_then(|v| v.parse().ok()) {
                        Some(v) => duration = v,
                        None => return usage(),
                    },
                    "--seed" => match grab("--seed").and_then(|v| v.parse().ok()) {
                        Some(v) => seed = v,
                        None => return usage(),
                    },
                    "--archive" => match grab("--archive") {
                        Some(v) => archive = Some(PathBuf::from(v)),
                        None => return usage(),
                    },
                    "--faults" => match grab("--faults") {
                        Some(v) => match FaultPlan::parse(&v) {
                            Ok(plan) => faults = plan,
                            Err(e) => {
                                eprintln!("--faults: {e}");
                                return usage();
                            }
                        },
                        None => return usage(),
                    },
                    "--replay-check" => replay_check = true,
                    other if !other.starts_with("--") => conf_path = Some(other.to_string()),
                    other => {
                        eprintln!("unknown flag {other}");
                        return usage();
                    }
                }
            }
            let Some(path) = conf_path else {
                return usage();
            };
            let conf = match load_conf(&path) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("invalid: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(opt_conf) = conf.optimization else {
                eprintln!("{path}: no `optimization` section");
                return ExitCode::FAILURE;
            };
            // Workload: total concurrent requests of all client services
            // (falls back to the paper's 80).
            let clients: usize = conf
                .layers
                .iter()
                .flat_map(|l| &l.services)
                .filter(|s| s.name.contains("client"))
                .map(|s| s.quantity * 20)
                .sum::<usize>()
                .max(80);
            let objective = move |ctx: &e2c_core::optimization::EvalContext| {
                let cfg = PoolConfig::from_point(&ctx.point);
                let mut spec = ExperimentSpec::paper(cfg, clients);
                spec.duration = SimTime::from_secs(duration);
                spec.warmup = SimTime::from_secs((duration / 10).min(60));
                EngineRun::run_repeated(spec, repeat, 1000 + ctx.trial_id)
                    .response
                    .mean
            };
            if replay_check {
                return run_replay_check(opt_conf, seed, faults, archive, objective);
            }
            let mut manager = OptimizationManager::new(opt_conf)
                .with_seed(seed)
                .with_faults(faults);
            if let Some(dir) = archive.clone() {
                manager = manager.with_archive(dir);
            }
            let summary = manager.run(objective);
            print!("{}", summary.render());
            if let Some(dir) = archive {
                println!("archive written to {}", dir.display());
            }
            ExitCode::SUCCESS
        }
        "lint" => {
            let mut config = detlint::Config::default();
            let mut root: Option<PathBuf> = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--config" => {
                        let Some(path) = it.next() else {
                            eprintln!("--config needs a value");
                            return usage();
                        };
                        let text = match std::fs::read_to_string(path) {
                            Ok(t) => t,
                            Err(e) => {
                                eprintln!("{path}: {e}");
                                return ExitCode::FAILURE;
                            }
                        };
                        if let Err(e) = config.apply_file(&text) {
                            eprintln!("{path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                    other if !other.starts_with("--") => root = Some(PathBuf::from(other)),
                    other => {
                        eprintln!("unknown flag {other}");
                        return usage();
                    }
                }
            }
            let root = root.unwrap_or_else(workspace_root);
            match detlint::lint_workspace(&root, &config) {
                Ok(report) => {
                    print!("{}", report.render());
                    if report.is_clean() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("lint failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "report" => {
            let Some(dir) = args.get(1) else {
                return usage();
            };
            let path = PathBuf::from(dir).join("summary.txt");
            match std::fs::read_to_string(&path) {
                Ok(text) => {
                    print!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{}: {e}", path.display());
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
