//! The Services abstraction (§V-C).
//!
//! "Services represent any system or a group of systems that provide a
//! specific functionality or action in the scenario workflow." Users
//! implement [`Service::deploy`] with the logic mapping their system onto
//! physical machines; the framework's managers then place each service on
//! its reserved nodes. The Pl@ntNet engine and client services the paper
//! needed (§V-C: "we had to implement the Pl@ntNet service") are provided
//! here.

use e2c_testbed::{NodeId, Testbed};
use std::collections::BTreeMap;
use std::fmt;

/// Why a deployment failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployError {
    /// Service that failed.
    pub service: String,
    /// Explanation.
    pub reason: String,
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deploy {}: {}", self.service, self.reason)
    }
}

impl std::error::Error for DeployError {}

/// A deployable system in the scenario workflow.
pub trait Service: Send + Sync {
    /// Unique service name (matches the configuration file).
    fn name(&self) -> &str;

    /// Validate the assigned nodes and produce deployment facts (software
    /// installed, endpoints, parameters) recorded in the archive. Returns
    /// the per-node description.
    fn deploy(&self, nodes: &[NodeId], testbed: &Testbed) -> Result<Vec<String>, DeployError>;
}

/// The Pl@ntNet Identification Engine service: requires GPU nodes.
pub struct PlantnetEngineService;

impl Service for PlantnetEngineService {
    fn name(&self) -> &str {
        "plantnet-engine"
    }

    fn deploy(&self, nodes: &[NodeId], testbed: &Testbed) -> Result<Vec<String>, DeployError> {
        if nodes.is_empty() {
            return Err(DeployError {
                service: self.name().to_string(),
                reason: "needs at least one node".to_string(),
            });
        }
        let mut out = Vec::new();
        for &id in nodes {
            let node = testbed.node(id);
            if !node.spec.has_gpu() {
                return Err(DeployError {
                    service: self.name().to_string(),
                    reason: format!("node {} has no GPU", node.hostname),
                });
            }
            out.push(format!(
                "{}: engine container ({} cores, {:.0} GB GPU)",
                node.hostname,
                node.spec.cpu.total_cores(),
                node.spec.total_gpu_memory_gb()
            ));
        }
        Ok(out)
    }
}

/// Request-generating clients: any CPU node will do.
pub struct ClientsService {
    /// Simultaneous requests this client group sustains.
    pub simultaneous_requests: usize,
}

impl Service for ClientsService {
    fn name(&self) -> &str {
        "clients"
    }

    fn deploy(&self, nodes: &[NodeId], testbed: &Testbed) -> Result<Vec<String>, DeployError> {
        if nodes.is_empty() {
            return Err(DeployError {
                service: self.name().to_string(),
                reason: "needs at least one node".to_string(),
            });
        }
        let per_node = self.simultaneous_requests.div_ceil(nodes.len());
        Ok(nodes
            .iter()
            .map(|&id| {
                format!(
                    "{}: client generator ({} concurrent requests)",
                    testbed.node(id).hostname,
                    per_node
                )
            })
            .collect())
    }
}

/// Registry of user-defined services, looked up by the workflow manager.
#[derive(Default)]
pub struct ServiceRegistry {
    services: BTreeMap<String, Box<dyn Service>>,
}

impl ServiceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a service (replaces an existing one of the same name).
    pub fn register(&mut self, service: Box<dyn Service>) {
        self.services.insert(service.name().to_string(), service);
    }

    /// Look up a service by name.
    pub fn get(&self, name: &str) -> Option<&dyn Service> {
        self.services.get(name).map(|b| b.as_ref())
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.services.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2c_testbed::grid5000;

    #[test]
    fn engine_requires_gpu_nodes() {
        let mut tb = grid5000::paper_testbed();
        let gpu = tb.reserve("chifflot", 1).unwrap();
        let cpu = tb.reserve("gros", 1).unwrap();
        let svc = PlantnetEngineService;
        let ok = svc.deploy(&gpu.nodes, &tb).unwrap();
        assert!(ok[0].contains("GPU"));
        let err = svc.deploy(&cpu.nodes, &tb).unwrap_err();
        assert!(err.reason.contains("no GPU"));
        assert!(svc.deploy(&[], &tb).is_err());
    }

    #[test]
    fn clients_spread_requests() {
        let mut tb = grid5000::paper_testbed();
        let res = tb.reserve("gros", 4).unwrap();
        let svc = ClientsService {
            simultaneous_requests: 80,
        };
        let lines = svc.deploy(&res.nodes, &tb).unwrap();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("20 concurrent"));
    }

    #[test]
    fn registry_lookup() {
        let mut reg = ServiceRegistry::new();
        reg.register(Box::new(PlantnetEngineService));
        reg.register(Box::new(ClientsService {
            simultaneous_requests: 10,
        }));
        assert!(reg.get("plantnet-engine").is_some());
        assert!(reg.get("clients").is_some());
        assert!(reg.get("spark").is_none());
        assert_eq!(reg.names(), vec!["clients", "plantnet-engine"]);
    }
}
