//! The class-based user API of Listing 1.
//!
//! The paper lets researchers subclass `Optimization`, configure the
//! search in `run()` and put their deployment logic in `run_objective()`,
//! with `prepare()` / `launch()` / `finalize()` provided by the framework.
//! [`UserOptimization`] is the Rust spelling: implement two methods,
//! inherit the rest.
//!
//! ```no_run
//! use e2c_core::user_api::{UserOptimization, ObjectiveHandle};
//! use e2c_conf::schema::OptimizationConf;
//!
//! struct MyTuning {
//!     conf: OptimizationConf,
//! }
//!
//! impl UserOptimization for MyTuning {
//!     fn setup(&self) -> OptimizationConf {
//!         self.conf.clone() // Listing 1's run(): algo + space + budget
//!     }
//!     fn run_objective(&self, handle: &ObjectiveHandle) -> f64 {
//!         // Listing 1's run_objective(): deploy, execute, return metric.
//!         handle.point[0] // silly objective
//!     }
//! }
//! ```

use crate::optimization::{EvalContext, OptimizationManager, OptimizationSummary};
use e2c_conf::schema::OptimizationConf;
use e2c_optim::space::Point;
use std::path::PathBuf;

/// What `run_objective` receives — the evaluation's configuration plus
/// the framework-managed artifact directory.
#[derive(Debug, Clone)]
pub struct ObjectiveHandle {
    /// Trial id.
    pub trial_id: u64,
    /// Configuration under evaluation (external units).
    pub point: Point,
    /// `prepare()`d directory for this evaluation, when archiving is on.
    pub eval_dir: Option<PathBuf>,
}

/// The paper's `Optimization` base class as a trait: implement
/// [`UserOptimization::setup`] (the body of `run()`) and
/// [`UserOptimization::run_objective`]; call
/// [`UserOptimization::optimize`] to execute the whole cycle with
/// `prepare()` / `launch()` / `finalize()` handled by the framework.
pub trait UserOptimization: Send + Sync {
    /// Phase I: the optimization problem + search configuration
    /// (Listing 1 lines 5–26).
    fn setup(&self) -> OptimizationConf;

    /// One model evaluation (Listing 1 lines 28–36): deploy the
    /// configuration, run the workload, return the metric value.
    fn run_objective(&self, handle: &ObjectiveHandle) -> f64;

    /// Experiment seed (override for multi-seed studies).
    fn seed(&self) -> u64 {
        0
    }

    /// Archive root (override to enable Phase III artifacts).
    fn archive_root(&self) -> Option<PathBuf> {
        None
    }

    /// Execute the full optimization cycle. Provided by the framework —
    /// the analogue of instantiating the class and letting Tune drive it.
    fn optimize(&self) -> OptimizationSummary {
        let mut manager = OptimizationManager::new(self.setup()).with_seed(self.seed());
        if let Some(root) = self.archive_root() {
            manager = manager.with_archive(root);
        }
        manager.run(|ctx: &EvalContext| {
            let handle = ObjectiveHandle {
                trial_id: ctx.trial_id,
                point: ctx.point.clone(),
                eval_dir: ctx.eval_dir.clone(),
            };
            self.run_objective(&handle)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2c_conf::parse;
    use e2c_conf::schema::ExperimentConf;

    struct Quadratic;

    impl UserOptimization for Quadratic {
        fn setup(&self) -> OptimizationConf {
            let src = r#"
name: x
optimization:
  metric: loss
  mode: min
  name: quadratic
  num_samples: 18
  max_concurrent: 2
  search:
    algo: extra_trees
    n_initial_points: 6
  config:
    - name: a
      type: randint
      bounds: [0, 30]
"#;
            ExperimentConf::from_value(&parse(src).unwrap())
                .unwrap()
                .optimization
                .unwrap()
        }

        fn run_objective(&self, handle: &ObjectiveHandle) -> f64 {
            (handle.point[0] - 21.0).powi(2)
        }

        fn seed(&self) -> u64 {
            11
        }
    }

    #[test]
    fn class_style_optimization_runs_end_to_end() {
        let summary = Quadratic.optimize();
        assert_eq!(summary.analysis.trials().len(), 18);
        let best = summary.best_value.unwrap();
        assert!(best <= 9.0, "best {best}");
        assert_eq!(summary.conf.name, "quadratic");
    }
}
