//! The class-based user API of Listing 1.
//!
//! The paper lets researchers subclass `Optimization`, configure the
//! search in `run()` and put their deployment logic in `run_objective()`,
//! with `prepare()` / `launch()` / `finalize()` provided by the framework.
//! [`UserOptimization`] is the Rust spelling: implement two methods,
//! inherit the rest. `run_objective` receives the same [`EvalContext`]
//! the manager-level API uses — one evaluation handle everywhere.
//!
//! ```no_run
//! use e2c_core::user_api::{EvalContext, UserOptimization};
//! use e2c_conf::schema::OptimizationConf;
//!
//! struct MyTuning {
//!     conf: OptimizationConf,
//! }
//!
//! impl UserOptimization for MyTuning {
//!     fn setup(&self) -> OptimizationConf {
//!         self.conf.clone() // Listing 1's run(): algo + space + budget
//!     }
//!     fn run_objective(&self, ctx: &EvalContext) -> f64 {
//!         // Listing 1's run_objective(): deploy, execute, return metric.
//!         ctx.point[0] // silly objective
//!     }
//! }
//! ```

use crate::optimization::{OptimizationManager, OptimizationSummary};
use e2c_conf::schema::OptimizationConf;
use std::path::PathBuf;

pub use crate::optimization::EvalContext;

/// The paper's `Optimization` base class as a trait: implement
/// [`UserOptimization::setup`] (the body of `run()`) and
/// [`UserOptimization::run_objective`]; call
/// [`UserOptimization::optimize`] to execute the whole cycle with
/// `prepare()` / `launch()` / `finalize()` handled by the framework.
pub trait UserOptimization: Send + Sync {
    /// Phase I: the optimization problem + search configuration
    /// (Listing 1 lines 5–26).
    fn setup(&self) -> OptimizationConf;

    /// One model evaluation (Listing 1 lines 28–36): deploy the
    /// configuration, run the workload, return the metric value. The
    /// context carries the trial id, the attempt number (> 0 on a
    /// retry), the point and the `prepare()`d artifact directory.
    fn run_objective(&self, ctx: &EvalContext) -> f64;

    /// Experiment seed (override for multi-seed studies).
    fn seed(&self) -> u64 {
        0
    }

    /// Archive root (override to enable Phase III artifacts).
    fn archive_root(&self) -> Option<PathBuf> {
        None
    }

    /// Execute the full optimization cycle. Provided by the framework —
    /// the analogue of instantiating the class and letting Tune drive it.
    /// Panics on journal/archive errors; drive
    /// [`OptimizationManager::run`] directly to handle them.
    fn optimize(&self) -> OptimizationSummary {
        let mut manager = OptimizationManager::new(self.setup()).with_seed(self.seed());
        if let Some(root) = self.archive_root() {
            manager = manager.with_archive(root);
        }
        manager
            .run(|ctx: &EvalContext| self.run_objective(ctx))
            .unwrap_or_else(|e| panic!("optimization run failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2c_conf::parse;
    use e2c_conf::schema::ExperimentConf;

    struct Quadratic;

    impl UserOptimization for Quadratic {
        fn setup(&self) -> OptimizationConf {
            let src = r#"
name: x
optimization:
  metric: loss
  mode: min
  name: quadratic
  num_samples: 18
  max_concurrent: 2
  search:
    algo: extra_trees
    n_initial_points: 6
  config:
    - name: a
      type: randint
      bounds: [0, 30]
"#;
            ExperimentConf::from_value(&parse(src).unwrap())
                .unwrap()
                .optimization
                .unwrap()
        }

        fn run_objective(&self, ctx: &EvalContext) -> f64 {
            assert_eq!(ctx.attempt, 0, "no faults configured, no retries");
            (ctx.point[0] - 21.0).powi(2)
        }

        fn seed(&self) -> u64 {
            11
        }
    }

    #[test]
    fn class_style_optimization_runs_end_to_end() {
        let summary = Quadratic.optimize();
        assert_eq!(summary.analysis.trials().len(), 18);
        let best = summary.best_value.unwrap();
        assert!(best <= 9.0, "best {best}");
        assert_eq!(summary.conf.name, "quadratic");
    }
}
