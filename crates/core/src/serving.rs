//! Continuous re-optimization over a replayed seasonal trace — the
//! "serving mode" driver behind `e2clab serve`.
//!
//! The paper optimizes the Pl@ntNet engine for one static workload; this
//! module asks what the framework does when the workload is the *moving*
//! Fig. 2 curve. [`run_serving`] segments a [`serving_schedule`] (the
//! seasonal growth trace scaled to a users/day figure) into load epochs
//! and, for each epoch, re-runs the seeded optimization cycle against an
//! open-loop serving run at that epoch's arrival rate, under an
//! [`OverloadPolicy`] (bounded admission queue, deadline shedding, SLO
//! accounting). The tuned pool configuration therefore *tracks* the
//! seasonal load, and the whole run stays inside the reproducibility
//! story:
//!
//! * every epoch's cycle is an ordinary [`OptimizationManager`] run —
//!   seeded, archivable, journalable — so per-epoch artifacts
//!   (`evaluations.csv`, `best.yaml`, `trials/trials.jsonl`) are
//!   byte-identical across reruns and resumes;
//! * the serving run itself keeps a side WAL (`serving.wal`) holding the
//!   *rendered* `serving.csv` rows: a resume replays completed epochs
//!   from their recorded bytes (never re-rendering floats), so the final
//!   CSV is byte-identical whether or not the run was interrupted;
//! * `serving.csv` is rewritten atomically after every epoch and
//!   `trace.jsonl` is rebuilt from the rows at the end, so a crash at
//!   any point leaves only complete artifacts.
//!
//! The per-trial objective is an SLO-aware cost (not the closed-loop
//! response mean): `mean_response + slo · (4·(rejected+shed) +
//! violations) / offered`. Rejections and sheds are weighted like
//! worst-case SLO misses — a config that bounces users is worse than one
//! that serves them slowly.

use crate::optimization::{EvalContext, JournalConfig, OptimizationManager};
use e2c_conf::schema::{
    AcqFunc, InitialPointGenerator, OptimizationConf, SearchAlgo, SurrogateName, VarKind,
    VariableConf,
};
use e2c_des::SimTime;
use e2c_journal::{write_atomic, Wal};
use e2c_workload::seasonal::GrowthModel;
use e2c_workload::{serving_schedule, RateSchedule};
use plantnet::sim::ExperimentSpec;
use plantnet::{Experiment as EngineRun, OverloadPolicy, PoolConfig};
use std::path::PathBuf;

/// Everything that shapes a serving run. All knobs fold into the journal
/// fingerprint (except the output paths), so a resume under different
/// parameters is refused instead of silently diverging.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Workload scale in users/day (the paper's Pl@ntNet order of
    /// magnitude is millions).
    pub scale: f64,
    /// Number of trace months to serve (one load epoch per month).
    pub epochs: usize,
    /// Simulated length of each epoch. The trace month's *rate* is
    /// replayed for this long — compressing a month into minutes keeps
    /// the DES tractable while preserving the per-epoch load level.
    pub epoch_duration: SimTime,
    /// Optimization budget per epoch (trials).
    pub samples: usize,
    /// Parallel evaluation cap inside each epoch's cycle.
    pub max_concurrent: usize,
    /// Response-time SLO bound in seconds.
    pub slo: f64,
    /// Admission-queue bound; arrivals beyond it are rejected.
    pub queue_bound: usize,
    /// Shed queued requests older than this (`None`: never shed).
    pub shed_after: Option<SimTime>,
    /// Master seed: epoch seeds and trial seeds derive from it.
    pub seed: u64,
    /// First trace year (epoch 0 is January of this year).
    pub first_year: u32,
    /// Output root: `serving.csv`, `trace.jsonl`, `epochs/epoch_NN/`.
    pub out_dir: PathBuf,
    /// Journal root (`serving.wal` + per-epoch journals). `None`: the
    /// run is not crash-safe (but still deterministic).
    pub journal_dir: Option<PathBuf>,
    /// Continue a killed run from its journal instead of starting fresh.
    pub resume: bool,
    /// Chaos knob: exit (code 86) after the Nth journal append of the
    /// current epoch's cycle — kills the run *mid-epoch*.
    pub crash_at: Option<u64>,
    /// Chaos knob: exit (code 86) right after epoch K's row commits —
    /// kills the run *at an epoch boundary*.
    pub crash_at_epoch: Option<usize>,
}

impl ServingConfig {
    /// Paper-flavoured defaults: 2.5M users/day, six monthly epochs of
    /// 180 simulated seconds, 8 trials per epoch, the 4 s SLO.
    pub fn new(out_dir: PathBuf) -> Self {
        ServingConfig {
            scale: 2_500_000.0,
            epochs: 6,
            epoch_duration: SimTime::from_secs(180),
            samples: 8,
            max_concurrent: 2,
            slo: 4.0,
            queue_bound: 64,
            shed_after: Some(SimTime::from_secs(8)),
            seed: 0,
            first_year: 2017,
            out_dir,
            journal_dir: None,
            resume: false,
            crash_at: None,
            crash_at_epoch: None,
        }
    }
}

/// One committed epoch of a serving run: the tuned configuration and the
/// overload accounting of its final evaluation. Serialized as one
/// `serving.csv` row; the WAL stores the *rendered* row so resumes never
/// re-render (bytes are the source of truth).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRow {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Trace month label (`YYYY-MM`).
    pub label: String,
    /// Offered arrival rate (requests/second).
    pub rate: f64,
    /// Tuned pool configuration.
    pub config: PoolConfig,
    /// Best objective value of the epoch's cycle (NaN when every trial
    /// failed and the baseline config was kept).
    pub cost: f64,
    /// Arrivals offered during the final evaluation.
    pub offered: u64,
    /// Requests that entered service.
    pub admitted: u64,
    /// Arrivals bounced by the admission bound.
    pub rejected: u64,
    /// Queued requests shed (deadline + end-of-run flush).
    pub shed: u64,
    /// Completions over the SLO bound.
    pub slo_violations: u64,
    /// Requests completed.
    pub completed: u64,
    /// Mean response time over the run's windows (seconds).
    pub response_mean: f64,
    /// Mean completion rate (requests/second).
    pub throughput: f64,
}

/// `serving.csv` column header.
pub const CSV_HEADER: &str = "epoch,label,rate_rps,http,download,simsearch,extract,cost,\
                              offered,admitted,rejected,shed,slo_violations,completed,\
                              response_mean,throughput";

impl EpochRow {
    /// Render as one CSV row (no newline). `f64` `Display` round-trips
    /// exactly through `parse`, so a row parsed back from the WAL
    /// re-renders to identical bytes.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.epoch,
            self.label,
            self.rate,
            self.config.http,
            self.config.download,
            self.config.simsearch,
            self.config.extract,
            self.cost,
            self.offered,
            self.admitted,
            self.rejected,
            self.shed,
            self.slo_violations,
            self.completed,
            self.response_mean,
            self.throughput,
        )
    }

    /// Parse a row rendered by [`EpochRow::to_csv`].
    pub fn from_csv(line: &str) -> Result<EpochRow, String> {
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 16 {
            return Err(format!(
                "serving row has {} fields, expected 16: {line:?}",
                parts.len()
            ));
        }
        fn num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
            s.parse()
                .map_err(|_| format!("serving row: bad {what}: {s:?}"))
        }
        Ok(EpochRow {
            epoch: num(parts[0], "epoch")?,
            label: parts[1].to_string(),
            rate: num(parts[2], "rate")?,
            config: PoolConfig {
                http: num(parts[3], "http")?,
                download: num(parts[4], "download")?,
                simsearch: num(parts[5], "simsearch")?,
                extract: num(parts[6], "extract")?,
            },
            cost: num(parts[7], "cost")?,
            offered: num(parts[8], "offered")?,
            admitted: num(parts[9], "admitted")?,
            rejected: num(parts[10], "rejected")?,
            shed: num(parts[11], "shed")?,
            slo_violations: num(parts[12], "slo_violations")?,
            completed: num(parts[13], "completed")?,
            response_mean: num(parts[14], "response_mean")?,
            throughput: num(parts[15], "throughput")?,
        })
    }
}

/// Result of a serving run.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// One row per epoch, in epoch order.
    pub rows: Vec<EpochRow>,
    /// Where `serving.csv` was written.
    pub csv_path: PathBuf,
    /// Where `trace.jsonl` was written.
    pub trace_path: PathBuf,
}

impl ServingReport {
    /// Human-readable per-epoch summary.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "serving run: epoch  month    rate     tuned config (h/d/s/e)  \
             offered  rejected  shed  slo_viol  resp_mean\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "             {:<6} {:<8} {:>6.1}/s {:>2}/{:>2}/{:>2}/{:<2}             \
                 {:>7}  {:>8}  {:>4}  {:>8}  {:>8.3}s\n",
                r.epoch,
                r.label,
                r.rate,
                r.config.http,
                r.config.download,
                r.config.simsearch,
                r.config.extract,
                r.offered,
                r.rejected,
                r.shed,
                r.slo_violations,
                r.response_mean,
            ));
        }
        out
    }
}

/// SLO-aware trial cost. Rejected and shed requests count like 4×-SLO
/// misses (a bounced user is worse than a slow one); ordinary violations
/// count once. `NaN` (no completions at all) marks the trial failed.
pub fn slo_cost(
    response_mean: f64,
    slo: f64,
    offered: u64,
    rejected: u64,
    shed: u64,
    violations: u64,
) -> f64 {
    let penalty = 4.0 * (rejected + shed) as f64 + violations as f64;
    response_mean + slo * penalty / offered.max(1) as f64
}

/// The per-epoch search space: the Table II pools over the same bounds
/// as [`e2c_optim::Space::plantnet`], in `PoolConfig` point order.
fn epoch_conf(cfg: &ServingConfig, epoch: usize, label: &str) -> OptimizationConf {
    let int = |name: &str, lo: f64, hi: f64| VariableConf {
        name: name.to_string(),
        kind: VarKind::Int,
        lo,
        hi,
    };
    OptimizationConf {
        metric: "slo_cost".to_string(),
        minimize: true,
        name: format!("serve-epoch-{epoch:02}-{label}"),
        num_samples: cfg.samples,
        max_concurrent: cfg.max_concurrent.max(1),
        algo: SearchAlgo::Surrogate(SurrogateName::ExtraTrees),
        n_initial_points: cfg.samples.clamp(1, 4),
        initial_point_generator: InitialPointGenerator::Lhs,
        acq_func: AcqFunc::Ei,
        variables: vec![
            int("http", 20.0, 60.0),
            int("download", 20.0, 60.0),
            int("simsearch", 20.0, 60.0),
            int("extract", 3.0, 9.0),
        ],
        fault_tolerance: None,
    }
}

/// Everything that shapes the serving artifacts, folded into both the
/// `serving.wal` meta record and every epoch journal's fingerprint.
fn fingerprint(cfg: &ServingConfig) -> String {
    format!(
        "serve-v1;scale={};epochs={};epoch_duration={};samples={};max_concurrent={};\
         slo={};queue_bound={};shed_after={:?};seed={};first_year={}",
        cfg.scale,
        cfg.epochs,
        cfg.epoch_duration.as_micros(),
        cfg.samples,
        cfg.max_concurrent,
        cfg.slo,
        cfg.queue_bound,
        cfg.shed_after.map(SimTime::as_micros),
        cfg.seed,
        cfg.first_year,
    )
}

/// Per-epoch seed: a splitmix-style derivation of the master seed so
/// epochs draw unrelated streams while staying pure functions of
/// `(seed, epoch)`.
fn epoch_seed(seed: u64, epoch: usize) -> u64 {
    seed ^ (epoch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Run one epoch's optimization cycle + final evaluation.
fn run_epoch(
    cfg: &ServingConfig,
    epoch: usize,
    label: &str,
    rate: f64,
    resume_epoch: bool,
    fp: &str,
) -> Result<EpochRow, String> {
    let eseed = epoch_seed(cfg.seed, epoch);
    let sched = RateSchedule::constant(rate, cfg.epoch_duration)
        .map_err(|e| format!("epoch {epoch}: {e}"))?;
    let policy = OverloadPolicy {
        queue_bound: cfg.queue_bound,
        shed_after: cfg.shed_after,
        slo: cfg.slo,
    };
    let conf = epoch_conf(cfg, epoch, label);
    let archive = cfg.out_dir.join("epochs").join(format!("epoch_{epoch:02}"));
    let mut manager = OptimizationManager::new(conf)
        .with_seed(eseed)
        .with_archive(archive);
    if let Some(jdir) = &cfg.journal_dir {
        let edir = jdir.join(format!("epoch_{epoch:02}"));
        std::fs::create_dir_all(&edir)
            .map_err(|e| format!("epoch {epoch}: create {}: {e}", edir.display()))?;
        let jc = if resume_epoch {
            JournalConfig::resume(edir)
        } else {
            JournalConfig::fresh(edir)
        };
        manager = manager.with_journal(
            jc.crash_after(cfg.crash_at)
                .extra_fingerprint(format!("{fp};epoch={epoch};rate={rate}")),
        );
    }
    let obj_sched = sched.clone();
    let slo = cfg.slo;
    let objective = move |ctx: &EvalContext| {
        let pool = PoolConfig::from_point(&ctx.point);
        let spec = ExperimentSpec::serving(pool, obj_sched.horizon());
        let m = EngineRun::run_serving(
            spec,
            &obj_sched,
            Some(policy),
            eseed.wrapping_add(1000 + ctx.trial_id),
        );
        let o = m.overload.unwrap_or_default();
        slo_cost(
            m.response.mean,
            slo,
            o.offered,
            o.rejected,
            o.shed,
            o.slo_violations,
        )
    };
    let summary = manager
        .run(objective)
        .map_err(|e| format!("epoch {epoch}: {e}"))?;
    // Every trial failed (e.g. a zero-demand epoch where no request ever
    // completes): keep the paper baseline and mark the cost undefined.
    let (best, cost) = match (&summary.best_point, summary.best_value) {
        (Some(p), Some(v)) => (PoolConfig::from_point(p), v),
        _ => (PoolConfig::baseline(), f64::NAN),
    };
    // Final evaluation of the tuned config on the epoch's schedule, with
    // a seed disjoint from every trial seed — the row reports held-out
    // serving behaviour, not the winning trial's own draw.
    let spec = ExperimentSpec::serving(best, sched.horizon());
    let m = EngineRun::run_serving(spec, &sched, Some(policy), eseed ^ 0x5EED_CAFE);
    let o = m.overload.unwrap_or_default();
    Ok(EpochRow {
        epoch,
        label: label.to_string(),
        rate,
        config: best,
        cost,
        offered: o.offered,
        admitted: o.admitted,
        rejected: o.rejected,
        shed: o.shed,
        slo_violations: o.slo_violations,
        completed: m.completed,
        response_mean: m.response.mean,
        throughput: m.throughput,
    })
}

/// Rewrite `serving.csv` from the committed rows (atomic: a crash leaves
/// the previous complete file, never a torn one).
fn write_csv(path: &std::path::Path, rows: &[EpochRow]) -> Result<(), String> {
    let mut text = String::from(CSV_HEADER);
    text.push('\n');
    for r in rows {
        text.push_str(&r.to_csv());
        text.push('\n');
    }
    write_atomic(path, text.as_bytes()).map_err(|e| format!("{}: {e}", path.display()))
}

/// Rebuild `trace.jsonl` from the committed rows. Virtual time is the
/// epoch's end offset in the serving timeline, so the trace is a pure
/// function of the rows — identical across reruns *and* resumes.
fn write_trace(
    path: &std::path::Path,
    cfg: &ServingConfig,
    rows: &[EpochRow],
) -> Result<(), String> {
    let tracer = e2c_trace::Tracer::new();
    tracer.point_at(
        0,
        "serve",
        "start",
        None,
        e2c_trace::fields([
            ("scale", cfg.scale.into()),
            ("epochs", (cfg.epochs as u64).into()),
            ("slo", cfg.slo.into()),
            ("queue_bound", (cfg.queue_bound as u64).into()),
            ("seed", cfg.seed.into()),
        ]),
    );
    for r in rows {
        tracer.point_at(
            (r.epoch as u64 + 1) * cfg.epoch_duration.as_micros(),
            "serve",
            "epoch",
            None,
            e2c_trace::fields([
                ("epoch", (r.epoch as u64).into()),
                ("label", r.label.as_str().into()),
                ("rate", r.rate.into()),
                ("http", r.config.http.into()),
                ("download", r.config.download.into()),
                ("simsearch", r.config.simsearch.into()),
                ("extract", r.config.extract.into()),
                ("cost", r.cost.into()),
                ("offered", r.offered.into()),
                ("admitted", r.admitted.into()),
                ("rejected", r.rejected.into()),
                ("shed", r.shed.into()),
                ("slo_violations", r.slo_violations.into()),
                ("completed", r.completed.into()),
                ("response_mean", r.response_mean.into()),
                ("throughput", r.throughput.into()),
            ]),
        );
    }
    tracer
        .save(path)
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// Serving WAL records: `meta\n<fingerprint>` once, then one
/// `epoch\t<i>\t<csv row>` per committed epoch.
fn meta_record(fp: &str) -> Vec<u8> {
    format!("meta\n{fp}").into_bytes()
}

/// Run the full serving loop. See the module docs for the protocol; the
/// short version: for each epoch not already committed to `serving.wal`,
/// tune, evaluate, append the rendered row, rewrite `serving.csv`; at
/// the end rebuild `trace.jsonl` from the rows.
pub fn run_serving(cfg: &ServingConfig) -> Result<ServingReport, String> {
    if cfg.epochs == 0 {
        return Err("serve: need at least one epoch".to_string());
    }
    if cfg.samples == 0 {
        return Err("serve: need at least one sample per epoch".to_string());
    }
    if cfg.resume && cfg.journal_dir.is_none() {
        return Err("serve: --resume needs a journal directory".to_string());
    }
    let model = GrowthModel::default();
    let schedule = serving_schedule(
        &model,
        cfg.first_year,
        cfg.epochs,
        cfg.epoch_duration,
        cfg.scale,
    )
    .map_err(|e| format!("serve: {e}"))?;
    let fp = fingerprint(cfg);
    let csv_path = cfg.out_dir.join("serving.csv");
    let trace_path = cfg.out_dir.join("trace.jsonl");
    std::fs::create_dir_all(&cfg.out_dir)
        .map_err(|e| format!("serve: create {}: {e}", cfg.out_dir.display()))?;

    // Open (or create) the serving WAL and replay committed rows.
    let mut rows: Vec<EpochRow> = Vec::new();
    let mut wal: Option<Wal> = None;
    if let Some(jdir) = &cfg.journal_dir {
        std::fs::create_dir_all(jdir)
            .map_err(|e| format!("serve: create {}: {e}", jdir.display()))?;
        let wal_path = jdir.join("serving.wal");
        if cfg.resume {
            let (mut w, records) = Wal::open(&wal_path)
                .map_err(|e| format!("--resume: open {}: {e}", wal_path.display()))?;
            if records.is_empty() {
                // Killed before the meta record landed: a fresh start.
                w.append(&meta_record(&fp))
                    .map_err(|e| format!("serving.wal: {e}"))?;
            } else {
                if records[0] != meta_record(&fp) {
                    return Err(format!(
                        "--resume: {} belongs to a different serving run \
                         (parameters changed?) — refusing to continue",
                        wal_path.display()
                    ));
                }
                for (i, rec) in records[1..].iter().enumerate() {
                    let line = std::str::from_utf8(rec)
                        .map_err(|e| format!("serving.wal record {i}: not UTF-8: {e}"))?;
                    let row_csv = line
                        .strip_prefix(&format!("epoch\t{i}\t"))
                        .ok_or_else(|| format!("serving.wal record {i}: malformed: {line:?}"))?;
                    let row = EpochRow::from_csv(row_csv)
                        .map_err(|e| format!("serving.wal record {i}: {e}"))?;
                    rows.push(row);
                }
            }
            wal = Some(w);
        } else {
            let mut w = Wal::create(&wal_path).map_err(|e| {
                if e.kind() == std::io::ErrorKind::AlreadyExists {
                    format!(
                        "--journal: {} already exists — use --resume to continue it",
                        wal_path.display()
                    )
                } else {
                    format!("--journal: create {}: {e}", wal_path.display())
                }
            })?;
            w.append(&meta_record(&fp))
                .map_err(|e| format!("serving.wal: {e}"))?;
            wal = Some(w);
        }
    }

    let done = rows.len();
    for (i, epoch) in schedule.epochs().iter().enumerate() {
        if i < done {
            continue; // Committed before the crash; bytes already in `rows`.
        }
        // An epoch journal left behind by a mid-epoch kill is resumed;
        // epochs never started (no journal dir yet) run fresh.
        let resume_epoch = cfg.resume
            && cfg
                .journal_dir
                .as_ref()
                .map(|j| j.join(format!("epoch_{i:02}")).join("run.wal").is_file())
                .unwrap_or(false);
        let row = run_epoch(cfg, i, &epoch.label, epoch.rate, resume_epoch, &fp)?;
        if let Some(w) = &mut wal {
            w.append(format!("epoch\t{i}\t{}", row.to_csv()).as_bytes())
                .map_err(|e| format!("serving.wal: {e}"))?;
        }
        rows.push(row);
        write_csv(&csv_path, &rows)?;
        if cfg.crash_at_epoch == Some(i) {
            // Epoch-boundary chaos knob: the row is committed (WAL +
            // CSV), the trace is not — exactly what a kill between
            // epochs looks like.
            std::process::exit(e2c_tune::CRASH_EXIT_CODE);
        }
    }
    write_csv(&csv_path, &rows)?;
    write_trace(&trace_path, cfg, &rows)?;
    Ok(ServingReport {
        rows,
        csv_path,
        trace_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> EpochRow {
        EpochRow {
            epoch: 3,
            label: "2017-04".to_string(),
            rate: 37.25,
            config: PoolConfig::preliminary_optimum(),
            cost: 2.625,
            offered: 6700,
            admitted: 6650,
            rejected: 30,
            shed: 20,
            slo_violations: 12,
            completed: 6648,
            response_mean: 1.875,
            throughput: 36.9,
        }
    }

    #[test]
    fn epoch_row_round_trips_through_csv() {
        let r = row();
        let parsed = EpochRow::from_csv(&r.to_csv()).expect("round trip");
        assert_eq!(parsed, r);
        // Bytes, not just values: the WAL stores rendered rows.
        assert_eq!(parsed.to_csv(), r.to_csv());
    }

    #[test]
    fn epoch_row_rejects_malformed_lines() {
        assert!(EpochRow::from_csv("1,2,3").is_err());
        let mut bad = row().to_csv();
        bad = bad.replacen("37.25", "not-a-number", 1);
        assert!(EpochRow::from_csv(&bad).is_err());
    }

    #[test]
    fn csv_header_matches_row_arity() {
        assert_eq!(
            CSV_HEADER.split(',').count(),
            row().to_csv().split(',').count()
        );
    }

    #[test]
    fn slo_cost_penalizes_overload() {
        let base = slo_cost(2.0, 4.0, 1000, 0, 0, 0);
        assert!((base - 2.0).abs() < 1e-12);
        let with_viol = slo_cost(2.0, 4.0, 1000, 0, 0, 100);
        let with_rej = slo_cost(2.0, 4.0, 1000, 100, 0, 0);
        assert!(with_viol > base);
        // A rejection is 4× worse than a violation.
        assert!((with_rej - base) > 3.9 * (with_viol - base));
        // Failed runs poison the cost, marking the trial failed.
        assert!(slo_cost(f64::NAN, 4.0, 0, 0, 0, 0).is_nan());
    }

    #[test]
    fn epoch_seeds_are_distinct() {
        let seeds: std::collections::BTreeSet<u64> = (0..24).map(|i| epoch_seed(7, i)).collect();
        assert_eq!(seeds.len(), 24);
    }

    #[test]
    fn fingerprint_changes_with_every_knob() {
        let base = ServingConfig::new(PathBuf::from("/tmp/x"));
        let fp0 = fingerprint(&base);
        let mut c = base.clone();
        c.scale = 1.0e6;
        assert_ne!(fingerprint(&c), fp0);
        let mut c = base.clone();
        c.slo = 2.0;
        assert_ne!(fingerprint(&c), fp0);
        let mut c = base.clone();
        c.seed = 1;
        assert_ne!(fingerprint(&c), fp0);
        let mut c = base.clone();
        c.shed_after = None;
        assert_ne!(fingerprint(&c), fp0);
        // Output paths are NOT part of identity: moving a run is fine.
        let mut c = base.clone();
        c.out_dir = PathBuf::from("/tmp/y");
        assert_eq!(fingerprint(&c), fp0);
    }

    #[test]
    fn tiny_serving_run_commits_every_epoch() {
        let dir = std::env::temp_dir().join(format!("e2c-serve-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ServingConfig::new(dir.join("out"));
        cfg.scale = 400_000.0;
        cfg.epochs = 2;
        cfg.epoch_duration = SimTime::from_secs(20);
        cfg.samples = 2;
        cfg.max_concurrent = 1;
        cfg.seed = 42;
        let report = run_serving(&cfg).expect("serving run");
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].label, "2017-01");
        assert_eq!(report.rows[1].label, "2017-02");
        for r in &report.rows {
            assert_eq!(r.admitted + r.rejected + r.shed, r.offered, "conservation");
            assert!(r.offered > 0, "a 400K-user January still offers load");
        }
        let csv = std::fs::read_to_string(&report.csv_path).expect("serving.csv");
        assert!(csv.starts_with(CSV_HEADER));
        assert_eq!(csv.lines().count(), 3);
        assert!(report.trace_path.is_file());
        // Per-epoch archives landed.
        assert!(cfg.out_dir.join("epochs/epoch_00/best.yaml").is_file());
        assert!(cfg
            .out_dir
            .join("epochs/epoch_01/evaluations.csv")
            .is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
