//! The Optimization Manager (Fig. 5, Listing 1).
//!
//! Phase I comes in as an [`OptimizationConf`] (parsed from
//! `optimizer_conf`). Phase II is the *optimization cycle*: the manager
//! builds the search algorithm, wraps it in a concurrency limiter, and
//! drives parallel evaluations whose results retrain the model
//! asynchronously. Phase III is the [`OptimizationSummary`]: problem
//! definition, sampler, algorithm + hyperparameters, all evaluated points
//! and the best configuration — written to a reproducibility archive.
//!
//! The `prepare()` / `launch()` / `finalize()` methods of the paper's
//! `Optimization` class map to the per-evaluation steps the manager
//! performs around the user objective: it creates a per-evaluation
//! directory, runs the deployment callback, and records the evaluation.

use crate::archive;
use e2c_conf::schema::VarKind;
use e2c_conf::schema::{
    AcqFunc, InitialPointGenerator, OptimizationConf, SearchAlgo, SurrogateName,
};
use e2c_optim::acquisition::Acquisition;
use e2c_optim::bayes::BayesOpt;
use e2c_optim::sampling::InitialDesign;
use e2c_optim::space::{Point, Space};
use e2c_optim::surrogate::SurrogateKind;
use e2c_tune::fault::{FaultPlan, RetryPolicy};
use e2c_tune::journal::{ResumeState, RunEvent, RunJournal};
use e2c_tune::searcher::{ConcurrencyLimiter, GridSearch, RandomSearch, SkOptSearch};
use e2c_tune::tuner::{Mode, Tuner};
use e2c_tune::{Analysis, Fifo, Scheduler, Searcher};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Crash-safety configuration for a journaled run (`--journal` /
/// `--resume` / `--crash-at`).
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding `run.wal` (and `trace.stream.jsonl` when traced).
    pub dir: PathBuf,
    /// Resume an existing journal instead of starting a fresh one.
    pub resume: bool,
    /// Chaos knob: exit with [`e2c_tune::CRASH_EXIT_CODE`] right after
    /// the Nth journal append of this process.
    pub crash_after: Option<u64>,
    /// Caller-supplied context folded into the configuration fingerprint
    /// (the CLI adds its cycle parameters so a journal cannot be resumed
    /// under different ones).
    pub extra_fingerprint: String,
}

impl JournalConfig {
    /// Fresh journal under `dir`.
    pub fn fresh(dir: PathBuf) -> Self {
        JournalConfig {
            dir,
            resume: false,
            crash_after: None,
            extra_fingerprint: String::new(),
        }
    }

    /// Resume the journal under `dir`.
    pub fn resume(dir: PathBuf) -> Self {
        JournalConfig {
            dir,
            resume: true,
            crash_after: None,
            extra_fingerprint: String::new(),
        }
    }

    /// Chaos knob: exit right after the Nth journal append (`None` = run
    /// to completion).
    pub fn crash_after(mut self, after: Option<u64>) -> Self {
        self.crash_after = after;
        self
    }

    /// Fold caller context (CLI workload knobs) into the fingerprint.
    pub fn extra_fingerprint(mut self, extra: String) -> Self {
        self.extra_fingerprint = extra;
        self
    }
}

/// Why an optimization run failed. Display output preserves the
/// CLI-facing messages (including their `--journal:` / `--resume:`
/// prefixes), so matching on rendered text keeps working; matching on the
/// variant is the typed alternative.
#[derive(Debug)]
pub enum RunError {
    /// The journal WAL could not be created, or a fresh journal would
    /// clobber an existing one.
    Journal(String),
    /// A resume was refused or failed: fingerprint mismatch, corrupt or
    /// divergent journal, or a trace stream that does not belong to it.
    Resume(String),
    /// The trace stream could not be written.
    Trace(String),
    /// The reproducibility archive or trial log could not be written.
    Archive(String),
    /// The multi-process worker farm could not be launched (no worker
    /// spawned at all). Losses *during* the run are not this error —
    /// they surface per-attempt as `TrialError::WorkerLost` through the
    /// ordinary retry machinery.
    Farm(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (RunError::Journal(msg)
        | RunError::Resume(msg)
        | RunError::Trace(msg)
        | RunError::Archive(msg)
        | RunError::Farm(msg)) = self;
        f.write_str(msg)
    }
}

impl std::error::Error for RunError {}

/// Per-evaluation context handed to the user objective — the analogue of
/// the paper's `run_objective(self, _config)` body. This is the single
/// user-facing evaluation handle (re-exported by `crate::user_api`).
#[derive(Clone)]
pub struct EvalContext {
    /// Trial identifier.
    pub trial_id: u64,
    /// 0-based execution attempt (> 0 when the fault-tolerance layer
    /// re-runs a failed evaluation).
    pub attempt: u32,
    /// The configuration to evaluate (external units, Eq. 2 order).
    pub point: Point,
    /// Directory created by `prepare()` for this evaluation's artifacts
    /// (absent when the manager runs without an archive root).
    pub eval_dir: Option<PathBuf>,
    /// Trace handle for this evaluation. Under concurrent execution this
    /// is a per-trial buffer that the commit sequencer splices into the
    /// run trace in canonical order — objectives that emit trace events
    /// MUST use this handle (never a captured tracer) or their events
    /// land interleaved by wall clock instead of by trial.
    pub tracer: Option<e2c_trace::Tracer>,
}

impl std::fmt::Debug for EvalContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalContext")
            .field("trial_id", &self.trial_id)
            .field("attempt", &self.attempt)
            .field("point", &self.point)
            .field("eval_dir", &self.eval_dir)
            .field("traced", &self.tracer.is_some())
            .finish()
    }
}

/// Phase III output: everything needed to reproduce the optimization.
#[derive(Debug, Clone)]
pub struct OptimizationSummary {
    /// The Phase I problem definition (echoed back).
    pub conf: OptimizationConf,
    /// Seed that drove sampling, the surrogate and the search.
    pub seed: u64,
    /// Full trial-by-trial results.
    pub analysis: Analysis,
    /// Best configuration found.
    pub best_point: Option<Point>,
    /// Its metric value.
    pub best_value: Option<f64>,
}

impl OptimizationSummary {
    /// Render the summary of computations (the report Phase III prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("optimization: {}\n", self.conf.name));
        out.push_str(&format!(
            "objective: {} {}\n",
            if self.conf.minimize {
                "minimize"
            } else {
                "maximize"
            },
            self.conf.metric
        ));
        out.push_str("variables:\n");
        for v in &self.conf.variables {
            out.push_str(&format!("  {} in [{}, {}]\n", v.name, v.lo, v.hi));
        }
        out.push_str(&format!(
            "search: algo={} n_initial_points={} initial_point_generator={} acq_func={}\n",
            self.conf.algo.name(),
            self.conf.n_initial_points,
            self.conf.initial_point_generator.name(),
            self.conf.acq_func.name()
        ));
        out.push_str(&format!(
            "budget: num_samples={} max_concurrent={} seed={}\n",
            self.conf.num_samples, self.conf.max_concurrent, self.seed
        ));
        if let Some(ft) = &self.conf.fault_tolerance {
            out.push_str(&format!(
                "fault_tolerance: max_retries={} backoff_ms={} backoff_factor={} jitter={} time_budget_ms={}\n",
                ft.max_retries,
                ft.backoff_ms,
                ft.backoff_factor,
                ft.jitter,
                ft.time_budget_ms
                    .map(|ms| ms.to_string())
                    .unwrap_or_else(|| "unlimited".to_string())
            ));
        }
        let failed = self
            .analysis
            .trials()
            .iter()
            .filter(|t| t.status.failure().is_some())
            .count();
        let retries: u32 = self.analysis.trials().iter().map(|t| t.retries()).sum();
        out.push_str(&format!(
            "evaluations: {} ({} stopped early, {} failed, {} retries)\n",
            self.analysis.trials().len(),
            self.analysis.stopped_early_count(),
            failed,
            retries
        ));
        match (&self.best_point, self.best_value) {
            (Some(p), Some(v)) => {
                out.push_str("best configuration:\n");
                for (name, val) in self.conf.variables.iter().zip(p) {
                    out.push_str(&format!("  {} = {}\n", name.name, val));
                }
                out.push_str(&format!("best {} = {:.4}\n", self.conf.metric, v));
            }
            _ => out.push_str("no successful evaluation\n"),
        }
        out
    }

    /// Write the full reproducibility archive into `dir`.
    pub fn write_archive(&self, dir: &Path) -> std::io::Result<()> {
        archive::write_summary(self, dir)
    }
}

/// Drives the optimization cycle for a Phase I problem definition.
pub struct OptimizationManager {
    conf: OptimizationConf,
    seed: u64,
    archive_root: Option<PathBuf>,
    scheduler: Arc<dyn Scheduler>,
    faults: FaultPlan,
    tracer: Option<e2c_trace::Tracer>,
    journal: Option<JournalConfig>,
    farm: Option<e2c_tune::FarmSpec>,
    aux_hook: Option<AuxHook>,
}

/// Artifact hook for farmed runs: receives the auxiliary key/value pairs
/// a worker shipped with its result, in place of the side effects the
/// in-process objective would have performed itself.
pub type AuxHook = Arc<dyn Fn(&EvalContext, &[(String, String)]) + Send + Sync>;

impl OptimizationManager {
    /// Manager for a problem definition (seed 0, FIFO scheduling, no
    /// archive directory, no injected faults).
    pub fn new(conf: OptimizationConf) -> Self {
        OptimizationManager {
            conf,
            seed: 0,
            archive_root: None,
            scheduler: Arc::new(Fifo),
            faults: FaultPlan::new(),
            tracer: None,
            journal: None,
            farm: None,
            aux_hook: None,
        }
    }

    /// Set the experiment seed (reproducibility: same seed ⇒ same cycle).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable per-evaluation directories and the Phase III archive under
    /// `root`.
    pub fn with_archive(mut self, root: PathBuf) -> Self {
        self.archive_root = Some(root);
        self
    }

    /// Install a trial scheduler (e.g. AsyncHyperBand). Default: FIFO.
    pub fn with_scheduler(mut self, scheduler: Arc<dyn Scheduler>) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Inject deterministic trial faults (tests and the `--faults` CLI
    /// knob); the retry layer then exercises exactly the configured
    /// failure sequence.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Attach a tracer: the tuner records the worker lifecycle, every
    /// scheduler decision is logged through a
    /// [`e2c_tune::TracingScheduler`] wrapper, and the cycle emits an
    /// objective-value distribution event (raw values — non-finite
    /// observations from crashed evaluations are counted, not fatal).
    pub fn with_trace(mut self, tracer: e2c_trace::Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Enable the crash-safety journal: every searcher/scheduler decision
    /// and attempt outcome is write-ahead logged under
    /// [`JournalConfig::dir`] in canonical commit order (trials execute on
    /// up to `max_concurrent` workers, but their effects commit by
    /// ask-index), and `resume` continues an interrupted run to the
    /// byte-identical artifacts of an uninterrupted one at any
    /// concurrency.
    pub fn with_journal(mut self, journal: JournalConfig) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Execute evaluations in a farm of worker processes instead of in
    /// process: the manager spawns `spec.workers` copies of the worker
    /// command, streams asks to them, and supervises crashes, hangs and
    /// protocol garbage (respawn with seeded backoff; transparent ask
    /// re-dispatch; typed `WorkerLost` failures once the budget is
    /// spent). Every decision stays in this process, so artifacts are
    /// byte-identical to an in-process run at any worker count — which
    /// is also why the process count is *not* part of the journal
    /// fingerprint.
    pub fn with_farm(mut self, spec: e2c_tune::FarmSpec) -> Self {
        self.farm = Some(spec);
        self
    }

    /// Install the artifact hook farmed runs call with each successful
    /// evaluation's auxiliary pairs (see [`AuxHook`]). Ignored without
    /// [`OptimizationManager::with_farm`].
    pub fn with_aux_hook(mut self, hook: AuxHook) -> Self {
        self.aux_hook = Some(hook);
        self
    }

    /// Build the search space from the configured variables.
    pub fn space(&self) -> Space {
        let mut space = Space::new();
        for v in &self.conf.variables {
            space = match v.kind {
                VarKind::Int => space.int(&v.name, v.lo as i64, v.hi as i64),
                VarKind::Real => space.real(&v.name, v.lo, v.hi),
            };
        }
        space
    }

    fn build_searcher(&self, space: Space) -> Box<dyn Searcher> {
        let limited = self.conf.max_concurrent;
        match self.conf.algo {
            SearchAlgo::Random => Box::new(ConcurrencyLimiter::new(
                RandomSearch::new(space, self.seed),
                limited,
            )),
            SearchAlgo::Grid => Box::new(ConcurrencyLimiter::new(
                GridSearch::factorial(space, self.conf.num_samples, self.seed),
                limited,
            )),
            // §III-B2: evolutionary search for short-running applications.
            // The population is sized so the budget covers a few
            // generations.
            SearchAlgo::Evolution => {
                let pop = (self.conf.num_samples / 4).clamp(4, 40);
                Box::new(ConcurrencyLimiter::new(
                    e2c_tune::EvolutionSearch::new(space, pop, self.seed),
                    limited,
                ))
            }
            SearchAlgo::Surrogate(name) => {
                let opt = BayesOpt::new(space, self.seed)
                    .base_estimator(surrogate_kind(name))
                    .acq_func(acquisition(self.conf.acq_func))
                    .initial_point_generator(initial_design(self.conf.initial_point_generator))
                    .n_initial_points(self.conf.n_initial_points);
                Box::new(ConcurrencyLimiter::new(SkOptSearch::new(opt), limited))
            }
        }
    }

    /// Configuration fingerprint recorded in (and verified against) the
    /// journal's meta record. Everything that shapes the decision
    /// sequence is folded in; resuming under a different configuration is
    /// refused before any state is touched.
    fn fingerprint(&self, jc: &JournalConfig) -> String {
        format!(
            "{}seed={}\ntraced={}\narchived={}\nextra={}",
            archive::problem_to_value(&self.conf).to_yaml(),
            self.seed,
            self.tracer.is_some(),
            self.archive_root.is_some(),
            jc.extra_fingerprint
        )
    }

    /// Prepare the journal (fresh or resumed) and, when resuming, replay
    /// it: the searcher and scheduler are re-driven through every
    /// journaled decision, and the trace stream is truncated back to the
    /// last settled trial's mark.
    fn prepare_journal(
        &self,
        searcher: &mut dyn Searcher,
        mode: Mode,
    ) -> Result<(Option<RunJournal>, ResumeState), RunError> {
        let Some(jc) = &self.journal else {
            return Ok((None, ResumeState::empty()));
        };
        let fingerprint = self.fingerprint(jc);
        let wal_path = jc.dir.join("run.wal");
        let mut resume_state = ResumeState::empty();
        let journal = if jc.resume {
            let (wal, records) = e2c_journal::Wal::open(&wal_path).map_err(|e| {
                RunError::Resume(format!("--resume: open {}: {e}", wal_path.display()))
            })?;
            let events: Vec<RunEvent> = records
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let line = std::str::from_utf8(r)
                        .map_err(|e| format!("journal record {i}: not UTF-8: {e}"))?;
                    RunEvent::parse(line).map_err(|e| format!("journal record {i}: {e}"))
                })
                .collect::<Result<_, _>>()
                .map_err(RunError::Resume)?;
            let journal = RunJournal::new(wal, jc.crash_after);
            if events.is_empty() {
                // The crash hit before the meta record landed: nothing to
                // replay, start over on the same (now truncated) log.
                journal.append(&RunEvent::meta(fingerprint));
            } else {
                match &events[0] {
                    RunEvent::Meta { fingerprint: f, .. } if *f == fingerprint => {}
                    RunEvent::Meta { .. } => {
                        return Err(RunError::Resume(
                            "--resume: the journal was recorded with a different \
                             configuration or seed — refusing to continue it"
                                .to_string(),
                        ))
                    }
                    _ => {
                        return Err(RunError::Resume(
                            "--resume: journal does not start with a meta record".to_string(),
                        ))
                    }
                }
                resume_state = e2c_tune::replay(&events, searcher, &*self.scheduler, mode)
                    .map_err(RunError::Resume)?;
            }
            journal
        } else {
            if wal_path.exists() {
                return Err(RunError::Journal(format!(
                    "--journal: {} already holds a run journal — use --resume to continue it",
                    wal_path.display()
                )));
            }
            let wal = e2c_journal::Wal::create(&wal_path).map_err(|e| {
                RunError::Journal(format!("--journal: create {}: {e}", wal_path.display()))
            })?;
            let journal = RunJournal::new(wal, jc.crash_after);
            journal.append(&RunEvent::meta(fingerprint));
            journal
        };
        if let Some(tr) = &self.tracer {
            let stream_path = jc.dir.join("trace.stream.jsonl");
            if jc.resume {
                let (events, _torn) = if stream_path.is_file() {
                    e2c_trace::load_jsonl_tolerant(&stream_path).map_err(RunError::Resume)?
                } else {
                    (Vec::new(), false)
                };
                let (keep, vt) = match resume_state.trace_mark {
                    Some((n, vt)) => {
                        if (events.len() as u64) < n {
                            return Err(RunError::Resume(format!(
                                "--resume: trace stream {} holds {} events but the journal \
                                 marks {n} — the stream does not belong to this journal",
                                stream_path.display(),
                                events.len()
                            )));
                        }
                        (events[..n as usize].to_vec(), vt)
                    }
                    None => (Vec::new(), 0),
                };
                // Rewrite the stream to exactly the kept prefix: events
                // after the last settled trial are regenerated live.
                let mut text = String::with_capacity(keep.len() * 96);
                for e in &keep {
                    text.push_str(&e.to_json());
                    text.push('\n');
                }
                e2c_journal::write_atomic(&stream_path, text.as_bytes()).map_err(|e| {
                    RunError::Resume(format!("--resume: rewrite {}: {e}", stream_path.display()))
                })?;
                tr.restore(keep, vt);
            }
            tr.stream_to(&stream_path).map_err(|e| {
                RunError::Trace(format!("stream trace to {}: {e}", stream_path.display()))
            })?;
        }
        Ok((Some(journal), resume_state))
    }

    /// Run the optimization cycle: the objective is evaluated in parallel
    /// (up to `max_concurrent` at once); each completed evaluation
    /// retrains the model asynchronously and reconfigures the next
    /// deployment. Returns the Phase III summary (and writes the archive
    /// if a root was configured). Journal, resume, trace-stream and
    /// archive failures surface as a typed [`RunError`] instead of a
    /// panic.
    pub fn run<F>(&self, objective: F) -> Result<OptimizationSummary, RunError>
    where
        F: Fn(&EvalContext) -> f64 + Send + Sync,
    {
        let space = self.space();
        let mut searcher = self.build_searcher(space);
        let mode = if self.conf.minimize {
            Mode::Min
        } else {
            Mode::Max
        };
        let (run_journal, resume_state) = self.prepare_journal(searcher.as_mut(), mode)?;
        let already_complete = resume_state.complete;
        let mut tuner = Tuner::new(self.conf.num_samples, self.conf.max_concurrent, mode)
            .metric(&self.conf.metric)
            .name(&self.conf.name)
            .seed(self.seed)
            .faults(self.faults.clone());
        if let Some(ft) = &self.conf.fault_tolerance {
            tuner = tuner.retry_policy(
                RetryPolicy::retries(ft.max_retries)
                    .base_delay(Duration::from_millis(ft.backoff_ms))
                    .factor(ft.backoff_factor)
                    .max_delay(Duration::from_millis(ft.max_backoff_ms))
                    .jitter(ft.jitter),
            );
            if let Some(ms) = ft.time_budget_ms {
                tuner = tuner.time_budget(Duration::from_millis(ms));
            }
        }
        let scheduler: Arc<dyn Scheduler> = match &self.tracer {
            Some(tr) => {
                tuner = tuner.trace(tr.clone());
                Arc::new(e2c_tune::TracingScheduler::new(
                    self.scheduler.clone(),
                    tr.clone(),
                ))
            }
            None => self.scheduler.clone(),
        };
        if let Some(tr) = &self.tracer {
            // On resume the restored trace already opens with this event;
            // re-emitting it would shift every sequence number.
            if tr.is_empty() {
                tr.point(
                    "cycle",
                    "start",
                    None,
                    e2c_trace::fields([
                        ("name", self.conf.name.as_str().into()),
                        ("num_samples", self.conf.num_samples.into()),
                        ("max_concurrent", self.conf.max_concurrent.into()),
                        ("seed", self.seed.into()),
                    ]),
                );
            }
        }
        if let Some(j) = &run_journal {
            tuner = tuner.journal(j.clone());
        }
        tuner = tuner.resume(resume_state);
        let archive_root = self.archive_root.clone();
        // Farmed execution: spawn the worker processes up front; a farm
        // that cannot start at all is a run error, not a trial failure.
        let farm = match &self.farm {
            Some(spec) => Some(Arc::new(
                e2c_tune::WorkerFarm::launch(spec.clone())
                    .map_err(|e| RunError::Farm(format!("--workers: {e}")))?,
            )),
            None => None,
        };
        let aux_hook = self.aux_hook.clone();
        let analysis = tuner.run(searcher, scheduler, move |point, tctx| {
            // prepare(): a dedicated directory per model evaluation.
            let eval_dir = archive_root.as_ref().map(|root| {
                let dir = root.join("evals").join(format!("trial_{}", tctx.trial_id));
                std::fs::create_dir_all(&dir).expect("create evaluation directory");
                dir
            });
            let ctx = EvalContext {
                trial_id: tctx.trial_id,
                attempt: tctx.attempt,
                point: point.clone(),
                eval_dir: eval_dir.clone(),
                tracer: tctx.tracer().cloned(),
            };
            // launch(): deploy + execute the user workload — in process,
            // or shipped to a farm worker. Either way the tuner sees
            // exactly what an in-process run would: returns classify
            // identically, worker panics re-raise with their original
            // payload, and only infrastructure failures (a lost worker
            // past the re-dispatch budget) take the typed abort path.
            let value = match &farm {
                Some(farm) => {
                    match farm.execute(tctx.trial_id, tctx.attempt, point, tctx.tracer()) {
                        Ok(e2c_tune::FarmOutcome::Value { value, aux }) => {
                            if let Some(hook) = &aux_hook {
                                hook(&ctx, &aux);
                            }
                            value
                        }
                        Ok(e2c_tune::FarmOutcome::Panicked { payload }) => {
                            std::panic::panic_any(payload)
                        }
                        Err(error) => {
                            // No evaluation record: the objective never
                            // produced a value to archive.
                            return tctx.fail_attempt(error);
                        }
                    }
                }
                None => objective(&ctx),
            };
            // finalize(): record this evaluation's computations.
            if let Some(dir) = eval_dir {
                let _ = archive::write_evaluation(&dir, tctx.trial_id, point, value);
            }
            value
        });
        if let Some(j) = &run_journal {
            if !already_complete {
                j.append(&RunEvent::Complete);
            }
        }
        if let Some(tr) = &self.tracer {
            // Distribution of raw objective values over the cycle, fed
            // from the attempt records in canonical order (trial id, then
            // attempt index) so the event is identical under any worker
            // interleaving — and across crash-resume, because the journal
            // carries every raw value.  Crashed evaluations report NaN;
            // the histogram counts them in its `nonfinite` bucket instead
            // of aborting (the bug this layer exists to observe).
            let mut h = e2c_metrics::Histogram::new(0.0, 1e4, 1000);
            for t in analysis.trials() {
                for a in &t.attempts {
                    if let Some(raw) = a.raw {
                        h.record(raw);
                    }
                }
            }
            let pct = |q| h.quantile(q).unwrap_or(f64::NAN);
            tr.point(
                "cycle",
                "objective_distribution",
                None,
                e2c_trace::fields([
                    ("count", h.count().into()),
                    ("nonfinite", h.nonfinite().into()),
                    ("mean", h.mean().into()),
                    ("p50", pct(0.50).into()),
                    ("p95", pct(0.95).into()),
                    ("p99", pct(0.99).into()),
                ]),
            );
        }
        let best = analysis.best_trial().map(|t| (t.config.clone(), t.value()));
        let summary = OptimizationSummary {
            conf: self.conf.clone(),
            seed: self.seed,
            best_point: best.as_ref().map(|(p, _)| p.clone()),
            best_value: best.and_then(|(_, v)| v),
            analysis,
        };
        if let Some(root) = &self.archive_root {
            summary
                .write_archive(root)
                .map_err(|e| RunError::Archive(format!("write optimization archive: {e}")))?;
            // Trial log (JSONL + per-trial progress): the "checkpoints and
            // logging" half of the Phase III story.  Rewritten whole (and
            // atomically) so a resumed run converges on the same bytes as
            // an uninterrupted one.
            let logger = e2c_tune::TrialLogger::new(&root.join("trials"))
                .map_err(|e| RunError::Archive(format!("create trial log directory: {e}")))?;
            logger
                .write_all(summary.analysis.trials())
                .map_err(|e| RunError::Archive(format!("write trial log: {e}")))?;
        }
        Ok(summary)
    }

    /// Former fallible variant of `run`, kept as a thin compatibility
    /// wrapper now that `run` itself returns `Result`.
    #[deprecated(note = "use `run`, which now returns `Result<OptimizationSummary, RunError>`")]
    pub fn run_checked<F>(&self, objective: F) -> Result<OptimizationSummary, String>
    where
        F: Fn(&EvalContext) -> f64 + Send + Sync,
    {
        self.run(objective).map_err(|e| e.to_string())
    }
}

/// Map the schema's surrogate name onto the optimizer's model kind. The
/// match is exhaustive on both sides: adding a surrogate to either crate
/// without teaching the other is a compile error, not a silent fallback.
fn surrogate_kind(name: SurrogateName) -> SurrogateKind {
    match name {
        SurrogateName::ExtraTrees => SurrogateKind::ExtraTrees,
        SurrogateName::RandomForest => SurrogateKind::RandomForest,
        SurrogateName::Cart => SurrogateKind::Cart,
        SurrogateName::Gbrt => SurrogateKind::Gbrt,
        SurrogateName::Gp => SurrogateKind::GpRbf,
        SurrogateName::GpMatern => SurrogateKind::GpMatern,
        SurrogateName::KernelRidge => SurrogateKind::KernelRidge,
        SurrogateName::Poly => SurrogateKind::Polynomial,
    }
}

/// Map the schema's acquisition function onto the optimizer's (skopt's
/// default LCB exploration weight).
fn acquisition(acq: AcqFunc) -> Acquisition {
    match acq {
        AcqFunc::Ei => Acquisition::Ei,
        AcqFunc::Pi => Acquisition::Pi,
        AcqFunc::Lcb => Acquisition::Lcb { kappa: 1.96 },
        AcqFunc::GpHedge => Acquisition::GpHedge,
    }
}

/// Map the schema's initial point generator onto the optimizer's design.
fn initial_design(ipg: InitialPointGenerator) -> InitialDesign {
    match ipg {
        InitialPointGenerator::Random => InitialDesign::Random,
        InitialPointGenerator::Lhs => InitialDesign::Lhs,
        InitialPointGenerator::Halton => InitialDesign::Halton,
        InitialPointGenerator::Sobol => InitialDesign::Sobol,
        InitialPointGenerator::Grid => InitialDesign::Grid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2c_conf::parse;
    use e2c_conf::schema::{ExperimentConf, FaultToleranceConf};

    fn opt_conf(algo: &str, samples: usize) -> OptimizationConf {
        let src = format!(
            r#"
name: test-opt
optimization:
  metric: loss
  mode: min
  name: test-opt
  num_samples: {samples}
  max_concurrent: 2
  search:
    algo: {algo}
    n_initial_points: 6
    initial_point_generator: lhs
    acq_func: ei
  config:
    - name: x
      type: randint
      bounds: [0, 30]
    - name: y
      type: uniform
      bounds: [0.0, 1.0]
"#
        );
        ExperimentConf::from_value(&parse(&src).unwrap())
            .unwrap()
            .optimization
            .unwrap()
    }

    fn objective(ctx: &EvalContext) -> f64 {
        (ctx.point[0] - 12.0).powi(2) + (ctx.point[1] - 0.5).powi(2) * 100.0
    }

    #[test]
    fn space_built_from_variables() {
        let mgr = OptimizationManager::new(opt_conf("extra_trees", 5));
        let space = mgr.space();
        assert_eq!(space.len(), 2);
        assert_eq!(space.names(), &["x".to_string(), "y".to_string()]);
        assert!(space.contains(&[30.0, 1.0]));
        assert!(!space.contains(&[31.0, 1.0]));
    }

    #[test]
    fn bayesian_cycle_finds_good_configuration() {
        // Sequential cycle for the quality threshold: with concurrent
        // evaluation each suggestion trains on a lagged model (asks run
        // ahead of tells by the worker window) — deterministic now, but
        // measurably weaker on this budget. Concurrent determinism is
        // covered by `same_seed_reproduces_the_cycle`.
        let mut conf = opt_conf("extra_trees", 30);
        conf.max_concurrent = 1;
        let mgr = OptimizationManager::new(conf).with_seed(3);
        let summary = mgr.run(objective).unwrap();
        assert_eq!(summary.analysis.trials().len(), 30);
        let best = summary.best_value.unwrap();
        assert!(best < 8.0, "best {best}");
        let report = summary.render();
        assert!(report.contains("minimize loss"));
        assert!(report.contains("algo=extra_trees"));
        assert!(report.contains("best loss"));
    }

    #[test]
    fn random_algo_also_works() {
        let mgr = OptimizationManager::new(opt_conf("random", 20)).with_seed(1);
        let summary = mgr.run(objective).unwrap();
        assert_eq!(summary.analysis.trials().len(), 20);
        assert!(summary.best_value.is_some());
    }

    #[test]
    fn genetic_algorithm_route_works() {
        let mgr = OptimizationManager::new(opt_conf("genetic_algorithm", 40)).with_seed(8);
        let summary = mgr.run(objective).unwrap();
        assert_eq!(summary.analysis.trials().len(), 40);
        assert!(
            summary.best_value.expect("successful trials") < 30.0,
            "GA found {:?}",
            summary.best_value
        );
    }

    #[test]
    fn same_seed_reproduces_the_cycle() {
        // Bit-exact replay holds under concurrent evaluation too: the
        // commit sequencer drives suggest/observe in canonical ask order,
        // so thread interleaving cannot leak into the suggestion sequence.
        let run = |seed| {
            OptimizationManager::new(opt_conf("extra_trees", 12))
                .with_seed(seed)
                .run(objective)
                .unwrap()
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a.best_point, b.best_point);
        assert_eq!(a.best_value, b.best_value);
        let configs_a: Vec<_> = a
            .analysis
            .trials()
            .iter()
            .map(|t| t.config.clone())
            .collect();
        let configs_b: Vec<_> = b
            .analysis
            .trials()
            .iter()
            .map(|t| t.config.clone())
            .collect();
        assert_eq!(configs_a, configs_b);
    }

    /// opt_conf + a fast fault-tolerance block (1 ms backoff).
    fn ft_conf(algo: &str, samples: usize, retries: u32) -> OptimizationConf {
        let mut conf = opt_conf(algo, samples);
        conf.fault_tolerance = Some(FaultToleranceConf {
            max_retries: retries,
            backoff_ms: 1,
            max_backoff_ms: 2,
            ..Default::default()
        });
        conf
    }

    #[test]
    fn flaky_trial_recovers_and_archive_records_both_attempts() {
        let dir = std::env::temp_dir().join(format!(
            "e2clab-test-faults-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mgr = OptimizationManager::new(ft_conf("random", 6, 1))
            .with_seed(4)
            .with_archive(dir.clone())
            .with_faults(e2c_tune::FaultPlan::new().fail(2, 0));
        let summary = mgr.run(objective).unwrap();

        // The injected failure was retried: trial 2 ends terminated with
        // its true metric, not a penalty.
        let flaky = &summary.analysis.trials()[2];
        assert!(
            matches!(flaky.status, e2c_tune::TrialStatus::Terminated(_)),
            "{:?}",
            flaky.status
        );
        assert_eq!(flaky.attempt_count(), 2);
        assert_eq!(flaky.value(), Some(objective_value(&flaky.config)));

        // Both attempts land in evaluations.csv ...
        let recs = crate::archive::load_evaluation_records(&dir).unwrap();
        assert_eq!(recs[2].attempts, 2);
        assert_eq!(recs[2].status, "terminated");
        assert_eq!(recs[2].failure, "");
        assert!(recs
            .iter()
            .filter(|r| r.trial != 2)
            .all(|r| r.attempts == 1));

        // ... and in the JSONL trial log.
        let jsonl = std::fs::read_to_string(dir.join("trials").join("trials.jsonl")).unwrap();
        let line = jsonl.lines().find(|l| l.contains("\"id\":2")).unwrap();
        assert!(line.contains("\"attempts\":2"), "{line}");
        assert!(line.contains("injected fault"), "{line}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn objective_value(point: &Point) -> f64 {
        (point[0] - 12.0).powi(2) + (point[1] - 0.5).powi(2) * 100.0
    }

    #[test]
    fn exhausted_retries_surface_as_failed_with_reason() {
        let dir = std::env::temp_dir().join(format!(
            "e2clab-test-faults-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mgr = OptimizationManager::new(ft_conf("random", 4, 1))
            .with_seed(5)
            .with_archive(dir.clone())
            .with_faults(e2c_tune::FaultPlan::new().fail_always(0));
        let summary = mgr.run(objective).unwrap();
        let doomed = &summary.analysis.trials()[0];
        assert!(doomed.status.failure().unwrap().contains("injected fault"));
        assert_eq!(doomed.attempt_count(), 2, "1 attempt + 1 retry");
        let recs = crate::archive::load_evaluation_records(&dir).unwrap();
        assert_eq!(recs[0].status, "failed");
        assert_eq!(recs[0].attempts, 2);
        assert!(recs[0].failure.contains("injected fault"));
        assert!(recs[0].value.is_none());
        // The report counts the failure and the retry.
        let report = summary.render();
        assert!(report.contains("1 failed, 1 retries"), "{report}");
        assert!(
            report.contains("fault_tolerance: max_retries=1"),
            "{report}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn time_budget_fails_overrunning_evaluations() {
        let mut conf = ft_conf("random", 3, 0);
        conf.fault_tolerance.as_mut().unwrap().time_budget_ms = Some(20);
        conf.max_concurrent = 1;
        let mgr = OptimizationManager::new(conf).with_seed(6);
        let summary = mgr
            .run(|ctx: &EvalContext| {
                if ctx.trial_id == 1 {
                    std::thread::sleep(std::time::Duration::from_millis(60));
                }
                objective_value(&ctx.point)
            })
            .unwrap();
        assert_eq!(
            summary.analysis.trials()[1].status.failure(),
            Some("deadline exceeded")
        );
        // The other trials were unaffected.
        assert!(summary.analysis.trials()[0].value().is_some());
        assert!(summary.analysis.trials()[2].value().is_some());
    }

    #[test]
    fn attempt_number_is_visible_to_the_objective() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let seen_retry = AtomicU32::new(0);
        let mut conf = ft_conf("random", 3, 2);
        conf.max_concurrent = 1;
        let mgr = OptimizationManager::new(conf)
            .with_seed(7)
            .with_faults(e2c_tune::FaultPlan::new().fail(1, 0));
        let summary = mgr
            .run(|ctx: &EvalContext| {
                if ctx.trial_id == 1 && ctx.attempt > 0 {
                    seen_retry.fetch_add(1, Ordering::SeqCst);
                }
                objective_value(&ctx.point)
            })
            .unwrap();
        assert_eq!(seen_retry.load(Ordering::SeqCst), 1);
        assert!(summary.analysis.trials()[1].value().is_some());
    }

    #[test]
    fn traced_cycle_survives_nan_observations() {
        // Regression: a Crash-style evaluation returns NaN; the traced
        // cycle's observed-value histogram must bucket it (pre-fix,
        // `Histogram::record` asserted `is_finite` and aborted the run).
        let tracer = e2c_trace::Tracer::new();
        let mgr = OptimizationManager::new(ft_conf("random", 5, 0))
            .with_seed(11)
            .with_trace(tracer.clone());
        let summary = mgr
            .run(|ctx: &EvalContext| {
                if ctx.trial_id == 2 {
                    f64::NAN // a crashed engine's poisoned response mean
                } else {
                    objective_value(&ctx.point)
                }
            })
            .unwrap();
        assert_eq!(summary.analysis.trials().len(), 5);
        assert!(summary.best_value.is_some());
        let dist = tracer
            .snapshot()
            .into_iter()
            .find(|e| e.phase == "cycle" && e.name == "objective_distribution")
            .expect("cycle distribution event");
        assert_eq!(dist.fields["nonfinite"].as_u64(), Some(1));
        assert_eq!(dist.fields["count"].as_u64(), Some(4));
        assert!(dist.fields["mean"].as_f64().unwrap().is_finite());
    }

    #[test]
    fn traced_cycle_replays_byte_identically() {
        let run = || {
            let tracer = e2c_trace::Tracer::new();
            OptimizationManager::new(opt_conf("extra_trees", 8))
                .with_seed(9)
                .with_trace(tracer.clone())
                .run(objective)
                .unwrap();
            tracer.to_jsonl()
        };
        let a = run();
        let b = run();
        assert!(!a.is_empty());
        assert_eq!(
            a, b,
            "concurrent traced cycles must replay byte-identically"
        );
    }

    #[test]
    fn archive_written_when_enabled() {
        let dir = std::env::temp_dir().join(format!(
            "e2clab-test-archive-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mgr = OptimizationManager::new(opt_conf("extra_trees", 8))
            .with_seed(2)
            .with_archive(dir.clone());
        let summary = mgr.run(objective).unwrap();
        assert!(dir.join("problem.yaml").is_file());
        assert!(dir.join("evaluations.csv").is_file());
        assert!(dir.join("summary.txt").is_file());
        assert!(dir.join("best.yaml").is_file());
        // One directory per evaluation (prepare()).
        for t in summary.analysis.trials() {
            assert!(dir.join("evals").join(format!("trial_{}", t.id)).is_dir());
        }
        let evals = crate::archive::load_evaluations(&dir).unwrap();
        assert_eq!(evals.len(), 8);
        // The trial log mirrors the analysis.
        let log = e2c_tune::TrialLogger::new(&dir.join("trials")).unwrap();
        let index = log.load_index().unwrap();
        assert_eq!(index.len(), 8);
        assert!(index.iter().all(|(_, status, _)| status == "terminated"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn tmp(label: &str, line: u32) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("e2clab-test-{label}-{}-{line}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn journaled_conf() -> OptimizationConf {
        // max_concurrent stays at the conf's 2: byte-identity now holds at
        // any concurrency, so the prefix-resume sweep exercises the
        // deferred commit path too.
        ft_conf("random", 6, 1)
    }

    fn read(path: &std::path::Path) -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
    }

    /// Baseline artifacts from an unjournaled run with the same conf/seed.
    fn baseline_artifacts(root: &std::path::Path) -> (String, String, String) {
        let tracer = e2c_trace::Tracer::new();
        OptimizationManager::new(journaled_conf())
            .with_seed(13)
            .with_archive(root.to_path_buf())
            .with_trace(tracer.clone())
            .with_faults(e2c_tune::FaultPlan::new().fail(2, 0))
            .run(objective)
            .unwrap();
        (
            read(&root.join("evaluations.csv")),
            read(&root.join("trials").join("trials.jsonl")),
            tracer.to_jsonl(),
        )
    }

    #[test]
    fn journaled_run_matches_baseline_and_resume_after_complete_is_a_noop() {
        let base = tmp("journal-base", line!());
        let dir = tmp("journal-run", line!());
        let (want_evals, want_trials, want_trace) = baseline_artifacts(&base);

        // Journaled run: artifacts must match the unjournaled baseline.
        let tracer = e2c_trace::Tracer::new();
        OptimizationManager::new(journaled_conf())
            .with_seed(13)
            .with_archive(dir.clone())
            .with_trace(tracer.clone())
            .with_faults(e2c_tune::FaultPlan::new().fail(2, 0))
            .with_journal(JournalConfig::fresh(dir.join("journal")))
            .run(objective)
            .unwrap();
        assert_eq!(read(&dir.join("evaluations.csv")), want_evals);
        assert_eq!(read(&dir.join("trials").join("trials.jsonl")), want_trials);
        assert_eq!(tracer.to_jsonl(), want_trace);

        // A fresh journal refuses to overwrite an existing one.
        let err = OptimizationManager::new(journaled_conf())
            .with_seed(13)
            .with_journal(JournalConfig::fresh(dir.join("journal")))
            .run(objective)
            .unwrap_err();
        assert!(matches!(err, RunError::Journal(_)), "{err:?}");
        assert!(err.to_string().contains("--resume"), "{err}");

        // Resuming a completed run re-executes nothing and converges on
        // the same bytes.
        let tracer = e2c_trace::Tracer::new();
        OptimizationManager::new(journaled_conf())
            .with_seed(13)
            .with_archive(dir.clone())
            .with_trace(tracer.clone())
            .with_faults(e2c_tune::FaultPlan::new().fail(2, 0))
            .with_journal(JournalConfig::resume(dir.join("journal")))
            .run(objective)
            .unwrap();
        assert_eq!(read(&dir.join("evaluations.csv")), want_evals);
        assert_eq!(read(&dir.join("trials").join("trials.jsonl")), want_trials);
        assert_eq!(tracer.to_jsonl(), want_trace);
        assert_eq!(
            read(&dir.join("journal").join("trace.stream.jsonl")),
            want_trace
        );

        std::fs::remove_dir_all(&base).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_from_every_journal_prefix_reproduces_the_baseline() {
        let base = tmp("prefix-base", line!());
        let dir = tmp("prefix-run", line!());
        let (want_evals, want_trials, want_trace) = baseline_artifacts(&base);

        // Record a complete journaled run, then replay resume from every
        // truncation point — as if the process had died mid-append.
        let tracer = e2c_trace::Tracer::new();
        OptimizationManager::new(journaled_conf())
            .with_seed(13)
            .with_archive(dir.clone())
            .with_trace(tracer.clone())
            .with_faults(e2c_tune::FaultPlan::new().fail(2, 0))
            .with_journal(JournalConfig::fresh(dir.join("journal")))
            .run(objective)
            .unwrap();
        let full_wal = e2c_journal::read_records(&dir.join("journal").join("run.wal")).unwrap();
        let full_stream = read(&dir.join("journal").join("trace.stream.jsonl"));
        assert!(full_wal.len() > 10, "{} records", full_wal.len());

        for cut in 0..full_wal.len() {
            let rdir = tmp("prefix-resume", line!()).join(format!("cut{cut}"));
            let jdir = rdir.join("journal");
            let mut wal = e2c_journal::Wal::create(&jdir.join("run.wal")).unwrap();
            for rec in &full_wal[..cut] {
                wal.append(rec).unwrap();
            }
            drop(wal);
            // The trace stream at crash time held at least the journaled
            // mark; handing resume the full stream exercises truncation.
            std::fs::write(jdir.join("trace.stream.jsonl"), &full_stream).unwrap();
            let tracer = e2c_trace::Tracer::new();
            OptimizationManager::new(journaled_conf())
                .with_seed(13)
                .with_archive(rdir.clone())
                .with_trace(tracer.clone())
                .with_faults(e2c_tune::FaultPlan::new().fail(2, 0))
                .with_journal(JournalConfig::resume(jdir))
                .run(objective)
                .unwrap_or_else(|e| panic!("resume at cut {cut}: {e}"));
            assert_eq!(read(&rdir.join("evaluations.csv")), want_evals, "cut {cut}");
            assert_eq!(
                read(&rdir.join("trials").join("trials.jsonl")),
                want_trials,
                "cut {cut}"
            );
            assert_eq!(tracer.to_jsonl(), want_trace, "cut {cut}");
            std::fs::remove_dir_all(rdir.parent().unwrap()).unwrap();
        }

        std::fs::remove_dir_all(&base).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_under_a_different_seed_or_conf_is_refused() {
        let dir = tmp("journal-mismatch", line!());
        OptimizationManager::new(journaled_conf())
            .with_seed(13)
            .with_journal(JournalConfig::fresh(dir.join("journal")))
            .run(objective)
            .unwrap();

        let err = OptimizationManager::new(journaled_conf())
            .with_seed(14)
            .with_journal(JournalConfig::resume(dir.join("journal")))
            .run(objective)
            .unwrap_err();
        assert!(matches!(err, RunError::Resume(_)), "{err:?}");
        assert!(err.to_string().contains("different configuration"), "{err}");

        let mut conf = journaled_conf();
        conf.num_samples = 9;
        let err = OptimizationManager::new(conf)
            .with_seed(13)
            .with_journal(JournalConfig::resume(dir.join("journal")))
            .run(objective)
            .unwrap_err();
        assert!(matches!(err, RunError::Resume(_)), "{err:?}");
        assert!(err.to_string().contains("different configuration"), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_run_checked_wrapper_still_delegates() {
        let summary = OptimizationManager::new(opt_conf("random", 4))
            .with_seed(21)
            .run_checked(objective)
            .unwrap();
        assert_eq!(summary.analysis.trials().len(), 4);

        // Errors arrive pre-rendered, exactly as `run(...).to_string()`.
        let dir = tmp("wrapper-mismatch", line!());
        OptimizationManager::new(journaled_conf())
            .with_seed(13)
            .with_journal(JournalConfig::fresh(dir.join("journal")))
            .run(objective)
            .unwrap();
        let err: String = OptimizationManager::new(journaled_conf())
            .with_seed(14)
            .with_journal(JournalConfig::resume(dir.join("journal")))
            .run_checked(objective)
            .unwrap_err();
        assert!(err.contains("different configuration"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
