//! The experiment lifecycle (Fig. 6): define → deploy → emulate → run →
//! backup, with the `--repeat` protocol used throughout §IV.

use crate::managers::{InfrastructureManager, MonitoringManager, NetworkManager};
use e2c_conf::schema::ExperimentConf;
use e2c_metrics::Registry;
use e2c_net::Topology;
use e2c_testbed::{Deployment, Reservation, Testbed};
use std::fmt;

/// Errors across the experiment lifecycle.
#[derive(Debug)]
pub enum ExperimentError {
    /// Node reservation failed.
    Reserve(e2c_testbed::ReserveError),
    /// Lifecycle misuse (e.g. running before deploying).
    State(String),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Reserve(e) => write!(f, "reservation: {e}"),
            ExperimentError::State(s) => write!(f, "lifecycle: {s}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<e2c_testbed::ReserveError> for ExperimentError {
    fn from(e: e2c_testbed::ReserveError) -> Self {
        ExperimentError::Reserve(e)
    }
}

/// One experiment on the testbed, from configuration to backup.
pub struct Experiment {
    conf: ExperimentConf,
    testbed: Testbed,
    deployment: Option<Deployment>,
    reservations: Vec<Reservation>,
    topology: Option<Topology>,
    monitoring: MonitoringManager,
    run_duration_secs: f64,
}

impl Experiment {
    /// Define an experiment against a testbed.
    pub fn new(conf: ExperimentConf, testbed: Testbed) -> Self {
        Experiment {
            conf,
            testbed,
            deployment: None,
            reservations: Vec::new(),
            topology: None,
            monitoring: MonitoringManager::new(),
            run_duration_secs: 1380.0,
        }
    }

    /// Set the per-run duration (the paper's 1380 s default).
    pub fn with_duration_secs(mut self, secs: f64) -> Self {
        self.run_duration_secs = secs;
        self
    }

    /// The experiment configuration.
    pub fn conf(&self) -> &ExperimentConf {
        &self.conf
    }

    /// Phase: provision infrastructure and apply network emulation.
    pub fn deploy(&mut self) -> Result<(), ExperimentError> {
        if self.deployment.is_some() {
            return Err(ExperimentError::State("already deployed".into()));
        }
        let (deployment, reservations) =
            InfrastructureManager::provision(&self.conf, &mut self.testbed)?;
        self.deployment = Some(deployment);
        self.reservations = reservations;
        self.topology = Some(NetworkManager::emulate(&self.conf.network));
        Ok(())
    }

    /// The resolved deployment (after [`Experiment::deploy`]).
    pub fn deployment(&self) -> Option<&Deployment> {
        self.deployment.as_ref()
    }

    /// The emulated topology (after [`Experiment::deploy`]).
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// The testbed view (for services that need node capacities).
    pub fn testbed(&self) -> &Testbed {
        &self.testbed
    }

    /// Phase: run the workload `repeats` times. The application callback
    /// receives `(repetition, deployment, topology)` and returns the run's
    /// metric registry, which the monitoring manager absorbs into the
    /// backup. This is `e2clab optimize --repeat N --duration D`.
    pub fn run_repeated<F>(
        &mut self,
        repeats: usize,
        mut application: F,
    ) -> Result<(), ExperimentError>
    where
        F: FnMut(usize, &Deployment, &Topology) -> Registry,
    {
        let deployment = self
            .deployment
            .as_ref()
            .ok_or_else(|| ExperimentError::State("run before deploy".into()))?;
        let topology = self
            .topology
            .as_ref()
            .expect("set together with deployment");
        for rep in 0..repeats {
            let registry = application(rep, deployment, topology);
            self.monitoring.absorb(&registry, self.run_duration_secs);
        }
        Ok(())
    }

    /// The merged metric backup across repetitions.
    pub fn backup(&self) -> &Registry {
        self.monitoring.backup()
    }

    /// Number of repetitions recorded.
    pub fn repetitions(&self) -> usize {
        self.monitoring.runs()
    }

    /// Phase: release all reservations.
    pub fn teardown(&mut self) {
        InfrastructureManager::teardown(&mut self.testbed, &self.reservations);
        self.reservations.clear();
        self.deployment = None;
        self.topology = None;
    }

    /// Human-readable description of the deployed scenario — part of the
    /// reproducibility archive.
    pub fn describe(&self) -> String {
        let mut out = format!("experiment: {}\n", self.conf.name);
        if let Some(dep) = &self.deployment {
            out.push_str(&dep.describe(&self.testbed));
        } else {
            out.push_str("(not deployed)\n");
        }
        if let Some(topo) = &self.topology {
            for pair in self.conf.network.iter() {
                let link = topo.link(&pair.src, &pair.dst);
                out.push_str(&format!(
                    "net {} <-> {}: {} ms, {} Mbps, loss {}\n",
                    pair.src, pair.dst, link.latency_ms, link.bandwidth_mbps, link.loss
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2c_conf::parse;
    use e2c_testbed::grid5000;

    fn conf() -> ExperimentConf {
        let src = r#"
name: lifecycle-test
layers:
  - name: cloud
    services:
      - name: engine
        cluster: chifflot
        quantity: 1
  - name: edge
    services:
      - name: clients
        cluster: chiclet
        quantity: 2
network:
  - src: edge
    dst: cloud
    delay_ms: 2.0
    rate_mbps: 10000
"#;
        ExperimentConf::from_value(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn full_lifecycle() {
        let mut exp = Experiment::new(conf(), grid5000::paper_testbed());
        exp.deploy().unwrap();
        assert_eq!(exp.deployment().unwrap().nodes_of("cloud.engine").len(), 1);
        exp.run_repeated(3, |rep, dep, topo| {
            assert_eq!(dep.nodes_of("edge.clients").len(), 2);
            assert_eq!(topo.link("edge", "cloud").latency_ms, 2.0);
            let mut r = Registry::new();
            r.record("user_resp_time", 10.0, 2.0 + rep as f64 * 0.1);
            r
        })
        .unwrap();
        assert_eq!(exp.repetitions(), 3);
        let series = exp.backup().get("user_resp_time").unwrap();
        assert_eq!(series.len(), 3);
        // Times concatenated across repetitions.
        assert_eq!(series.times(), &[10.0, 1390.0, 2770.0]);
        exp.teardown();
        assert!(exp.deployment().is_none());
        assert_eq!(exp.testbed().free_in("chifflot"), 2);
    }

    #[test]
    fn run_before_deploy_errors() {
        let mut exp = Experiment::new(conf(), grid5000::paper_testbed());
        let err = exp.run_repeated(1, |_, _, _| Registry::new()).unwrap_err();
        assert!(err.to_string().contains("run before deploy"));
    }

    #[test]
    fn double_deploy_errors() {
        let mut exp = Experiment::new(conf(), grid5000::paper_testbed());
        exp.deploy().unwrap();
        assert!(exp.deploy().is_err());
    }

    #[test]
    fn describe_mentions_nodes_and_links() {
        let mut exp = Experiment::new(conf(), grid5000::paper_testbed());
        exp.deploy().unwrap();
        let d = exp.describe();
        assert!(d.contains("lifecycle-test"));
        assert!(d.contains("chifflot-1.lille"));
        assert!(d.contains("net edge <-> cloud"));
    }
}
