//! The Phase III reproducibility archive.
//!
//! "Providing all this information at the end of computations allows other
//! researchers to reproduce the research results" (§III-C). The archive is
//! a plain directory:
//!
//! ```text
//! <root>/
//!   problem.yaml       # Phase I: variables, objective, constraints
//!   summary.txt        # Phase III report (sampler, algo, best config)
//!   evaluations.csv    # every evaluated point with its metric value
//!   best.yaml          # the best configuration found
//!   evals/trial_<id>/  # per-evaluation directories (prepare())
//!     result.csv       # finalize(): the point and value of this trial
//! ```

use crate::optimization::OptimizationSummary;
use e2c_conf::schema::{OptimizationConf, VarKind};
use e2c_conf::Value;
use e2c_optim::space::Point;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Serialize a problem definition to a configuration document.
pub fn problem_to_value(conf: &OptimizationConf) -> Value {
    let variables: Vec<Value> = conf
        .variables
        .iter()
        .map(|v| {
            Value::Map(vec![
                ("name".into(), Value::Str(v.name.clone())),
                (
                    "type".into(),
                    Value::Str(
                        match v.kind {
                            VarKind::Int => "randint",
                            VarKind::Real => "uniform",
                        }
                        .into(),
                    ),
                ),
                (
                    "bounds".into(),
                    Value::Seq(vec![Value::Float(v.lo), Value::Float(v.hi)]),
                ),
            ])
        })
        .collect();
    Value::Map(vec![
        ("name".into(), Value::Str(conf.name.clone())),
        ("metric".into(), Value::Str(conf.metric.clone())),
        (
            "mode".into(),
            Value::Str(if conf.minimize { "min" } else { "max" }.into()),
        ),
        ("num_samples".into(), Value::Int(conf.num_samples as i64)),
        (
            "max_concurrent".into(),
            Value::Int(conf.max_concurrent as i64),
        ),
        (
            "search".into(),
            Value::Map(vec![
                ("algo".into(), Value::Str(conf.algo.clone())),
                (
                    "n_initial_points".into(),
                    Value::Int(conf.n_initial_points as i64),
                ),
                (
                    "initial_point_generator".into(),
                    Value::Str(conf.initial_point_generator.clone()),
                ),
                ("acq_func".into(), Value::Str(conf.acq_func.clone())),
            ]),
        ),
        ("config".into(), Value::Seq(variables)),
    ])
}

/// Write the full Phase III archive.
pub fn write_summary(summary: &OptimizationSummary, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(
        dir.join("problem.yaml"),
        problem_to_value(&summary.conf).to_yaml(),
    )?;
    fs::write(dir.join("summary.txt"), summary.render())?;

    // evaluations.csv — trial id, status, variables..., value.
    let mut csv = fs::File::create(dir.join("evaluations.csv"))?;
    write!(csv, "trial,status")?;
    for v in &summary.conf.variables {
        write!(csv, ",{}", v.name)?;
    }
    writeln!(csv, ",{}", summary.conf.metric)?;
    for t in summary.analysis.trials() {
        let status = match &t.status {
            e2c_tune::TrialStatus::Terminated(_) => "terminated",
            e2c_tune::TrialStatus::StoppedEarly(_) => "stopped_early",
            e2c_tune::TrialStatus::Failed(_) => "failed",
            _ => "incomplete",
        };
        write!(csv, "{},{}", t.id, status)?;
        for x in &t.config {
            write!(csv, ",{x}")?;
        }
        match t.value() {
            Some(v) => writeln!(csv, ",{v}")?,
            None => writeln!(csv, ",")?,
        }
    }

    // best.yaml
    let best = match (&summary.best_point, summary.best_value) {
        (Some(p), Some(v)) => {
            let mut pairs: Vec<(String, Value)> = summary
                .conf
                .variables
                .iter()
                .zip(p)
                .map(|(var, &x)| (var.name.clone(), Value::Float(x)))
                .collect();
            pairs.push((summary.conf.metric.clone(), Value::Float(v)));
            Value::Map(pairs)
        }
        _ => Value::Null,
    };
    fs::write(dir.join("best.yaml"), best.to_yaml())?;
    Ok(())
}

/// finalize() for one evaluation: record its point and value.
pub fn write_evaluation(dir: &Path, trial: u64, point: &Point, value: f64) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut f = fs::File::create(dir.join("result.csv"))?;
    writeln!(f, "trial,point,value")?;
    let point_str = point
        .iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(";");
    writeln!(f, "{trial},{point_str},{value}")?;
    Ok(())
}

/// Read back `evaluations.csv` as `(trial, point, value)` rows (failed
/// trials come back with `None`). Used by tests and by `--repeat` replays.
pub fn load_evaluations(dir: &Path) -> io::Result<Vec<(u64, Point, Option<f64>)>> {
    let text = fs::read_to_string(dir.join("evaluations.csv"))?;
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("");
    let n_cols = header.split(',').count();
    let mut out = Vec::new();
    for line in lines {
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != n_cols {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("ragged row: {line}"),
            ));
        }
        let trial: u64 = cols[0]
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
        let point: Point = cols[2..n_cols - 1]
            .iter()
            .map(|c| c.parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
        let value = cols[n_cols - 1].parse::<f64>().ok();
        out.push((trial, point, value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2c_conf::parse;
    use e2c_conf::schema::ExperimentConf;

    fn conf() -> OptimizationConf {
        let src = r#"
name: x
optimization:
  metric: user_resp_time
  mode: min
  name: plantnet_engine
  num_samples: 10
  max_concurrent: 2
  search:
    algo: extra_trees
    n_initial_points: 45
    initial_point_generator: lhs
    acq_func: gp_hedge
  config:
    - name: http
      bounds: [20, 60]
    - name: extract
      bounds: [3, 9]
"#;
        ExperimentConf::from_value(&parse(src).unwrap())
            .unwrap()
            .optimization
            .unwrap()
    }

    #[test]
    fn problem_roundtrips_through_yaml() {
        let v = problem_to_value(&conf());
        let text = v.to_yaml();
        let reparsed = parse(&text).unwrap();
        assert_eq!(
            reparsed.get("metric").unwrap().as_str(),
            Some("user_resp_time")
        );
        assert_eq!(
            reparsed
                .get("search")
                .unwrap()
                .get("n_initial_points")
                .unwrap()
                .as_int(),
            Some(45)
        );
        let config = reparsed.get("config").unwrap().as_seq().unwrap();
        assert_eq!(config.len(), 2);
        assert_eq!(
            config[1].get("bounds").unwrap().as_seq().unwrap()[1].as_float(),
            Some(9.0)
        );
    }

    #[test]
    fn evaluation_record_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "e2clab-eval-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = fs::remove_dir_all(&dir);
        write_evaluation(&dir, 3, &vec![40.0, 7.0], 2.5).unwrap();
        let text = fs::read_to_string(dir.join("result.csv")).unwrap();
        assert!(text.contains("3,40;7,2.5"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
