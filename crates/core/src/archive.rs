//! The Phase III reproducibility archive.
//!
//! "Providing all this information at the end of computations allows other
//! researchers to reproduce the research results" (§III-C). The archive is
//! a plain directory:
//!
//! ```text
//! <root>/
//!   problem.yaml       # Phase I: variables, objective, constraints
//!   summary.txt        # Phase III report (sampler, algo, best config)
//!   evaluations.csv    # every evaluated point with its metric value
//!   best.yaml          # the best configuration found
//!   evals/trial_<id>/  # per-evaluation directories (prepare())
//!     result.csv       # finalize(): the point and value of this trial
//! ```

use crate::optimization::OptimizationSummary;
use e2c_conf::schema::{OptimizationConf, VarKind};
use e2c_conf::Value;
use e2c_optim::space::Point;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Serialize a problem definition to a configuration document.
pub fn problem_to_value(conf: &OptimizationConf) -> Value {
    let variables: Vec<Value> = conf
        .variables
        .iter()
        .map(|v| {
            Value::Map(vec![
                ("name".into(), Value::Str(v.name.clone())),
                (
                    "type".into(),
                    Value::Str(
                        match v.kind {
                            VarKind::Int => "randint",
                            VarKind::Real => "uniform",
                        }
                        .into(),
                    ),
                ),
                (
                    "bounds".into(),
                    Value::Seq(vec![Value::Float(v.lo), Value::Float(v.hi)]),
                ),
            ])
        })
        .collect();
    let mut doc = Value::Map(vec![
        ("name".into(), Value::Str(conf.name.clone())),
        ("metric".into(), Value::Str(conf.metric.clone())),
        (
            "mode".into(),
            Value::Str(if conf.minimize { "min" } else { "max" }.into()),
        ),
        ("num_samples".into(), Value::Int(conf.num_samples as i64)),
        (
            "max_concurrent".into(),
            Value::Int(conf.max_concurrent as i64),
        ),
        (
            "search".into(),
            Value::Map(vec![
                ("algo".into(), Value::Str(conf.algo.name().into())),
                (
                    "n_initial_points".into(),
                    Value::Int(conf.n_initial_points as i64),
                ),
                (
                    "initial_point_generator".into(),
                    Value::Str(conf.initial_point_generator.name().into()),
                ),
                ("acq_func".into(), Value::Str(conf.acq_func.name().into())),
            ]),
        ),
        ("config".into(), Value::Seq(variables)),
    ]);
    if let Some(ft) = &conf.fault_tolerance {
        let mut block = vec![
            ("max_retries".into(), Value::Int(ft.max_retries as i64)),
            ("backoff_ms".into(), Value::Int(ft.backoff_ms as i64)),
            ("backoff_factor".into(), Value::Float(ft.backoff_factor)),
            (
                "max_backoff_ms".into(),
                Value::Int(ft.max_backoff_ms as i64),
            ),
            ("jitter".into(), Value::Float(ft.jitter)),
        ];
        if let Some(ms) = ft.time_budget_ms {
            block.push(("time_budget_ms".into(), Value::Int(ms as i64)));
        }
        if let Value::Map(pairs) = &mut doc {
            pairs.push(("fault_tolerance".into(), Value::Map(block)));
        }
    }
    doc
}

/// Write the full Phase III archive. Every file goes through an atomic
/// tmp+rename, so a crash mid-write can never leave a truncated archive —
/// readers (and crash-resumed runs) see either the previous snapshot or
/// the new one.
pub fn write_summary(summary: &OptimizationSummary, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    e2c_journal::write_atomic(
        &dir.join("problem.yaml"),
        problem_to_value(&summary.conf).to_yaml().as_bytes(),
    )?;
    e2c_journal::write_atomic(&dir.join("summary.txt"), summary.render().as_bytes())?;

    // evaluations.csv — trial id, status, attempt count, variables...,
    // value, last failure reason (empty for successes).
    let mut csv = String::from("trial,status,attempts");
    for v in &summary.conf.variables {
        let _ = write!(csv, ",{}", v.name);
    }
    let _ = writeln!(csv, ",{},failure", summary.conf.metric);
    for t in summary.analysis.trials() {
        let status = match &t.status {
            e2c_tune::TrialStatus::Terminated(_) => "terminated",
            e2c_tune::TrialStatus::StoppedEarly(_) => "stopped_early",
            e2c_tune::TrialStatus::Failed(_) => "failed",
            _ => "incomplete",
        };
        let _ = write!(csv, "{},{},{}", t.id, status, t.attempt_count());
        for x in &t.config {
            let _ = write!(csv, ",{x}");
        }
        match t.value() {
            Some(v) => {
                let _ = write!(csv, ",{v}");
            }
            None => csv.push(','),
        }
        let failure = t.status.failure().map(sanitize_csv).unwrap_or_default();
        let _ = writeln!(csv, ",{failure}");
    }
    e2c_journal::write_atomic(&dir.join("evaluations.csv"), csv.as_bytes())?;

    // best.yaml
    let best = match (&summary.best_point, summary.best_value) {
        (Some(p), Some(v)) => {
            let mut pairs: Vec<(String, Value)> = summary
                .conf
                .variables
                .iter()
                .zip(p)
                .map(|(var, &x)| (var.name.clone(), Value::Float(x)))
                .collect();
            pairs.push((summary.conf.metric.clone(), Value::Float(v)));
            Value::Map(pairs)
        }
        _ => Value::Null,
    };
    e2c_journal::write_atomic(&dir.join("best.yaml"), best.to_yaml().as_bytes())?;
    Ok(())
}

/// finalize() for one evaluation: record its point and value (atomically —
/// a retried or crash-resumed evaluation overwrites, never tears).
pub fn write_evaluation(dir: &Path, trial: u64, point: &Point, value: f64) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let point_str = point
        .iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(";");
    let text = format!("trial,point,value\n{trial},{point_str},{value}\n");
    e2c_journal::write_atomic(&dir.join("result.csv"), text.as_bytes())
}

/// Strip CSV-hostile characters from a free-text field (failure reasons
/// may carry panic payloads); the row must stay one comma-split line.
fn sanitize_csv(text: &str) -> String {
    text.chars()
        .map(|c| match c {
            ',' => ';',
            '\n' | '\r' => ' ',
            c => c,
        })
        .collect()
}

/// Read back `evaluations.csv` as `(trial, point, value)` rows (failed
/// trials come back with `None`). Used by tests and by `--repeat` replays.
///
/// Layout: `trial,status,attempts,<variables...>,<metric>,failure`.
pub fn load_evaluations(dir: &Path) -> io::Result<Vec<(u64, Point, Option<f64>)>> {
    Ok(load_evaluation_records(dir)?
        .into_iter()
        .map(|r| (r.trial, r.point, r.value))
        .collect())
}

/// One parsed `evaluations.csv` row, including the retry bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationRecord {
    /// Trial id.
    pub trial: u64,
    /// Final status token (`terminated`, `stopped_early`, `failed`, ...).
    pub status: String,
    /// How many times the trial was executed.
    pub attempts: u32,
    /// The evaluated configuration.
    pub point: Point,
    /// Metric value (`None` for failed trials).
    pub value: Option<f64>,
    /// Last failure reason (empty for successes).
    pub failure: String,
}

/// Read back `evaluations.csv` with full per-row detail.
pub fn load_evaluation_records(dir: &Path) -> io::Result<Vec<EvaluationRecord>> {
    let text = fs::read_to_string(dir.join("evaluations.csv"))?;
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("");
    let n_cols = header.split(',').count();
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    if n_cols < 6 {
        return Err(bad(format!("unexpected header: {header}")));
    }
    let mut out = Vec::new();
    for line in lines {
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != n_cols {
            return Err(bad(format!("ragged row: {line}")));
        }
        let trial: u64 = cols[0].parse().map_err(|e| bad(format!("{e}")))?;
        let attempts: u32 = cols[2].parse().map_err(|e| bad(format!("{e}")))?;
        let point: Point = cols[3..n_cols - 2]
            .iter()
            .map(|c| c.parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| bad(format!("{e}")))?;
        let value = cols[n_cols - 2].parse::<f64>().ok();
        out.push(EvaluationRecord {
            trial,
            status: cols[1].to_string(),
            attempts,
            point,
            value,
            failure: cols[n_cols - 1].to_string(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2c_conf::parse;
    use e2c_conf::schema::ExperimentConf;

    fn conf() -> OptimizationConf {
        let src = r#"
name: x
optimization:
  metric: user_resp_time
  mode: min
  name: plantnet_engine
  num_samples: 10
  max_concurrent: 2
  search:
    algo: extra_trees
    n_initial_points: 45
    initial_point_generator: lhs
    acq_func: gp_hedge
  config:
    - name: http
      bounds: [20, 60]
    - name: extract
      bounds: [3, 9]
"#;
        ExperimentConf::from_value(&parse(src).unwrap())
            .unwrap()
            .optimization
            .unwrap()
    }

    #[test]
    fn problem_roundtrips_through_yaml() {
        let v = problem_to_value(&conf());
        let text = v.to_yaml();
        let reparsed = parse(&text).unwrap();
        assert_eq!(
            reparsed.get("metric").unwrap().as_str(),
            Some("user_resp_time")
        );
        assert_eq!(
            reparsed
                .get("search")
                .unwrap()
                .get("n_initial_points")
                .unwrap()
                .as_int(),
            Some(45)
        );
        let config = reparsed.get("config").unwrap().as_seq().unwrap();
        assert_eq!(config.len(), 2);
        assert_eq!(
            config[1].get("bounds").unwrap().as_seq().unwrap()[1].as_float(),
            Some(9.0)
        );
    }

    #[test]
    fn evaluations_csv_records_attempts_and_failures() {
        use e2c_tune::trial::{Attempt, Trial, TrialStatus};
        use e2c_tune::tuner::Mode;
        use e2c_tune::Analysis;

        let dir = std::env::temp_dir().join(format!(
            "e2clab-archive-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = fs::remove_dir_all(&dir);

        use e2c_tune::trial::TrialError;
        let mut flaky = Trial::new(0, vec![40.0, 7.0]);
        flaky.status = TrialStatus::Terminated(2.5);
        flaky.attempts = vec![
            Attempt {
                index: 0,
                error: Some(TrialError::Panicked("panic: broken, pipe".into())),
                secs: 0.1,
                raw: None,
            },
            Attempt {
                index: 1,
                error: None,
                secs: 0.1,
                raw: Some(2.5),
            },
        ];
        let mut doomed = Trial::new(1, vec![20.0, 3.0]);
        doomed.status = TrialStatus::Failed("deadline exceeded".into());
        doomed.attempts = vec![Attempt {
            index: 0,
            error: Some(TrialError::DeadlineExceeded),
            secs: 0.2,
            raw: None,
        }];
        let analysis = Analysis::new(
            "plantnet_engine".into(),
            "user_resp_time".into(),
            Mode::Min,
            vec![flaky, doomed],
        );
        let summary = OptimizationSummary {
            conf: conf(),
            seed: 1,
            best_point: Some(vec![40.0, 7.0]),
            best_value: Some(2.5),
            analysis,
        };
        write_summary(&summary, &dir).unwrap();

        let text = fs::read_to_string(dir.join("evaluations.csv")).unwrap();
        assert!(text.starts_with("trial,status,attempts,http,extract,user_resp_time,failure\n"));

        let recs = load_evaluation_records(&dir).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].attempts, 2);
        assert_eq!(recs[0].status, "terminated");
        assert_eq!(recs[0].value, Some(2.5));
        assert_eq!(recs[0].failure, "");
        assert_eq!(recs[1].attempts, 1);
        assert_eq!(recs[1].status, "failed");
        assert_eq!(recs[1].value, None);
        assert_eq!(recs[1].failure, "deadline exceeded");
        assert_eq!(recs[1].point, vec![20.0, 3.0]);

        // The legacy accessor still yields (trial, point, value).
        let evals = load_evaluations(&dir).unwrap();
        assert_eq!(evals[0], (0, vec![40.0, 7.0], Some(2.5)));
        assert_eq!(evals[1], (1, vec![20.0, 3.0], None));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sanitize_keeps_rows_single_line() {
        assert_eq!(sanitize_csv("a,b\nc"), "a;b c");
        assert_eq!(sanitize_csv("plain"), "plain");
    }

    #[test]
    fn fault_tolerance_block_serialized_when_present() {
        let mut c = conf();
        c.fault_tolerance = Some(e2c_conf::schema::FaultToleranceConf {
            max_retries: 2,
            time_budget_ms: Some(5000),
            ..Default::default()
        });
        let text = problem_to_value(&c).to_yaml();
        let reparsed = parse(&text).unwrap();
        let ft = reparsed.get("fault_tolerance").unwrap();
        assert_eq!(ft.get("max_retries").unwrap().as_int(), Some(2));
        assert_eq!(ft.get("time_budget_ms").unwrap().as_int(), Some(5000));
        // And it validates back through the schema.
        let full = Value::Map(vec![
            ("name".into(), Value::Str("x".into())),
            ("optimization".into(), reparsed),
        ]);
        let conf2 = ExperimentConf::from_value(&full).unwrap();
        let ft2 = conf2.optimization.unwrap().fault_tolerance.unwrap();
        assert_eq!(ft2.max_retries, 2);
        assert_eq!(ft2.backoff_factor, 2.0);
    }

    #[test]
    fn evaluation_record_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "e2clab-eval-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = fs::remove_dir_all(&dir);
        write_evaluation(&dir, 3, &vec![40.0, 7.0], 2.5).unwrap();
        let text = fs::read_to_string(dir.join("result.csv")).unwrap();
        assert!(text.contains("3,40;7,2.5"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
