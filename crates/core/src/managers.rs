//! The E2Clab managers (Fig. 7).
//!
//! * [`InfrastructureManager`] — resolves the configuration's layers &
//!   services into testbed reservations and a [`Deployment`];
//! * [`NetworkManager`] — turns the configuration's network rules into an
//!   emulated [`Topology`] (the `tc netem` step);
//! * [`MonitoringManager`] — owns the metric registry of a run and merges
//!   repeated runs into one backup.

use e2c_conf::schema::{ExperimentConf, NetworkConf};
use e2c_metrics::Registry;
use e2c_net::{LinkSpec, Topology};
use e2c_testbed::{Deployment, Reservation, ReserveError, Testbed};

/// Provisions testbed nodes for every service of every layer.
pub struct InfrastructureManager;

impl InfrastructureManager {
    /// Reserve nodes for each `(layer, service)` and assemble the
    /// role → nodes deployment. Roles are named `layer.service`.
    pub fn provision(
        conf: &ExperimentConf,
        testbed: &mut Testbed,
    ) -> Result<(Deployment, Vec<Reservation>), ReserveError> {
        let mut deployment = Deployment::new();
        let mut reservations = Vec::new();
        for layer in &conf.layers {
            for svc in &layer.services {
                let res = testbed.reserve(&svc.cluster, svc.quantity)?;
                deployment.assign(&format!("{}.{}", layer.name, svc.name), &res.nodes);
                reservations.push(res);
            }
        }
        Ok((deployment, reservations))
    }

    /// Release every reservation taken by [`InfrastructureManager::provision`].
    pub fn teardown(testbed: &mut Testbed, reservations: &[Reservation]) {
        for res in reservations {
            testbed.release(res);
        }
    }
}

/// Applies the configuration's network constraints.
pub struct NetworkManager;

impl NetworkManager {
    /// Build the emulated topology from the network rules.
    pub fn emulate(rules: &[NetworkConf]) -> Topology {
        let mut topo = Topology::new();
        for rule in rules {
            topo.constrain(
                &rule.src,
                &rule.dst,
                LinkSpec::new(rule.delay_ms, rule.rate_mbps).with_loss(rule.loss),
            );
        }
        topo
    }
}

/// Collects and merges run metrics.
#[derive(Default)]
pub struct MonitoringManager {
    merged: Registry,
    runs: usize,
}

impl MonitoringManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb one run's registry, concatenating it after previous runs
    /// (times shifted by `run_index * duration`).
    pub fn absorb(&mut self, registry: &Registry, duration_secs: f64) {
        self.merged
            .append_shifted(registry, self.runs as f64 * duration_secs);
        self.runs += 1;
    }

    /// Number of runs absorbed.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// The merged registry (the experiment backup).
    pub fn backup(&self) -> &Registry {
        &self.merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2c_conf::parse;
    use e2c_conf::schema::ExperimentConf;
    use e2c_testbed::grid5000;

    fn conf() -> ExperimentConf {
        let src = r#"
name: test
layers:
  - name: cloud
    services:
      - name: engine
        cluster: chifflot
        quantity: 1
  - name: edge
    services:
      - name: clients
        cluster: gros
        quantity: 4
network:
  - src: edge
    dst: cloud
    delay_ms: 5.0
    rate_mbps: 10000
"#;
        ExperimentConf::from_value(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn provision_reserves_by_layer_and_service() {
        let mut tb = grid5000::paper_testbed();
        let (dep, reservations) = InfrastructureManager::provision(&conf(), &mut tb).unwrap();
        assert_eq!(dep.nodes_of("cloud.engine").len(), 1);
        assert_eq!(dep.nodes_of("edge.clients").len(), 4);
        assert_eq!(reservations.len(), 2);
        assert_eq!(tb.free_in("chifflot"), 1);
        assert_eq!(tb.free_in("gros"), 6);
        InfrastructureManager::teardown(&mut tb, &reservations);
        assert_eq!(tb.free_in("chifflot"), 2);
        assert_eq!(tb.free_in("gros"), 10);
    }

    #[test]
    fn provision_fails_on_exhausted_cluster() {
        let mut tb = grid5000::paper_testbed();
        let mut c = conf();
        c.layers[0].services[0].quantity = 5; // only 2 chifflot nodes exist
        let err = InfrastructureManager::provision(&c, &mut tb).unwrap_err();
        assert!(matches!(err, ReserveError::Insufficient(_, 5, 2)));
    }

    #[test]
    fn network_rules_become_topology() {
        let topo = NetworkManager::emulate(&conf().network);
        let link = topo.link("edge", "cloud");
        assert_eq!(link.latency_ms, 5.0);
        assert_eq!(link.bandwidth_mbps, 10_000.0);
        // Unconstrained pair falls back to the default.
        assert!(topo.link("cloud", "cloud").bandwidth_mbps > 10_000.0);
    }

    #[test]
    fn monitoring_concatenates_runs() {
        let mut mm = MonitoringManager::new();
        let mut r1 = Registry::new();
        r1.record("m", 10.0, 1.0);
        let mut r2 = Registry::new();
        r2.record("m", 10.0, 2.0);
        mm.absorb(&r1, 100.0);
        mm.absorb(&r2, 100.0);
        assert_eq!(mm.runs(), 2);
        let series = mm.backup().get("m").unwrap();
        assert_eq!(series.times(), &[10.0, 110.0]);
    }
}
