//! End-to-end gates for the determinism story:
//!
//! * `workspace_lint_is_clean` — the detlint pass over this repository
//!   exits clean (every remaining hazard carries a justified allow);
//! * `replay_check_*` — `e2clab optimize --replay-check` runs the same
//!   seeded cycle twice and proves `evaluations.csv` and
//!   `trials/trials.jsonl` come out byte-identical.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

const TINY_CONF: &str = r#"
name: replay-gate
optimization:
  metric: response_time
  mode: min
  name: replay-gate
  num_samples: 6
  max_concurrent: 2
  search:
    algo: extra_trees
    n_initial_points: 3
    initial_point_generator: lhs
    acq_func: ei
  config:
    - name: http
      type: randint
      bounds: [20, 60]
    - name: download
      type: randint
      bounds: [20, 60]
    - name: simsearch
      type: randint
      bounds: [20, 60]
    - name: extract
      type: randint
      bounds: [2, 20]
"#;

#[test]
fn workspace_lint_is_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_e2clab"))
        .arg("lint")
        .arg(workspace_root())
        .output()
        .expect("run e2clab lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "lint found unsuppressed hazards:\n{stdout}{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("0 error(s)"), "{stdout}");
}

#[test]
fn lint_rejects_a_dirty_tree() {
    let dir = std::env::temp_dir().join(format!("detlint-dirty-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("bad.rs"),
        "fn f() { let mut r = StdRng::from_entropy(); r.gen::<u8>(); }\n",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_e2clab"))
        .arg("lint")
        .arg(&dir)
        .output()
        .expect("run e2clab lint");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("DET003"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replay_check_proves_byte_identical_artifacts() {
    let base = std::env::temp_dir().join(format!("e2clab-replaygate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let conf = base.join("conf.yaml");
    std::fs::write(&conf, TINY_CONF).unwrap();
    let archive = base.join("archive");

    let out = Command::new(env!("CARGO_BIN_EXE_e2clab"))
        .args([
            "optimize",
            "--seed",
            "11",
            "--duration",
            "30",
            "--replay-check",
            "--archive",
        ])
        .arg(&archive)
        .arg(&conf)
        .output()
        .expect("run e2clab optimize --replay-check");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "replay check failed:\n{stdout}{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("evaluations.csv identical"), "{stdout}");
    assert!(stdout.contains("trials/trials.jsonl identical"), "{stdout}");
    assert!(stdout.contains("replay-check: PASS"), "{stdout}");
    // The requested archive survives the check.
    assert!(archive.join("evaluations.csv").is_file());
    assert!(archive.join("trials").join("trials.jsonl").is_file());
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn replay_check_without_archive_cleans_up() {
    let base = std::env::temp_dir().join(format!("e2clab-replaygate2-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let conf = base.join("conf.yaml");
    std::fs::write(&conf, TINY_CONF).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_e2clab"))
        .args([
            "optimize",
            "--seed",
            "3",
            "--duration",
            "30",
            "--replay-check",
        ])
        .arg(&conf)
        .output()
        .expect("run e2clab optimize --replay-check");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("replay-check: PASS"));
    std::fs::remove_dir_all(&base).unwrap();
}
