//! Property-based tests for the DES kernel invariants.

use e2c_des::resources::{Discipline, ProcShare, Tokens};
use e2c_des::{EventQueue, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, whatever the
    /// insertion order.
    #[test]
    fn queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn queue_cancellation_exact(
        times in prop::collection::vec(0u64..1_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 100)
    ) {
        let mut q = EventQueue::new();
        let mut handles = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            handles.push((q.schedule(SimTime::from_micros(t), i), i));
        }
        let mut kept = Vec::new();
        for (h, i) in &handles {
            if cancel_mask[*i % cancel_mask.len()] {
                q.cancel(*h);
            } else {
                kept.push(*i);
            }
        }
        let mut popped = Vec::new();
        while let Some((_, i)) = q.pop() {
            popped.push(i);
        }
        popped.sort_unstable();
        kept.sort_unstable();
        prop_assert_eq!(popped, kept);
    }

    /// Token pool conservation: grants never exceed capacity, and everybody
    /// who queued is eventually served in FIFO order.
    #[test]
    fn tokens_conservation(cap in 1usize..16, n in 1usize..100) {
        let mut pool = Tokens::new(cap);
        let mut queued = Vec::new();
        for id in 0..n as u64 {
            if !pool.try_acquire(SimTime::from_micros(id), id) {
                queued.push(id);
            }
        }
        prop_assert_eq!(pool.busy(), n.min(cap));
        prop_assert_eq!(pool.queue_len(), n.saturating_sub(cap));
        // Drain: each release hands the token to the next FIFO waiter.
        let mut served = Vec::new();
        let mut now = SimTime::from_secs(1);
        for _ in 0..n.min(cap) + queued.len() {
            if pool.busy() == 0 { break; }
            if let Some(next) = pool.release(now) {
                served.push(next);
            }
            now += SimTime::from_micros(1);
        }
        prop_assert_eq!(served, queued);
        prop_assert_eq!(pool.busy(), 0);
    }

    /// Processor-sharing work conservation: with a single core and all jobs
    /// present from t=0, total completion time equals total demand.
    #[test]
    fn ps_work_conservation(demands in prop::collection::vec(0.01f64..5.0, 1..20)) {
        let mut ps = ProcShare::cores(1.0);
        for (id, &d) in demands.iter().enumerate() {
            ps.start(SimTime::ZERO, id as u64, d, 1.0);
        }
        let total: f64 = demands.iter().sum();
        let mut now = SimTime::ZERO;
        let mut finished = 0;
        while let Some((at, id)) = ps.next_completion(now) {
            now = at;
            ps.remove(now, id);
            finished += 1;
        }
        prop_assert_eq!(finished, demands.len());
        // Microsecond rounding accumulates at most 1us per completion.
        let slack = 1e-6 * demands.len() as f64 + 1e-6;
        prop_assert!((now.as_secs_f64() - total).abs() <= slack,
            "finished at {} expected {}", now.as_secs_f64(), total);
    }

    /// Under processor sharing, a job's sojourn time is never shorter than
    /// its demand (rate never exceeds 1).
    #[test]
    fn ps_no_speedup(demands in prop::collection::vec(0.01f64..2.0, 1..10),
                     cores in 1u32..8) {
        let mut ps = ProcShare::cores(cores as f64);
        for (id, &d) in demands.iter().enumerate() {
            ps.start(SimTime::ZERO, id as u64, d, 1.0);
        }
        let mut now = SimTime::ZERO;
        while let Some((at, id)) = ps.next_completion(now) {
            now = at;
            let demand = demands[id as usize];
            prop_assert!(now.as_secs_f64() + 2e-6 >= demand);
            ps.remove(now, id);
        }
    }

    /// Saturating (GPU) discipline: aggregate throughput is monotone
    /// non-decreasing in concurrency for alpha <= 1 (the physical regime —
    /// alpha > 1 would mean concurrency destroys throughput outright).
    #[test]
    fn gpu_throughput_monotone(alpha in 0.0f64..=1.0) {
        let mut last = 0.0;
        for n in 1..32 {
            let disc = Discipline::Saturating { alpha, cap: f64::INFINITY, devices: 1 };
            let mut gpu = ProcShare::new(disc);
            for id in 0..n {
                gpu.start(SimTime::ZERO, id, 1.0, 1.0);
            }
            let (at, _) = gpu.next_completion(SimTime::ZERO).unwrap();
            // All jobs finish at the same time; throughput = n / time.
            let throughput = n as f64 / at.as_secs_f64();
            prop_assert!(throughput >= last - 1e-9,
                "alpha={alpha} n={n}: {throughput} < {last}");
            last = throughput;
        }
    }
}
