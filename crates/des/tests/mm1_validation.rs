//! Kernel validation against queueing theory: build M/M/1 and M/M/c
//! queues from the DES primitives and compare the simulated steady-state
//! metrics with the closed-form results. If the kernel mishandles event
//! ordering, resource accounting or distribution sampling, these numbers
//! drift immediately.

use e2c_des::resources::Tokens;
use e2c_des::{Context, Dist, Model, SimTime, Simulation};

struct Mm1 {
    arrival_mean: f64,
    service_mean: f64,
    servers: usize,
    pool: Tokens,
    next_id: u64,
    // Response-time accounting.
    arrivals: std::collections::HashMap<u64, SimTime>,
    completed: u64,
    response_sum: f64,
    warmup: SimTime,
}

#[derive(Clone, Copy)]
enum Ev {
    Arrive,
    Done { job: u64 },
}

impl Model for Mm1 {
    type Event = Ev;

    fn handle(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
        match ev {
            Ev::Arrive => {
                let id = self.next_id;
                self.next_id += 1;
                self.arrivals.insert(id, ctx.now());
                if self.pool.try_acquire(ctx.now(), id) {
                    let d = Dist::Exp {
                        mean: self.service_mean,
                    };
                    let t = SimTime::from_secs_f64(d.sample(ctx.rng()));
                    ctx.schedule_in(t, Ev::Done { job: id });
                }
                let gap = Dist::Exp {
                    mean: self.arrival_mean,
                };
                let g = SimTime::from_secs_f64(gap.sample(ctx.rng()));
                ctx.schedule_in(g, Ev::Arrive);
            }
            Ev::Done { job } => {
                let arrived = self.arrivals.remove(&job).expect("known job");
                if ctx.now() > self.warmup {
                    self.completed += 1;
                    self.response_sum += (ctx.now() - arrived).as_secs_f64();
                }
                if let Some(next) = self.pool.release(ctx.now()) {
                    let d = Dist::Exp {
                        mean: self.service_mean,
                    };
                    let t = SimTime::from_secs_f64(d.sample(ctx.rng()));
                    ctx.schedule_in(t, Ev::Done { job: next });
                }
            }
        }
    }
}

fn run_queue(lambda: f64, mu: f64, servers: usize, horizon_secs: u64, seed: u64) -> (f64, f64) {
    let model = Mm1 {
        arrival_mean: 1.0 / lambda,
        service_mean: 1.0 / mu,
        servers,
        pool: Tokens::new(servers),
        next_id: 0,
        arrivals: Default::default(),
        completed: 0,
        response_sum: 0.0,
        warmup: SimTime::from_secs(horizon_secs / 10),
    };
    let mut sim = Simulation::new(model, seed);
    sim.schedule(SimTime::ZERO, Ev::Arrive);
    sim.run_until(SimTime::from_secs(horizon_secs));
    let m = sim.model();
    let mean_response = m.response_sum / m.completed as f64;
    let throughput = m.completed as f64 / (horizon_secs as f64 - horizon_secs as f64 / 10.0);
    assert_eq!(m.servers, servers); // silence dead-code analysis honestly
    (mean_response, throughput)
}

#[test]
fn mm1_mean_response_matches_theory() {
    // M/M/1: W = 1 / (mu - lambda).
    let (lambda, mu) = (6.0, 10.0);
    let (w_sim, x_sim) = run_queue(lambda, mu, 1, 40_000, 11);
    let w_theory = 1.0 / (mu - lambda);
    assert!(
        (w_sim - w_theory).abs() / w_theory < 0.05,
        "W: simulated {w_sim:.4} vs theory {w_theory:.4}"
    );
    // Stable queue: throughput equals the arrival rate.
    assert!((x_sim - lambda).abs() / lambda < 0.05, "X {x_sim}");
}

#[test]
fn mm1_utilization_law_holds() {
    // rho = lambda / mu must match the pool's busy fraction.
    let (lambda, mu) = (4.0, 10.0);
    let model = Mm1 {
        arrival_mean: 1.0 / lambda,
        service_mean: 1.0 / mu,
        servers: 1,
        pool: Tokens::new(1),
        next_id: 0,
        arrivals: Default::default(),
        completed: 0,
        response_sum: 0.0,
        warmup: SimTime::ZERO,
    };
    let mut sim = Simulation::new(model, 3);
    sim.schedule(SimTime::ZERO, Ev::Arrive);
    let horizon = SimTime::from_secs(20_000);
    sim.run_until(horizon);
    let util = sim.model_mut().pool.utilization(horizon);
    assert!((util - 0.4).abs() < 0.02, "rho: {util}");
}

#[test]
fn mmc_beats_mm1_at_equal_total_capacity() {
    // Classic result: at equal total service capacity, pooled servers
    // (M/M/2 with mu/2 each... here: 2 servers each rate mu) give lower
    // wait than a single fast server only for the *queueing* part; but
    // two slow servers beat one slow server outright. Check the simpler
    // monotonicity: M/M/2 with the same per-server rate more than halves
    // the M/M/1 response under heavy load.
    let (lambda, mu) = (9.0, 10.0); // rho = 0.9 on one server
    let (w1, _) = run_queue(lambda, mu, 1, 60_000, 5);
    let (w2, _) = run_queue(lambda, mu, 2, 60_000, 5);
    let w1_theory = 1.0 / (mu - lambda); // 1.0
    assert!((w1 - w1_theory).abs() / w1_theory < 0.10, "W1 {w1}");
    // M/M/2 at rho=0.45: Erlang-C gives W ≈ 0.128.
    assert!(
        (0.09..0.17).contains(&w2),
        "W2 {w2} out of the Erlang-C band"
    );
    assert!(w2 < w1 / 4.0, "pooling must collapse the queueing delay");
}
