//! Random distributions for service times and think times.
//!
//! Implemented from scratch on top of `rand`'s uniform source so the
//! workspace has no dependency beyond `rand` itself. All samples that model
//! durations are clamped to be non-negative.

use rand::Rng;

/// A sampleable distribution over `f64`.
///
/// `Dist` is `Copy` and fully described by its parameters, so experiment
/// definitions embedding distributions are trivially serializable and
/// reproducible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Dist {
    /// Always returns the same value.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with the given mean (not rate).
    Exp { mean: f64 },
    /// Normal with the given mean and standard deviation, truncated at zero.
    Normal { mean: f64, std: f64 },
    /// Log-normal parameterized by the *target* mean and coefficient of
    /// variation of the resulting distribution (more intuitive for service
    /// times than the underlying normal's mu/sigma).
    LogNormal { mean: f64, cv: f64 },
}

impl Dist {
    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => {
                debug_assert!(hi >= lo);
                lo + (hi - lo) * rng.gen::<f64>()
            }
            Dist::Exp { mean } => {
                // Inverse CDF; 1-U avoids ln(0).
                let u: f64 = rng.gen();
                -mean * (1.0 - u).ln()
            }
            Dist::Normal { mean, std } => (mean + std * standard_normal(rng)).max(0.0),
            Dist::LogNormal { mean, cv } => {
                // For LogNormal(mu, sigma): mean = exp(mu + sigma^2/2),
                // cv^2 = exp(sigma^2) - 1  =>  sigma^2 = ln(1 + cv^2).
                let sigma2 = (1.0 + cv * cv).ln();
                let mu = mean.ln() - sigma2 / 2.0;
                (mu + sigma2.sqrt() * standard_normal(rng)).exp()
            }
        }
    }

    /// The analytic mean of this distribution (post-truncation effects on
    /// `Normal` are ignored; callers keep `std << mean` for service times).
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Exp { mean } => mean,
            Dist::Normal { mean, .. } => mean,
            Dist::LogNormal { mean, .. } => mean,
        }
    }

    /// Return a copy of this distribution with its mean scaled by `factor`,
    /// preserving its relative shape. Used to derive per-configuration
    /// service times from calibrated baselines.
    pub fn scale(&self, factor: f64) -> Dist {
        match *self {
            Dist::Constant(v) => Dist::Constant(v * factor),
            Dist::Uniform { lo, hi } => Dist::Uniform {
                lo: lo * factor,
                hi: hi * factor,
            },
            Dist::Exp { mean } => Dist::Exp {
                mean: mean * factor,
            },
            Dist::Normal { mean, std } => Dist::Normal {
                mean: mean * factor,
                std: std * factor,
            },
            Dist::LogNormal { mean, cv } => Dist::LogNormal {
                mean: mean * factor,
                cv,
            },
        }
    }
}

/// One standard-normal draw via the Box–Muller transform.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE); // avoid ln(0)
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean(dist: Dist, n: usize) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(123);
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var.sqrt())
    }

    #[test]
    fn constant_is_constant() {
        let (m, s) = sample_mean(Dist::Constant(4.2), 100);
        assert!((m - 4.2).abs() < 1e-12);
        assert!(s < 1e-9);
    }

    #[test]
    fn uniform_mean_matches() {
        let (m, _) = sample_mean(Dist::Uniform { lo: 2.0, hi: 6.0 }, 50_000);
        assert!((m - 4.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn exp_mean_matches() {
        let (m, s) = sample_mean(Dist::Exp { mean: 3.0 }, 100_000);
        assert!((m - 3.0).abs() < 0.1, "mean {m}");
        assert!((s - 3.0).abs() < 0.15, "std {s}"); // exp: std == mean
    }

    #[test]
    fn normal_mean_and_std_match() {
        let (m, s) = sample_mean(
            Dist::Normal {
                mean: 10.0,
                std: 2.0,
            },
            100_000,
        );
        assert!((m - 10.0).abs() < 0.05, "mean {m}");
        assert!((s - 2.0).abs() < 0.05, "std {s}");
    }

    #[test]
    fn normal_truncated_at_zero() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = Dist::Normal {
            mean: 0.1,
            std: 5.0,
        };
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn lognormal_mean_and_cv_match() {
        let (m, s) = sample_mean(Dist::LogNormal { mean: 2.0, cv: 0.5 }, 200_000);
        assert!((m - 2.0).abs() < 0.03, "mean {m}");
        assert!((s / m - 0.5).abs() < 0.03, "cv {}", s / m);
    }

    #[test]
    fn scale_preserves_shape() {
        let d = Dist::LogNormal { mean: 2.0, cv: 0.5 };
        let d2 = d.scale(3.0);
        assert!((d2.mean() - 6.0).abs() < 1e-12);
        let d3 = Dist::Uniform { lo: 1.0, hi: 3.0 }.scale(2.0);
        assert_eq!(d3, Dist::Uniform { lo: 2.0, hi: 6.0 });
    }

    #[test]
    fn analytic_means() {
        assert_eq!(Dist::Constant(5.0).mean(), 5.0);
        assert_eq!(Dist::Uniform { lo: 0.0, hi: 2.0 }.mean(), 1.0);
        assert_eq!(Dist::Exp { mean: 7.0 }.mean(), 7.0);
    }
}
