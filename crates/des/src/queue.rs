//! Cancellable event queue with deterministic ordering.
//!
//! Events at equal timestamps pop in insertion (FIFO) order, which makes
//! simulations reproducible regardless of heap internals. Cancellation is
//! lazy: a cancelled entry stays in the heap and is skipped on pop, which
//! keeps `cancel` O(1) — important for processor-sharing resources that
//! reschedule their next-completion event on every membership change.
//!
//! Storage is a generational slab: heap entries carry only `(time, seq,
//! slot)` and the event payloads live in a slot vector with a LIFO free
//! list. Cancellation clears the slot in place — no hash lookups anywhere
//! on the hot path, and iteration order can never depend on hasher state
//! (detlint DET001 stays structurally impossible, not just suppressed).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifies a scheduled event so it can be cancelled later.
///
/// Handles are unique across the lifetime of an [`EventQueue`]; cancelling a
/// handle that already fired (or was already cancelled) is a no-op.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventHandle(u64);

impl EventHandle {
    fn new(slot: u32, gen: u32) -> Self {
        EventHandle((gen as u64) << 32 | slot as u64)
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Heap entry: ordering key plus the slot holding the payload. Keeping
/// the payload out of the heap makes sift operations move 16-byte
/// entries regardless of the event type's size.
struct Entry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties FIFO.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One payload slot. `gen` advances every time the slot is recycled, so a
/// stale [`EventHandle`] (kept after its event fired) can never cancel
/// the slot's next occupant. `event` is `None` once cancelled.
struct Slot<E> {
    gen: u32,
    event: Option<E>,
}

/// A priority queue of `(SimTime, E)` pairs supporting O(1) cancellation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry>,
    slots: Vec<Slot<E>>,
    /// Recycled slot indices (LIFO — keeps the slab dense and cache-warm).
    free: Vec<u32>,
    next_seq: u64,
    /// Scheduled-and-not-yet-fired-or-cancelled count.
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue with room for `cap` concurrent events before any
    /// reallocation.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.event.is_none(), "recycled slot must be vacant");
                s.event = Some(event);
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Slot {
                    gen: 0,
                    event: Some(event),
                });
                slot
            }
        };
        self.heap.push(Entry { at, seq, slot });
        self.live += 1;
        EventHandle::new(slot, self.slots[slot as usize].gen)
    }

    /// Cancel a previously scheduled event. No-op if it already fired.
    pub fn cancel(&mut self, handle: EventHandle) {
        if let Some(slot) = self.slots.get_mut(handle.slot() as usize) {
            if slot.gen == handle.gen() && slot.event.is_some() {
                slot.event = None;
                self.live -= 1;
            }
        }
    }

    /// Free the slot behind a popped heap entry and return its payload
    /// (`None` when the entry was cancelled).
    fn release(&mut self, entry: &Entry) -> Option<E> {
        let slot = &mut self.slots[entry.slot as usize];
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(entry.slot);
        slot.event.take()
    }

    /// Remove and return the earliest live event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            let at = entry.at;
            if let Some(event) = self.release(&entry) {
                self.live -= 1;
                return Some((at, event));
            }
        }
        None
    }

    /// Timestamp of the earliest live event, if any, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled heads so the peek reflects a live event.
        while let Some(entry) = self.heap.peek() {
            if self.slots[entry.slot as usize].event.is_some() {
                return Some(entry.at);
            }
            let entry = self.heap.pop().expect("peeked entry must pop");
            self.release(&entry);
        }
        None
    }

    /// Number of entries still in the heap, *including* lazily cancelled
    /// ones. Use [`EventQueue::is_empty`] for a liveness check.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(h1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1), "a");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        q.cancel(h);
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
    }

    #[test]
    fn peek_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_secs(1), "a");
        let h2 = q.schedule(SimTime::from_secs(2), "b");
        q.schedule(SimTime::from_secs(3), "c");
        q.cancel(h1);
        q.cancel(h2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn handles_are_unique() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::ZERO, 1);
        let h2 = q.schedule(SimTime::ZERO, 2);
        assert_ne!(h1, h2);
    }

    #[test]
    fn stale_handle_cannot_cancel_a_recycled_slot() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_secs(1), "a");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        // The popped slot is recycled for the next schedule; the stale
        // handle refers to the old generation and must not cancel it.
        let h2 = q.schedule(SimTime::from_secs(2), "b");
        assert_ne!(h1, h2);
        q.cancel(h1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
    }

    #[test]
    fn cancel_is_idempotent_and_live_count_tracks() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert!(!q.is_empty());
        q.cancel(h);
        q.cancel(h); // double-cancel must not underflow the live count
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn det001_unordered_iteration_stays_structurally_impossible() {
        // Regression gate for the slab redesign: the queue must not
        // reintroduce a HashMap/HashSet that detlint would flag (or that
        // would need a justification comment to pass the workspace lint).
        let findings = detlint::lint_source(
            "crates/des/src/queue.rs",
            include_str!("queue.rs"),
            &detlint::Config::default(),
        );
        let det001: Vec<_> = findings
            .iter()
            .filter(|f| matches!(f.rule, detlint::Rule::UnorderedIteration))
            .collect();
        assert!(det001.is_empty(), "{det001:?}");
    }

    #[test]
    fn slots_are_recycled_not_leaked() {
        let mut q = EventQueue::new();
        // Steady-state schedule/pop traffic must reuse a bounded slab.
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_micros(i), i);
            let (_, v) = q.pop().unwrap();
            assert_eq!(v, i);
        }
        assert!(q.slots.len() <= 2, "slab grew to {} slots", q.slots.len());
    }
}
