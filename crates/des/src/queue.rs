//! Cancellable event queue with deterministic ordering.
//!
//! Events at equal timestamps pop in insertion (FIFO) order, which makes
//! simulations reproducible regardless of heap internals. Cancellation is
//! lazy: a cancelled entry stays in the heap and is skipped on pop, which
//! keeps `cancel` O(1) — important for processor-sharing resources that
//! reschedule their next-completion event on every membership change.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Identifies a scheduled event so it can be cancelled later.
///
/// Handles are unique across the lifetime of an [`EventQueue`]; cancelling a
/// handle that already fired (or was already cancelled) is a no-op.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventHandle(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties FIFO.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of `(SimTime, E)` pairs supporting O(1) cancellation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        EventHandle(seq)
    }

    /// Cancel a previously scheduled event. No-op if it already fired.
    pub fn cancel(&mut self, handle: EventHandle) {
        self.cancelled.insert(handle.0);
    }

    /// Remove and return the earliest live event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Timestamp of the earliest live event, if any, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled heads so the peek reflects a live event.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.at);
            }
        }
        None
    }

    /// Number of entries still in the heap, *including* lazily cancelled
    /// ones. Use [`EventQueue::is_empty`] for a liveness check.
    // is_empty takes &mut self (it prunes cancelled entries), so clippy's
    // len/is_empty signature pairing cannot be satisfied here.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(h1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1), "a");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        q.cancel(h);
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
    }

    #[test]
    fn peek_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_secs(1), "a");
        let h2 = q.schedule(SimTime::from_secs(2), "b");
        q.schedule(SimTime::from_secs(3), "c");
        q.cancel(h1);
        q.cancel(h2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn handles_are_unique() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::ZERO, 1);
        let h2 = q.schedule(SimTime::ZERO, 2);
        assert_ne!(h1, h2);
    }
}
