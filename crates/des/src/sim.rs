//! The simulation event loop.
//!
//! A [`Simulation`] owns a user [`Model`], the event queue and a seeded RNG.
//! The model reacts to its own event type and schedules follow-up events
//! through the [`Context`] it receives. This inversion keeps the kernel free
//! of `Rc<RefCell<...>>` webs: the model is plain owned state, mutated one
//! event at a time.

use crate::queue::{EventHandle, EventQueue};
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// User-provided simulation logic.
pub trait Model {
    /// The event vocabulary of this model (typically an enum).
    type Event;

    /// React to `event` firing at `ctx.now()`.
    fn handle(&mut self, ctx: &mut Context<'_, Self::Event>, event: Self::Event);
}

/// Kernel services available to a model while handling an event.
pub struct Context<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    rng: &'a mut StdRng,
    stop: &'a mut bool,
}

impl<'a, E> Context<'a, E> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at the absolute time `at`. Scheduling in the past
    /// panics: it would silently reorder causality.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        self.queue.schedule(at, event)
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) -> EventHandle {
        self.queue.schedule(self.now + delay, event)
    }

    /// Cancel a previously scheduled event (no-op if it already fired).
    pub fn cancel(&mut self, handle: EventHandle) {
        self.queue.cancel(handle);
    }

    /// Seeded random number generator for this simulation run.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Request the event loop to stop after this event completes.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// A discrete-event simulation run: model + clock + queue + RNG.
pub struct Simulation<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    rng: StdRng,
    now: SimTime,
    processed: u64,
    trace: Option<(e2c_trace::Tracer, String)>,
}

impl<M: Model> Simulation<M> {
    /// Create a simulation at time zero with a deterministic RNG seed.
    pub fn new(model: M, seed: u64) -> Self {
        Simulation {
            model,
            queue: EventQueue::new(),
            rng: StdRng::seed_from_u64(seed),
            now: SimTime::ZERO,
            processed: 0,
            trace: None,
        }
    }

    /// Attach a tracer: each `run_until` segment emits one `des/run` event
    /// carrying `label`, the segment's event count and the queue residue,
    /// stamped with the sim clock (microseconds) as its virtual time.
    pub fn set_trace(&mut self, tracer: e2c_trace::Tracer, label: &str) {
        self.trace = Some((tracer, label.to_string()));
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Immutable access to the model (e.g. to read results after a run).
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (e.g. to install probes between runs).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the simulation and return the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Schedule an event from outside the event loop (setup phase).
    pub fn schedule(&mut self, at: SimTime, event: M::Event) -> EventHandle {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.schedule(at, event)
    }

    /// Run until the queue drains or the model calls [`Context::stop`].
    /// Returns the number of events processed by this call.
    pub fn run(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Run until the queue drains, the model stops the loop, or the next
    /// event would fire strictly after `horizon`. The clock is advanced to
    /// `horizon` if the run was cut by the horizon (so utilization integrals
    /// can be closed at the boundary by the caller).
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let before = self.processed;
        let mut stop = false;
        while let Some(next) = self.queue.peek_time() {
            if next > horizon {
                self.now = horizon;
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked event must pop");
            debug_assert!(at >= self.now, "event queue went backwards");
            self.now = at;
            let mut ctx = Context {
                now: self.now,
                queue: &mut self.queue,
                rng: &mut self.rng,
                stop: &mut stop,
            };
            self.model.handle(&mut ctx, event);
            self.processed += 1;
            if stop {
                break;
            }
        }
        let done = self.processed - before;
        if let Some((tracer, label)) = &self.trace {
            tracer.point_at(
                self.now.as_micros(),
                "des",
                "run",
                None,
                e2c_trace::fields([
                    ("label", label.as_str().into()),
                    ("events", done.into()),
                    ("queued", self.queue.len().into()),
                ]),
            );
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    enum Ev {
        Tick,
        Boom,
    }

    struct Counter {
        ticks: u32,
        booms: u32,
        limit: u32,
    }

    impl Model for Counter {
        type Event = Ev;
        fn handle(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
            match ev {
                Ev::Tick => {
                    self.ticks += 1;
                    if self.ticks < self.limit {
                        ctx.schedule_in(SimTime::from_secs(1), Ev::Tick);
                    }
                }
                Ev::Boom => {
                    self.booms += 1;
                    ctx.stop();
                }
            }
        }
    }

    #[test]
    fn runs_to_completion() {
        let mut sim = Simulation::new(
            Counter {
                ticks: 0,
                booms: 0,
                limit: 5,
            },
            1,
        );
        sim.schedule(SimTime::ZERO, Ev::Tick);
        let n = sim.run();
        assert_eq!(n, 5);
        assert_eq!(sim.model().ticks, 5);
        assert_eq!(sim.now(), SimTime::from_secs(4));
    }

    #[test]
    fn horizon_cuts_run_and_advances_clock() {
        let mut sim = Simulation::new(
            Counter {
                ticks: 0,
                booms: 0,
                limit: 100,
            },
            1,
        );
        sim.schedule(SimTime::ZERO, Ev::Tick);
        sim.run_until(SimTime::from_millis(2_500));
        // ticks at 0s, 1s, 2s fire; the 3s tick is beyond the horizon.
        assert_eq!(sim.model().ticks, 3);
        assert_eq!(sim.now(), SimTime::from_millis(2_500));
        // Continuing past the horizon resumes where we left off.
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.model().ticks, 4);
    }

    #[test]
    fn stop_halts_loop_immediately() {
        let mut sim = Simulation::new(
            Counter {
                ticks: 0,
                booms: 0,
                limit: 100,
            },
            1,
        );
        sim.schedule(SimTime::from_secs(1), Ev::Tick);
        sim.schedule(SimTime::from_millis(500), Ev::Boom);
        sim.run();
        assert_eq!(sim.model().booms, 1);
        assert_eq!(sim.model().ticks, 0);
        assert_eq!(sim.now(), SimTime::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, ctx: &mut Context<'_, ()>, _: ()) {
                let past = ctx.now().saturating_sub(SimTime::from_secs(1));
                ctx.schedule(past, ());
            }
        }
        let mut sim = Simulation::new(Bad, 0);
        sim.schedule(SimTime::from_secs(5), ());
        sim.run();
    }

    #[test]
    fn same_seed_same_trace() {
        use rand::Rng;
        struct R {
            draws: Vec<f64>,
        }
        impl Model for R {
            type Event = u32;
            fn handle(&mut self, ctx: &mut Context<'_, u32>, n: u32) {
                let x: f64 = ctx.rng().gen();
                self.draws.push(x);
                if n > 0 {
                    ctx.schedule_in(SimTime::from_micros(1), n - 1);
                }
            }
        }
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut sim = Simulation::new(R { draws: vec![] }, 7);
            sim.schedule(SimTime::ZERO, 20);
            sim.run();
            runs.push(sim.into_model().draws);
        }
        assert_eq!(runs[0], runs[1]);
    }
}
