//! Simulation time as integer microseconds.
//!
//! Integer time gives a total order and exact arithmetic: two events
//! scheduled for "the same" instant always compare equal, and repeated
//! addition never drifts the way `f64` seconds would over a 23-minute
//! experiment with millions of events.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulation time, measured in microseconds since the start of
/// the simulation.
///
/// `SimTime` doubles as a duration type: `t2 - t1` is itself a `SimTime`.
/// This mirrors how DES kernels commonly treat time and avoids a second
/// newtype for the handful of places a duration is needed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin of simulation time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Build from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Build from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Build from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Build from fractional seconds, rounding to the nearest microsecond.
    /// Negative inputs saturate to zero (service times are never negative).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimTime::ZERO
        } else {
            SimTime((s * 1e6).round() as u64)
        }
    }

    /// This time expressed as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time expressed as whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is zero when `b > a`.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition; `None` on overflow (only plausible with `MAX`).
    #[inline]
    pub fn checked_add(self, other: SimTime) -> Option<SimTime> {
        self.0.checked_add(other.0).map(SimTime)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_millis(1_500));
    }

    #[test]
    fn negative_seconds_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-4.0), SimTime::ZERO);
    }

    #[test]
    fn roundtrip_secs_f64() {
        let t = SimTime::from_micros(1_234_567);
        assert!((t.as_secs_f64() - 1.234567).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(3);
        assert_eq!(a + b, SimTime::from_secs(8));
        assert_eq!(a - b, SimTime::from_secs(2));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        c -= SimTime::from_secs(1);
        assert_eq!(c, SimTime::from_secs(7));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_micros(1),
            SimTime::MAX,
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_micros(1),
                SimTime::from_secs(3),
                SimTime::MAX
            ]
        );
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(2500).to_string(), "2.500s");
    }
}
