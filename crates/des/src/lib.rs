//! # e2c-des — discrete-event simulation engine
//!
//! A small, deterministic discrete-event simulation (DES) kernel used as the
//! execution substrate for the testbed and application models in this
//! workspace. It provides:
//!
//! * [`SimTime`] — integer microsecond simulation time (total order, no
//!   floating-point drift);
//! * [`EventQueue`] — a cancellable priority queue of timestamped events with
//!   deterministic FIFO tie-breaking;
//! * [`Simulation`] — the event loop driving a user [`Model`];
//! * resources — [`resources::Tokens`] (counting semaphore with FIFO waiters,
//!   e.g. a thread pool) and [`resources::ProcShare`] (processor-sharing
//!   server, e.g. a multi-core CPU or a GPU with concurrency-dependent
//!   efficiency), both with built-in time-weighted utilization accounting;
//! * [`dist`] — seeded random distributions (deterministic runs from a seed).
//!
//! The kernel is intentionally synchronous and single-threaded: parallelism
//! in this workspace happens *across* simulations (parallel optimization
//! trials), not within one, which keeps every experiment bit-reproducible.
//!
//! ## Quick example
//!
//! ```
//! use e2c_des::{Model, Context, Simulation, SimTime};
//!
//! struct Ping { count: u32 }
//! impl Model for Ping {
//!     type Event = ();
//!     fn handle(&mut self, ctx: &mut Context<'_, ()>, _ev: ()) {
//!         self.count += 1;
//!         if self.count < 10 {
//!             ctx.schedule_in(SimTime::from_secs(1), ());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Ping { count: 0 }, 42);
//! sim.schedule(SimTime::ZERO, ());
//! sim.run();
//! assert_eq!(sim.model().count, 10);
//! assert_eq!(sim.now(), SimTime::from_secs(9));
//! ```

pub mod dist;
pub mod queue;
pub mod resources;
pub mod sim;
pub mod time;

pub use dist::Dist;
pub use queue::{EventHandle, EventQueue};
pub use sim::{Context, Model, Simulation};
pub use time::SimTime;
