//! Reusable resource primitives for queueing models.
//!
//! * [`Tokens`] — a counting semaphore with FIFO waiters. Models a thread
//!   pool: `try_acquire` either grants a thread or queues the requester, and
//!   `release` hands the freed thread to the next waiter.
//! * [`ProcShare`] — a shared server where all active jobs progress
//!   concurrently. Two disciplines are provided:
//!   [`Discipline::ProcessorSharing`] (a multi-core CPU: jobs run at full
//!   speed until the summed core demand exceeds capacity, then everybody
//!   slows down uniformly) and [`Discipline::Saturating`] (a GPU: adding
//!   concurrency increases throughput sub-linearly; an individual inference
//!   never gets *faster* with more concurrency).
//!
//! Both resources integrate time-weighted statistics so monitors can sample
//! utilization over windows without instrumenting every state change.

use crate::time::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// Opaque identifier chosen by the caller (e.g. a request id).
pub type JobId = u64;

/// Counting semaphore with FIFO waiters and busy-time accounting.
#[derive(Debug, Clone)]
pub struct Tokens {
    capacity: usize,
    busy: usize,
    waiters: VecDeque<JobId>,
    last_update: SimTime,
    /// Integral of `busy` over time, in thread-seconds.
    busy_integral: f64,
    /// Integral of queue length over time, in waiter-seconds.
    queue_integral: f64,
}

impl Tokens {
    /// A pool with `capacity` tokens, all free.
    pub fn new(capacity: usize) -> Self {
        Tokens {
            capacity,
            busy: 0,
            waiters: VecDeque::new(),
            last_update: SimTime::ZERO,
            busy_integral: 0.0,
            queue_integral: 0.0,
        }
    }

    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "time went backwards");
        let dt = (now - self.last_update).as_secs_f64();
        self.busy_integral += self.busy as f64 * dt;
        self.queue_integral += self.waiters.len() as f64 * dt;
        self.last_update = now;
    }

    /// Try to take a token for `id`. Returns `true` if granted immediately;
    /// otherwise `id` joins the FIFO queue and will be returned by a future
    /// [`Tokens::release`].
    pub fn try_acquire(&mut self, now: SimTime, id: JobId) -> bool {
        self.advance(now);
        if self.busy < self.capacity {
            self.busy += 1;
            true
        } else {
            self.waiters.push_back(id);
            false
        }
    }

    /// Release one token. If somebody is waiting, the token transfers
    /// directly to the head waiter, whose id is returned (the pool stays
    /// just as busy). Otherwise the token becomes free.
    pub fn release(&mut self, now: SimTime) -> Option<JobId> {
        self.advance(now);
        assert!(self.busy > 0, "release on an idle pool");
        if let Some(next) = self.waiters.pop_front() {
            Some(next)
        } else {
            self.busy -= 1;
            None
        }
    }

    /// Remove `id` from the wait queue (e.g. the requester timed out or was
    /// cancelled). Returns `true` if it was queued.
    pub fn cancel_wait(&mut self, now: SimTime, id: JobId) -> bool {
        self.advance(now);
        if let Some(pos) = self.waiters.iter().position(|&w| w == id) {
            self.waiters.remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of tokens currently held.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Pool size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued waiters.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    /// Cumulative busy thread-seconds up to `now`.
    pub fn busy_integral(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        self.busy_integral
    }

    /// Cumulative waiter-seconds up to `now`.
    pub fn queue_integral(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        self.queue_integral
    }

    /// Mean fraction of the pool in use since time zero.
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        if self.capacity == 0 || now == SimTime::ZERO {
            return 0.0;
        }
        self.busy_integral(now) / (self.capacity as f64 * now.as_secs_f64())
    }
}

/// How a [`ProcShare`] divides progress among its active jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Discipline {
    /// A pool of `capacity` cores. Each job asks for `weight` cores. While
    /// the total demand fits, every job progresses at full speed; when
    /// oversubscribed, [`JobClass::Reserved`] jobs are served first (they
    /// model latency-critical runtime threads that always win the
    /// scheduler, e.g. the GPU-feeding threads of an inference server) and
    /// [`JobClass::Normal`] jobs share whatever capacity remains.
    ProcessorSharing { capacity: f64 },
    /// Concurrency-dependent efficiency typical of GPU inference: with `n`
    /// concurrent jobs each progresses at
    /// `min(1 / (1 + alpha·(n−1)), cap / n)` — aggregate throughput
    /// `n / (1 + alpha (n−1))` grows sub-linearly and is hard-limited at
    /// `cap` job-equivalents (kernel-parallelism ceiling of the device).
    Saturating {
        /// Per-extra-job efficiency loss (per device).
        alpha: f64,
        /// Maximum effective parallelism in job units per device
        /// (`f64::INFINITY` disables the ceiling).
        cap: f64,
        /// Number of identical devices the jobs round-robin over: with
        /// `d` devices, `n` concurrent jobs behave like `ceil(n/d)` jobs
        /// per device and the ceiling scales to `d·cap`.
        devices: u32,
    },
}

/// Scheduling class of a [`ProcShare`] job (only meaningful under
/// [`Discipline::ProcessorSharing`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobClass {
    /// Shares the capacity left over by reserved jobs.
    Normal,
    /// Always served at full rate while reserved demand fits the capacity.
    Reserved,
}

/// Progress floor preventing a starved Normal job from never completing
/// (its completion would otherwise schedule at `SimTime::MAX`).
const MIN_RATE: f64 = 1e-9;

impl Discipline {
    /// Per-unit-weight progress rate for a class, given the current
    /// population split.
    fn rate(
        &self,
        class: JobClass,
        reserved_weight: f64,
        normal_weight: f64,
        n_jobs: usize,
    ) -> f64 {
        match *self {
            Discipline::ProcessorSharing { capacity } => match class {
                JobClass::Reserved => {
                    if reserved_weight <= capacity || reserved_weight == 0.0 {
                        1.0
                    } else {
                        capacity / reserved_weight
                    }
                }
                JobClass::Normal => {
                    let left = (capacity - reserved_weight.min(capacity)).max(0.0);
                    if normal_weight <= left || normal_weight == 0.0 {
                        1.0
                    } else {
                        (left / normal_weight).max(MIN_RATE)
                    }
                }
            },
            Discipline::Saturating {
                alpha,
                cap,
                devices,
            } => {
                if n_jobs == 0 {
                    1.0
                } else {
                    let d = devices.max(1) as f64;
                    let per_device = (n_jobs as f64 / d).ceil();
                    let eff = 1.0 / (1.0 + alpha * (per_device - 1.0));
                    eff.min(d * cap / n_jobs as f64).max(MIN_RATE)
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Job {
    /// Seconds of work left at full speed.
    remaining: f64,
    /// Cores-equivalent demand (1.0 = one core).
    weight: f64,
    /// Scheduling class.
    class: JobClass,
}

/// A shared server processing all active jobs concurrently.
///
/// The owning model is responsible for scheduling the completion event: call
/// [`ProcShare::next_completion`] after every membership change, cancel the
/// previously scheduled completion, and schedule the new one.
#[derive(Debug, Clone)]
pub struct ProcShare {
    discipline: Discipline,
    /// Active jobs. Ordered map: `advance()` iterates the values and
    /// `next_completion` scans for the minimum, so enumeration order must
    /// not depend on hash state (detlint DET001/DET005).
    jobs: BTreeMap<JobId, Job>,
    total_weight: f64,
    reserved_weight: f64,
    last_update: SimTime,
    /// Integral of ∑weight over time (demand-seconds).
    demand_integral: f64,
    /// Integral of time with ≥1 active job (busy seconds).
    busy_integral: f64,
    completed: u64,
}

impl ProcShare {
    /// New empty server with the given sharing discipline.
    pub fn new(discipline: Discipline) -> Self {
        ProcShare {
            discipline,
            jobs: BTreeMap::new(),
            total_weight: 0.0,
            reserved_weight: 0.0,
            last_update: SimTime::ZERO,
            demand_integral: 0.0,
            busy_integral: 0.0,
            completed: 0,
        }
    }

    /// Convenience: a processor-sharing server with `cores` capacity.
    pub fn cores(cores: f64) -> Self {
        ProcShare::new(Discipline::ProcessorSharing { capacity: cores })
    }

    fn rate_of(&self, class: JobClass) -> f64 {
        self.discipline.rate(
            class,
            self.reserved_weight,
            self.total_weight - self.reserved_weight,
            self.jobs.len(),
        )
    }

    /// Progress all jobs to `now`.
    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "time went backwards");
        let dt = (now - self.last_update).as_secs_f64();
        if dt > 0.0 {
            if !self.jobs.is_empty() {
                let r_normal = self.rate_of(JobClass::Normal);
                let r_reserved = self.rate_of(JobClass::Reserved);
                for job in self.jobs.values_mut() {
                    let rate = match job.class {
                        JobClass::Normal => r_normal,
                        JobClass::Reserved => r_reserved,
                    };
                    job.remaining = (job.remaining - rate * dt).max(0.0);
                }
                self.busy_integral += dt;
            }
            self.demand_integral += self.total_weight * dt;
        }
        self.last_update = now;
    }

    /// Begin a [`JobClass::Normal`] job with `demand` seconds of full-speed
    /// work and the given core weight. Panics if `id` is already active.
    pub fn start(&mut self, now: SimTime, id: JobId, demand: f64, weight: f64) {
        self.start_class(now, id, demand, weight, JobClass::Normal);
    }

    /// Begin a [`JobClass::Reserved`] job: it always progresses at full
    /// speed (as long as reserved demand fits the capacity), squeezing
    /// Normal jobs.
    pub fn start_reserved(&mut self, now: SimTime, id: JobId, demand: f64, weight: f64) {
        self.start_class(now, id, demand, weight, JobClass::Reserved);
    }

    fn start_class(&mut self, now: SimTime, id: JobId, demand: f64, weight: f64, class: JobClass) {
        self.advance(now);
        assert!(demand >= 0.0 && weight > 0.0, "bad job parameters");
        let prev = self.jobs.insert(
            id,
            Job {
                remaining: demand,
                weight,
                class,
            },
        );
        assert!(prev.is_none(), "job {id} already running");
        self.total_weight += weight;
        if class == JobClass::Reserved {
            self.reserved_weight += weight;
        }
    }

    /// Remove a job (normally on its completion event). Returns `true` if
    /// the job existed.
    pub fn remove(&mut self, now: SimTime, id: JobId) -> bool {
        self.advance(now);
        if let Some(job) = self.jobs.remove(&id) {
            self.total_weight -= job.weight;
            if job.class == JobClass::Reserved {
                self.reserved_weight -= job.weight;
                if self.reserved_weight < 1e-12 {
                    self.reserved_weight = 0.0;
                }
            }
            if self.total_weight < 1e-12 {
                self.total_weight = 0.0;
            }
            self.completed += 1;
            true
        } else {
            false
        }
    }

    /// The earliest `(time, id)` at which some job finishes, given the
    /// current population, or `None` when idle. Ties break on the smaller
    /// id for determinism. The returned time is rounded up to the next
    /// microsecond so the work is fully done when the event fires.
    pub fn next_completion(&mut self, now: SimTime) -> Option<(SimTime, JobId)> {
        self.advance(now);
        if self.jobs.is_empty() {
            return None;
        }
        let r_normal = self.rate_of(JobClass::Normal);
        let r_reserved = self.rate_of(JobClass::Reserved);
        let mut best: Option<(f64, JobId)> = None;
        for (&id, job) in &self.jobs {
            let rate = match job.class {
                JobClass::Normal => r_normal,
                JobClass::Reserved => r_reserved,
            };
            let finish = job.remaining / rate;
            match best {
                None => best = Some((finish, id)),
                Some((bf, bid)) => {
                    if finish < bf || (finish == bf && id < bid) {
                        best = Some((finish, id));
                    }
                }
            }
        }
        let (finish, id) = best.expect("non-empty job set");
        // Guard against the starved-job horizon overflowing SimTime.
        let delta_us = (finish * 1e6).ceil().min(u64::MAX as f64 / 4.0) as u64;
        let at = SimTime(now.0.saturating_add(delta_us));
        Some((at, id))
    }

    /// Currently reserved (priority) weight.
    pub fn reserved_demand(&self) -> f64 {
        self.reserved_weight
    }

    /// Number of active jobs.
    pub fn active(&self) -> usize {
        self.jobs.len()
    }

    /// Current total weight (cores-equivalents demanded).
    pub fn demand(&self) -> f64 {
        self.total_weight
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Cumulative demand-seconds (∑weight · dt) up to `now`.
    pub fn demand_integral(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        self.demand_integral
    }

    /// Cumulative seconds with at least one active job, up to `now`.
    pub fn busy_integral(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        self.busy_integral
    }

    /// Instantaneous utilization of a processor-sharing server: demanded
    /// cores over capacity, clamped to 1. For [`Discipline::Saturating`]
    /// this returns the saturation level `n·rate / (1/alpha)`—close to 1
    /// when concurrency no longer buys throughput.
    pub fn utilization_now(&self) -> f64 {
        match self.discipline {
            Discipline::ProcessorSharing { capacity } => (self.total_weight / capacity).min(1.0),
            Discipline::Saturating {
                alpha,
                cap,
                devices,
            } => {
                if self.jobs.is_empty() {
                    0.0
                } else {
                    let d = devices.max(1) as f64;
                    let n = self.jobs.len() as f64;
                    let per_device = (n / d).ceil();
                    let throughput = (n / (1.0 + alpha * (per_device - 1.0))).min(d * cap);
                    let ceiling = if cap.is_finite() { d * cap } else { d / alpha };
                    (throughput / ceiling).min(1.0)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    // ---- Tokens ----

    #[test]
    fn tokens_grant_until_full_then_queue_fifo() {
        let mut p = Tokens::new(2);
        assert!(p.try_acquire(t(0.0), 1));
        assert!(p.try_acquire(t(0.0), 2));
        assert!(!p.try_acquire(t(0.0), 3));
        assert!(!p.try_acquire(t(0.0), 4));
        assert_eq!(p.busy(), 2);
        assert_eq!(p.queue_len(), 2);
        assert_eq!(p.release(t(1.0)), Some(3));
        assert_eq!(p.release(t(2.0)), Some(4));
        assert_eq!(p.release(t(3.0)), None);
        assert_eq!(p.busy(), 1);
    }

    #[test]
    fn tokens_busy_integral() {
        let mut p = Tokens::new(4);
        p.try_acquire(t(0.0), 1);
        p.try_acquire(t(0.0), 2);
        // 2 busy threads for 5 seconds = 10 thread-seconds.
        assert!((p.busy_integral(t(5.0)) - 10.0).abs() < 1e-9);
        // utilization = 10 / (4 * 5) = 0.5
        assert!((p.utilization(t(5.0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tokens_queue_integral() {
        let mut p = Tokens::new(1);
        p.try_acquire(t(0.0), 1);
        p.try_acquire(t(0.0), 2); // queued
        let q = p.queue_integral(t(4.0));
        assert!((q - 4.0).abs() < 1e-9);
    }

    #[test]
    fn tokens_cancel_wait() {
        let mut p = Tokens::new(1);
        p.try_acquire(t(0.0), 1);
        p.try_acquire(t(0.0), 2);
        p.try_acquire(t(0.0), 3);
        assert!(p.cancel_wait(t(1.0), 2));
        assert!(!p.cancel_wait(t(1.0), 2));
        assert_eq!(p.release(t(2.0)), Some(3));
    }

    #[test]
    #[should_panic(expected = "release on an idle pool")]
    fn tokens_release_idle_panics() {
        let mut p = Tokens::new(1);
        p.release(t(0.0));
    }

    // ---- ProcShare: processor sharing ----

    #[test]
    fn ps_single_job_runs_at_full_speed() {
        let mut ps = ProcShare::cores(4.0);
        ps.start(t(0.0), 1, 2.0, 1.0);
        let (at, id) = ps.next_completion(t(0.0)).unwrap();
        assert_eq!(id, 1);
        assert_eq!(at, t(2.0));
    }

    #[test]
    fn ps_undersubscribed_jobs_do_not_interfere() {
        let mut ps = ProcShare::cores(4.0);
        ps.start(t(0.0), 1, 2.0, 1.0);
        ps.start(t(0.0), 2, 3.0, 1.0);
        let (at, id) = ps.next_completion(t(0.0)).unwrap();
        assert_eq!((at, id), (t(2.0), 1));
        ps.remove(t(2.0), 1);
        let (at, id) = ps.next_completion(t(2.0)).unwrap();
        assert_eq!((at, id), (t(3.0), 2));
    }

    #[test]
    fn ps_oversubscription_slows_everyone() {
        // 1 core, two jobs of 1s each => processor sharing finishes both at 2s.
        let mut ps = ProcShare::cores(1.0);
        ps.start(t(0.0), 1, 1.0, 1.0);
        ps.start(t(0.0), 2, 1.0, 1.0);
        let (at, id) = ps.next_completion(t(0.0)).unwrap();
        assert_eq!(id, 1); // tie breaks to smaller id
        assert_eq!(at, t(2.0));
        ps.remove(t(2.0), 1);
        // Job 2 also has zero remaining at t=2.
        let (at2, id2) = ps.next_completion(t(2.0)).unwrap();
        assert_eq!((at2, id2), (t(2.0), 2));
    }

    #[test]
    fn ps_rate_changes_mid_flight() {
        // 1 core. Job A (2s) alone for 1s (does 1s of work), then job B
        // arrives: both at rate 0.5. A needs 2 more wall seconds.
        let mut ps = ProcShare::cores(1.0);
        ps.start(t(0.0), 1, 2.0, 1.0);
        ps.start(t(1.0), 2, 1.0, 1.0);
        let (at, id) = ps.next_completion(t(1.0)).unwrap();
        assert_eq!(id, 1);
        assert_eq!(at, t(3.0));
        ps.remove(t(3.0), 1);
        // B did 1s of its work at rate .5 over [1,3]; 0 remaining? B had 1s
        // demand, progressed 2s * 0.5 = 1s. Done at t=3 as well.
        let (at2, id2) = ps.next_completion(t(3.0)).unwrap();
        assert_eq!((at2, id2), (t(3.0), 2));
    }

    #[test]
    fn ps_weights_count_as_cores() {
        // 4 cores, one job weighing 8 => rate 0.5, 1s of work takes 2s.
        let mut ps = ProcShare::cores(4.0);
        ps.start(t(0.0), 1, 1.0, 8.0);
        let (at, _) = ps.next_completion(t(0.0)).unwrap();
        assert_eq!(at, t(2.0));
        assert!((ps.utilization_now() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ps_demand_integral_accumulates() {
        let mut ps = ProcShare::cores(10.0);
        ps.start(t(0.0), 1, 100.0, 2.0);
        ps.start(t(0.0), 2, 100.0, 3.0);
        assert!((ps.demand_integral(t(4.0)) - 20.0).abs() < 1e-9);
        assert!((ps.busy_integral(t(4.0)) - 4.0).abs() < 1e-9);
        assert!((ps.utilization_now() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ps_remove_unknown_returns_false() {
        let mut ps = ProcShare::cores(1.0);
        assert!(!ps.remove(t(0.0), 99));
    }

    #[test]
    #[should_panic(expected = "already running")]
    fn ps_duplicate_start_panics() {
        let mut ps = ProcShare::cores(1.0);
        ps.start(t(0.0), 1, 1.0, 1.0);
        ps.start(t(0.0), 1, 1.0, 1.0);
    }

    // ---- ProcShare: saturating (GPU) ----

    #[test]
    fn saturating_single_job_full_speed() {
        let mut gpu = ProcShare::new(Discipline::Saturating {
            alpha: 0.3,
            cap: f64::INFINITY,
            devices: 1,
        });
        gpu.start(t(0.0), 1, 0.5, 1.0);
        let (at, _) = gpu.next_completion(t(0.0)).unwrap();
        assert_eq!(at, t(0.5));
    }

    #[test]
    fn saturating_concurrency_slows_individuals_but_raises_throughput() {
        let alpha = 0.5;
        // n jobs of 1s each, started together: each runs at 1/(1+alpha(n-1)).
        for n in 2..6u64 {
            let mut gpu = ProcShare::new(Discipline::Saturating {
                alpha,
                cap: f64::INFINITY,
                devices: 1,
            });
            for id in 0..n {
                gpu.start(t(0.0), id, 1.0, 1.0);
            }
            let (at, _) = gpu.next_completion(t(0.0)).unwrap();
            let expect = 1.0 + alpha * (n as f64 - 1.0);
            assert!(
                (at.as_secs_f64() - expect).abs() < 1e-5,
                "n={n}: {at} vs {expect}"
            );
            // Throughput n/expect must increase with n (sub-linear growth).
            if n > 2 {
                let prev = (n - 1) as f64 / (1.0 + alpha * (n as f64 - 2.0));
                assert!(n as f64 / expect > prev);
            }
        }
    }

    #[test]
    fn saturating_devices_split_the_population() {
        // 4 jobs on 2 devices behave like 2 jobs per device: each runs at
        // 1/(1+alpha) instead of 1/(1+3 alpha).
        let alpha = 0.5;
        let mut one = ProcShare::new(Discipline::Saturating {
            alpha,
            cap: f64::INFINITY,
            devices: 1,
        });
        let mut two = ProcShare::new(Discipline::Saturating {
            alpha,
            cap: f64::INFINITY,
            devices: 2,
        });
        for id in 0..4 {
            one.start(t(0.0), id, 1.0, 1.0);
            two.start(t(0.0), id, 1.0, 1.0);
        }
        let (at1, _) = one.next_completion(t(0.0)).unwrap();
        let (at2, _) = two.next_completion(t(0.0)).unwrap();
        assert!((at1.as_secs_f64() - 2.5).abs() < 1e-5, "{at1}");
        assert!((at2.as_secs_f64() - 1.5).abs() < 1e-5, "{at2}");
        // The per-device cap scales with devices.
        let mut capped = ProcShare::new(Discipline::Saturating {
            alpha: 0.0,
            cap: 1.0,
            devices: 2,
        });
        for id in 0..4 {
            capped.start(t(0.0), id, 1.0, 1.0);
        }
        // 4 jobs on total cap 2: each at rate 0.5 -> done at 2s.
        let (at, _) = capped.next_completion(t(0.0)).unwrap();
        assert!((at.as_secs_f64() - 2.0).abs() < 1e-5, "{at}");
    }

    #[test]
    fn completion_time_rounds_up() {
        let mut ps = ProcShare::cores(1.0);
        // 1/3 second of work does not divide evenly into microseconds.
        ps.start(t(0.0), 1, 1.0 / 3.0, 1.0);
        let (at, _) = ps.next_completion(t(0.0)).unwrap();
        assert!(at.as_micros() >= 333_333);
        assert!(at.as_micros() <= 333_334);
    }
}
