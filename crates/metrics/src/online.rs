//! Single-pass, numerically stable moment accumulation (Welford's method).

/// Running count/mean/variance/min/max over a stream of observations.
///
/// Uses Welford's algorithm, so the variance stays accurate even when the
/// mean is large relative to the spread (e.g. response times in
/// microseconds). Two accumulators can be [merged](OnlineStats::merge),
/// which is how per-repetition statistics combine into the 966-sample
/// aggregates the paper reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Fold another accumulator into this one (Chan et al. parallel merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std() / (self.count as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_two_pass_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // two-pass variance: sum((x-5)^2) = 32; unbiased: 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.sem(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0, 30.0, 40.0];
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut whole = OnlineStats::new();
        for &x in &a_data {
            a.push(x);
            whole.push(x);
        }
        for &x in &b_data {
            b.push(x);
            whole.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        a.push(7.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn stable_with_large_offsets() {
        // Welford must not lose the variance when mean >> std.
        let mut s = OnlineStats::new();
        for i in 0..1000 {
            s.push(1e9 + (i % 2) as f64);
        }
        assert!((s.variance() - 0.25025).abs() < 1e-3, "{}", s.variance());
    }
}
