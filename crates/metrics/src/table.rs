//! Aligned text tables for experiment reports.
//!
//! The benchmark harness prints the paper's tables and figure series as
//! monospace tables; this keeps that rendering logic in one place (and out
//! of a dozen `println!` pyramids in the bins).

use std::fmt;
use std::io::{self, Write};

/// A simple column-aligned table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }

    /// Render to any writer.
    pub fn write<W: Write>(&self, mut w: W) -> io::Result<()> {
        write!(w, "{self}")
    }

    /// Render as CSV (no alignment, comma-separated, minimal quoting).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .zip(&widths)
                .map(|(cell, w)| format!(" {cell:w$} "))
                .collect::<Vec<_>>()
                .join("|")
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        writeln!(f, "{sep}")?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Format a float with the given number of decimals — a convenience for
/// table cells.
pub fn fnum(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["pool", "size"]);
        t.row(["HTTP", "40"]);
        t.row(["Download", "40"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], " pool     | size ");
        assert_eq!(lines[2], " HTTP     | 40   ");
        assert_eq!(lines[3], " Download | 40   ");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(["name", "note"]);
        t.row(["a", "plain"]);
        t.row(["b", "has,comma"]);
        t.row(["c", "has\"quote"]);
        let csv = t.to_csv();
        assert_eq!(
            csv,
            "name,note\na,plain\nb,\"has,comma\"\nc,\"has\"\"quote\"\n"
        );
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(2.65678, 3), "2.657");
        assert_eq!(fnum(2.0, 0), "2");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
    }
}
