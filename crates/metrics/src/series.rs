//! Sampled time series.

use crate::summary::Summary;

/// A `(time, value)` series sampled at (typically) fixed intervals, e.g. the
/// 10-second monitoring windows of the paper's experiments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample. Times must be non-decreasing.
    pub fn push(&mut self, t: f64, v: f64) {
        if let Some(&last) = self.times.last() {
            assert!(t >= last, "time series must be appended in order");
        }
        self.times.push(t);
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sample timestamps.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterate `(t, v)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Summary statistics over all values.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.values)
    }

    /// Summary over samples with `t >= from` (e.g. skipping warm-up).
    pub fn summary_from(&self, from: f64) -> Summary {
        let vals: Vec<f64> = self
            .iter()
            .filter(|&(t, _)| t >= from)
            .map(|(_, v)| v)
            .collect();
        Summary::of(&vals)
    }

    /// Last value, if any.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }
}

/// Emits sampling ticks at a fixed interval; the monitoring manager asks it
/// when the next sample is due.
#[derive(Debug, Clone, Copy)]
pub struct Sampler {
    interval: f64,
    next: f64,
}

impl Sampler {
    /// A sampler firing at `interval` seconds, first at `interval` (not 0,
    /// matching monitors that report *completed* windows).
    pub fn new(interval: f64) -> Self {
        assert!(interval > 0.0, "interval must be positive");
        Sampler {
            interval,
            next: interval,
        }
    }

    /// Time of the next due sample.
    pub fn next_at(&self) -> f64 {
        self.next
    }

    /// Advance past the sample at `self.next_at()`.
    pub fn advance(&mut self) {
        self.next += self.interval;
    }

    /// The sampling interval.
    pub fn interval(&self) -> f64 {
        self.interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_summarize() {
        let mut ts = TimeSeries::new();
        ts.push(10.0, 1.0);
        ts.push(20.0, 2.0);
        ts.push(30.0, 3.0);
        assert_eq!(ts.len(), 3);
        assert!((ts.summary().mean - 2.0).abs() < 1e-12);
        assert_eq!(ts.last(), Some(3.0));
    }

    #[test]
    fn summary_from_skips_warmup() {
        let mut ts = TimeSeries::new();
        ts.push(0.0, 100.0); // warm-up artifact
        ts.push(10.0, 2.0);
        ts.push(20.0, 4.0);
        let s = ts.summary_from(10.0);
        assert_eq!(s.n, 2);
        assert!((s.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "appended in order")]
    fn out_of_order_push_panics() {
        let mut ts = TimeSeries::new();
        ts.push(5.0, 1.0);
        ts.push(4.0, 1.0);
    }

    #[test]
    fn sampler_ticks_at_interval() {
        let mut s = Sampler::new(10.0);
        assert_eq!(s.next_at(), 10.0);
        s.advance();
        assert_eq!(s.next_at(), 20.0);
        s.advance();
        assert_eq!(s.next_at(), 30.0);
        assert_eq!(s.interval(), 10.0);
    }

    #[test]
    fn paper_sampling_yields_138_windows() {
        // 23 minutes at 10 s intervals = 138 samples (the paper's count).
        let mut s = Sampler::new(10.0);
        let mut n = 0;
        while s.next_at() <= 1380.0 {
            n += 1;
            s.advance();
        }
        assert_eq!(n, 138);
    }

    #[test]
    fn iter_pairs() {
        let mut ts = TimeSeries::new();
        ts.push(1.0, 10.0);
        ts.push(2.0, 20.0);
        let pairs: Vec<_> = ts.iter().collect();
        assert_eq!(pairs, vec![(1.0, 10.0), (2.0, 20.0)]);
    }
}
