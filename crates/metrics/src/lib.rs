//! # e2c-metrics — monitoring and statistics substrate
//!
//! The paper's experiments sample metric values every 10 seconds over
//! 23-minute runs and report mean ± standard deviation across repetitions
//! (966 measurements per configuration). This crate provides the pieces the
//! monitoring manager needs:
//!
//! * [`OnlineStats`] — numerically stable single-pass mean/variance
//!   (Welford), mergeable across repetitions;
//! * [`TimeSeries`] — a sampled `(t, value)` series with summary helpers;
//! * [`Summary`] — mean, std, min/max, confidence interval of a sample;
//! * [`Histogram`] — fixed-bin histograms with mergeable approximate
//!   quantiles (for tail-latency monitoring);
//! * [`Registry`] — a named collection of series, CSV-exportable;
//! * [`table::Table`] — aligned text tables used by the experiment harness
//!   to print the paper's tables and figure series.

pub mod histogram;
pub mod online;
pub mod registry;
pub mod series;
pub mod summary;
pub mod table;

pub use histogram::Histogram;
pub use online::OnlineStats;
pub use registry::Registry;
pub use series::TimeSeries;
pub use summary::Summary;
pub use table::Table;
