//! Sample summaries: mean ± std, extrema, confidence intervals, percentiles.

use crate::online::OnlineStats;
use std::fmt;

/// Descriptive statistics of a finished sample, as reported in the paper's
/// tables (e.g. `2.657 (±0.0914)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub std: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarize a slice of observations. Empty slices yield a zeroed
    /// summary with `n == 0`.
    pub fn of(data: &[f64]) -> Summary {
        let mut s = OnlineStats::new();
        for &x in data {
            s.push(x);
        }
        Summary::from(&s)
    }

    /// Half-width of the ~95% normal-approximation confidence interval for
    /// the mean (`1.96 · std / sqrt(n)`).
    pub fn ci95(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            1.96 * self.std / (self.n as f64).sqrt()
        }
    }

    /// Relative difference of this mean versus a reference mean, in percent.
    /// Positive means this summary is *larger* than the reference.
    pub fn pct_vs(&self, reference: &Summary) -> f64 {
        if reference.mean == 0.0 {
            return 0.0;
        }
        (self.mean - reference.mean) / reference.mean * 100.0
    }
}

impl From<&OnlineStats> for Summary {
    fn from(s: &OnlineStats) -> Summary {
        Summary {
            n: s.count(),
            mean: s.mean(),
            std: s.std(),
            min: if s.count() == 0 { 0.0 } else { s.min() },
            max: if s.count() == 0 { 0.0 } else { s.max() },
        }
    }
}

impl fmt::Display for Summary {
    /// Formats like the paper's tables: `2.657 (±0.0914)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} (±{:.4})", self.mean, self.std)
    }
}

/// Linear-interpolated percentile of a sample (`q` in `[0, 1]`).
///
/// Sorts a copy; fine for the monitoring windows used here (≤ thousands of
/// points). Returns `None` on an empty slice.
pub fn percentile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "percentile out of range: {q}");
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_slice() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn empty_slice() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn display_matches_paper_style() {
        let s = Summary {
            n: 966,
            mean: 2.657,
            std: 0.0914,
            min: 2.4,
            max: 2.9,
        };
        assert_eq!(s.to_string(), "2.657 (±0.0914)");
    }

    #[test]
    fn pct_vs_reference() {
        let base = Summary::of(&[2.0, 2.0]);
        let opt = Summary::of(&[1.8, 1.8]);
        assert!((opt.pct_vs(&base) + 10.0).abs() < 1e-9);
    }

    #[test]
    fn ci95_shrinks_with_n() {
        let small = Summary {
            n: 10,
            mean: 0.0,
            std: 1.0,
            min: 0.0,
            max: 0.0,
        };
        let large = Summary { n: 1000, ..small };
        assert!(large.ci95() < small.ci95());
    }

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 1.0), Some(4.0));
        assert_eq!(percentile(&data, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_bad_q() {
        percentile(&[1.0], 1.5);
    }
}
