//! Fixed-bin histograms with approximate quantiles.
//!
//! Storing every observation works for one experiment; monitoring stacks
//! keep histograms instead. This one uses uniform bins over a configured
//! range with overflow/underflow buckets, supports merging (repetitions)
//! and linear-interpolated quantiles — accuracy bounded by the bin width.

/// Uniform-bin histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    nonfinite: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Histogram over `[lo, hi)` with `bins` uniform buckets.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "empty range");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            nonfinite: 0,
            count: 0,
            sum: 0.0,
        }
    }

    fn width(&self) -> f64 {
        (self.hi - self.lo) / self.bins.len() as f64
    }

    /// Record one observation.  Non-finite values (NaN, ±inf — e.g. the
    /// poisoned metrics a Crash `ServiceFault` produces) are tallied in a
    /// separate `nonfinite` bucket and excluded from `count`, `sum` and
    /// quantiles rather than aborting the run.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            self.nonfinite += 1;
            return;
        }
        self.count += 1;
        self.sum += x;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = (((x - self.lo) / self.width()) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total finite observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Non-finite observations (NaN/±inf), kept out of every statistic.
    pub fn nonfinite(&self) -> u64 {
        self.nonfinite
    }

    /// Mean of all observations (exact, kept outside the bins).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Observations outside the range, `(underflow, overflow)`.
    pub fn outliers(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Approximate `q`-quantile (`q` in `[0,1]`), linear within the bin.
    /// Underflow clamps to `lo`, overflow to `hi`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return None;
        }
        let target = q * self.count as f64;
        let mut seen = self.underflow as f64;
        // Clamp to `lo` only when underflow observations actually exist;
        // with underflow == 0, `0.0 <= 0.0` used to misreport the minimum
        // of mid-range data as the range floor.
        if self.underflow > 0 && target <= seen {
            return Some(self.lo);
        }
        for (i, &n) in self.bins.iter().enumerate() {
            let next = seen + n as f64;
            if target <= next && n > 0 {
                let frac = (target - seen) / n as f64;
                return Some(self.lo + (i as f64 + frac) * self.width());
            }
            seen = next;
        }
        Some(self.hi)
    }

    /// Merge another histogram with identical binning.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "histogram shapes differ"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.nonfinite += other.nonfinite;
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.7, 9.9, -1.0, 12.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.outliers(), (1, 1));
        assert!((h.mean() - (0.5 + 1.5 + 1.7 + 9.9 - 1.0 + 12.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_approximate_uniform_data() {
        let mut h = Histogram::new(0.0, 1.0, 100);
        for i in 0..10_000 {
            h.record(i as f64 / 10_000.0);
        }
        for q in [0.1, 0.5, 0.9, 0.99] {
            let est = h.quantile(q).unwrap();
            assert!((est - q).abs() < 0.02, "q{q}: {est}");
        }
    }

    #[test]
    fn quantiles_clamp_at_range_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(5.0);
        assert_eq!(h.quantile(0.25).unwrap(), 0.0);
        assert_eq!(h.quantile(1.0).unwrap(), 1.0);
        assert_eq!(Histogram::new(0.0, 1.0, 4).quantile(0.5), None);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Histogram::new(0.0, 10.0, 20);
        let mut b = Histogram::new(0.0, 10.0, 20);
        let mut whole = Histogram::new(0.0, 10.0, 20);
        for i in 0..50 {
            let x = i as f64 / 5.0;
            a.record(x);
            whole.record(x);
        }
        for i in 0..30 {
            let x = i as f64 / 3.0;
            b.record(x);
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic(expected = "shapes differ")]
    fn merge_rejects_mismatched_bins() {
        let mut a = Histogram::new(0.0, 10.0, 20);
        let b = Histogram::new(0.0, 10.0, 10);
        a.merge(&b);
    }

    #[test]
    fn nonfinite_observations_are_bucketed_not_fatal() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(0.5);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.count(), 1);
        assert_eq!(h.nonfinite(), 3);
        // Statistics see only the finite observation.
        assert_eq!(h.mean(), 0.5);
        assert!(h.quantile(0.5).unwrap().is_finite());
        assert_eq!(h.outliers(), (0, 0));
    }

    #[test]
    fn merge_propagates_nonfinite() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let mut b = Histogram::new(0.0, 1.0, 4);
        a.record(f64::NAN);
        b.record(f64::NAN);
        b.record(0.25);
        a.merge(&b);
        assert_eq!(a.nonfinite(), 2);
        assert_eq!(a.count(), 1);
        assert!(a.mean().is_finite());
    }

    #[test]
    fn quantile_zero_without_underflow_reports_data_minimum() {
        // Data clustered mid-range: q=0 must not collapse to the range
        // floor when there are no underflow observations.
        let mut h = Histogram::new(0.0, 100.0, 100);
        for x in [40.5, 41.5, 42.5] {
            h.record(x);
        }
        let q0 = h.quantile(0.0).unwrap();
        assert!((40.0..41.0).contains(&q0), "q0 = {q0}");
        let q1 = h.quantile(1.0).unwrap();
        assert!((42.0..=43.0).contains(&q1), "q1 = {q1}");
    }

    #[test]
    fn quantile_edges_with_outliers_still_clamp() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-2.0); // underflow
        h.record(0.5);
        h.record(3.0); // overflow
        assert_eq!(h.quantile(0.0).unwrap(), 0.0);
        assert_eq!(h.quantile(1.0).unwrap(), 1.0);
    }

    #[test]
    fn quantile_edges_ignore_nonfinite_bucket() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(f64::NAN);
        assert_eq!(h.quantile(0.5), None, "only-NaN histogram has no data");
        h.record(0.5);
        assert!(h.quantile(0.0).unwrap().is_finite());
        assert!(h.quantile(1.0).unwrap().is_finite());
    }
}
