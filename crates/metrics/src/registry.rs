//! Named collection of time series with CSV export.

use crate::series::TimeSeries;
use crate::summary::Summary;
use std::collections::BTreeMap;
use std::io::{self, Write};

/// The monitoring manager's storage: one [`TimeSeries`] per metric name.
///
/// Uses a `BTreeMap` so iteration (and thus CSV export and archives) is in
/// deterministic name order — reproducibility extends to the artifacts.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    series: BTreeMap<String, TimeSeries>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a sample for `name` at time `t`.
    pub fn record(&mut self, name: &str, t: f64, value: f64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .push(t, value);
    }

    /// Get a series by name.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Summary of a series (zeroed summary if absent).
    pub fn summary(&self, name: &str) -> Summary {
        self.get(name)
            .map(|s| s.summary())
            .unwrap_or_else(|| Summary::of(&[]))
    }

    /// All metric names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(|s| s.as_str()).collect()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Merge all series of `other` after this registry's samples. Times in
    /// `other` are shifted by `t_offset` (used when concatenating repeated
    /// experiment runs into one archive).
    pub fn append_shifted(&mut self, other: &Registry, t_offset: f64) {
        for (name, series) in &other.series {
            let dst = self.series.entry(name.clone()).or_default();
            for (t, v) in series.iter() {
                dst.push(t + t_offset, v);
            }
        }
    }

    /// Write one metric as a two-column CSV (`time,value`).
    pub fn write_series_csv<W: Write>(&self, name: &str, mut w: W) -> io::Result<()> {
        writeln!(w, "time,{name}")?;
        if let Some(series) = self.get(name) {
            for (t, v) in series.iter() {
                writeln!(w, "{t},{v}")?;
            }
        }
        Ok(())
    }

    /// Write all metrics as a long-format CSV (`metric,time,value`).
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "metric,time,value")?;
        for (name, series) in &self.series {
            for (t, v) in series.iter() {
                writeln!(w, "{name},{t},{v}")?;
            }
        }
        Ok(())
    }

    /// Write a snapshot of every series in the Prometheus text exposition
    /// format (one gauge per series, summary stats as `stat` labels plus a
    /// `_samples` count).  Output is deterministic: series iterate in
    /// `BTreeMap` order and values use Rust's shortest-roundtrip `{}`
    /// formatting, so equal registries produce byte-identical `.prom`
    /// files — which lets `--replay-check` diff them.
    pub fn write_prometheus<W: Write>(&self, mut w: W) -> io::Result<()> {
        for (name, series) in &self.series {
            let metric = prom_sanitize(name);
            let s = series.summary();
            let last = series.values().last().copied().unwrap_or(f64::NAN);
            writeln!(w, "# HELP {metric} snapshot of series `{name}`")?;
            writeln!(w, "# TYPE {metric} gauge")?;
            for (stat, v) in [
                ("last", last),
                ("mean", s.mean),
                ("std", s.std),
                ("min", s.min),
                ("max", s.max),
            ] {
                writeln!(w, "{metric}{{stat=\"{stat}\"}} {v}")?;
            }
            writeln!(w, "{metric}_samples {}", s.n)?;
        }
        Ok(())
    }
}

/// Restrict a metric name to the Prometheus charset `[a-zA-Z0-9_:]`,
/// prefixing a leading digit with `_`.
fn prom_sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_get() {
        let mut r = Registry::new();
        r.record("cpu", 10.0, 0.8);
        r.record("cpu", 20.0, 0.9);
        r.record("gpu_mem", 10.0, 7.0);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("cpu").unwrap().len(), 2);
        assert!((r.summary("cpu").mean - 0.85).abs() < 1e-12);
        assert_eq!(r.summary("absent").n, 0);
    }

    #[test]
    fn names_sorted() {
        let mut r = Registry::new();
        r.record("z", 0.0, 1.0);
        r.record("a", 0.0, 1.0);
        r.record("m", 0.0, 1.0);
        assert_eq!(r.names(), vec!["a", "m", "z"]);
    }

    #[test]
    fn csv_long_format() {
        let mut r = Registry::new();
        r.record("cpu", 10.0, 0.5);
        r.record("cpu", 20.0, 0.75);
        let mut buf = Vec::new();
        r.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "metric,time,value\ncpu,10,0.5\ncpu,20,0.75\n");
    }

    #[test]
    fn csv_single_series() {
        let mut r = Registry::new();
        r.record("resp", 10.0, 2.5);
        let mut buf = Vec::new();
        r.write_series_csv("resp", &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "time,resp\n10,2.5\n");
    }

    #[test]
    fn prometheus_snapshot_is_deterministic_and_labelled() {
        let mut r = Registry::new();
        r.record("user_resp.time", 10.0, 2.0);
        r.record("user_resp.time", 20.0, 4.0);
        r.record("cpu", 10.0, 0.5);
        let render = |r: &Registry| {
            let mut buf = Vec::new();
            r.write_prometheus(&mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        };
        let text = render(&r);
        // Sanitized name, gauge type, stat labels, sample count.
        assert!(text.contains("# TYPE user_resp_time gauge"), "{text}");
        assert!(text.contains("user_resp_time{stat=\"last\"} 4"), "{text}");
        assert!(text.contains("user_resp_time{stat=\"mean\"} 3"), "{text}");
        assert!(text.contains("user_resp_time_samples 2"), "{text}");
        // cpu sorts before user_resp_time (BTreeMap order).
        assert!(text.find("cpu").unwrap() < text.find("user_resp_time").unwrap());
        assert_eq!(text, render(&r.clone()));
    }

    #[test]
    fn append_shifted_concatenates_runs() {
        let mut a = Registry::new();
        a.record("x", 10.0, 1.0);
        let mut b = Registry::new();
        b.record("x", 10.0, 2.0);
        a.append_shifted(&b, 1380.0);
        let s = a.get("x").unwrap();
        assert_eq!(s.times(), &[10.0, 1390.0]);
        assert_eq!(s.values(), &[1.0, 2.0]);
    }
}
