//! Fixture-corpus coverage of the token-level rule families
//! (PANIC001–003, IO001–002, LOCK001, SUP001) plus byte-stability of the
//! machine-readable renderers. Each fixture under `tests/fixtures/` is a
//! plain `.rs` text file — never compiled, and excluded from workspace
//! lint runs by the default `fixtures` skip-dir — with at least one
//! positive and one suppressed case per family.

use detlint::{lint_source, Config, Finding, Report};
use std::path::Path;

/// Lint a fixture under a config that marks the fixture corpus as both
/// crash-safety-critical and artifact-persisting.
fn lint(name: &str, text: &str) -> Vec<Finding> {
    let mut config = Config::default();
    config.critical_paths.push("fixtures/".to_string());
    config.artifact_paths.push("fixtures/".to_string());
    lint_source(&format!("fixtures/{name}"), text, &config)
}

/// `(code, line, justifiably suppressed)` per finding, in report order.
fn shape(findings: &[Finding]) -> Vec<(&'static str, usize, bool)> {
    findings
        .iter()
        .map(|f| (f.rule.code(), f.line, f.suppressed_with_justification()))
        .collect()
}

#[test]
fn panic_family_positives_and_test_region_exemption() {
    let findings = lint(
        "panic_positive.rs",
        include_str!("fixtures/panic_positive.rs"),
    );
    assert_eq!(
        shape(&findings),
        vec![
            ("PANIC001", 6, false),  // .unwrap()
            ("PANIC001", 7, false),  // .expect(...)
            ("PANIC002", 9, false),  // panic!
            ("PANIC003", 11, false), // frames[len / 2]
            ("PANIC003", 12, false), // frames[1..3]
            ("PANIC002", 20, false), // todo!
        ],
        "full-range slices, array literals, `for _ in [..]` and the \
         #[cfg(test)] module must stay clean: {findings:?}"
    );
}

#[test]
fn panic_family_suppressed() {
    let findings = lint(
        "panic_suppressed.rs",
        include_str!("fixtures/panic_suppressed.rs"),
    );
    assert_eq!(
        shape(&findings),
        vec![
            ("PANIC003", 5, true),  // standalone allow above
            ("PANIC003", 6, true),  // trailing allow
            ("PANIC001", 12, true), // standalone allow above
        ],
        "{findings:?}"
    );
}

#[test]
fn io_family_positives() {
    let findings = lint("io_positive.rs", include_str!("fixtures/io_positive.rs"));
    assert_eq!(
        shape(&findings),
        vec![
            ("IO001", 7, false),  // std::fs::write
            ("IO001", 8, false),  // fs::write
            ("IO001", 9, false),  // File::create
            ("IO002", 15, false), // rename without dir fsync
        ],
        "the fsync'd rename in publish_durably must stay clean: {findings:?}"
    );
}

#[test]
fn io_family_suppressed() {
    let findings = lint(
        "io_suppressed.rs",
        include_str!("fixtures/io_suppressed.rs"),
    );
    assert_eq!(shape(&findings), vec![("IO001", 5, true)], "{findings:?}");
}

#[test]
fn lock_family_positives() {
    let findings = lint(
        "lock_positive.rs",
        include_str!("fixtures/lock_positive.rs"),
    );
    assert_eq!(
        shape(&findings),
        vec![
            ("LOCK001", 6, false),  // let-bound guard spans the append
            ("LOCK001", 12, false), // temporary guard spans the fsync
        ],
        "the scoped guard in clean() must not flag the append after its \
         block: {findings:?}"
    );
}

#[test]
fn lock_family_suppressed() {
    let findings = lint(
        "lock_suppressed.rs",
        include_str!("fixtures/lock_suppressed.rs"),
    );
    assert_eq!(shape(&findings), vec![("LOCK001", 6, true)], "{findings:?}");
}

#[test]
fn stale_and_unknown_suppressions_are_flagged() {
    let findings = lint("sup_stale.rs", include_str!("fixtures/sup_stale.rs"));
    assert_eq!(
        shape(&findings),
        vec![
            ("SUP001", 4, false), // allow matching no finding
            ("SUP001", 6, false), // allow naming an unknown rule
        ],
        "{findings:?}"
    );
    assert!(findings[1].message.contains("DET999"));
}

#[test]
fn sup001_is_itself_suppressible() {
    let findings = lint(
        "sup_suppressed.rs",
        include_str!("fixtures/sup_suppressed.rs"),
    );
    assert_eq!(shape(&findings), vec![("SUP001", 5, true)], "{findings:?}");
}

#[test]
fn doc_comment_mentions_of_the_allow_syntax_are_not_directives() {
    let text = "//! Suppress with `detlint: allow(DET001) <why>` on the line.\n\
                /// See `detlint: allow(DET002)` for clock reads.\n\
                fn f() {}\n";
    let findings = lint("doc_mentions.rs", text);
    assert!(findings.is_empty(), "{findings:?}");
}

/// The report the machine-readable renderers are tested against: the IO
/// positives as errors, the SUP positives rebucketed as baselined, one
/// suppressed PANIC finding.
fn fixture_report() -> Report {
    let mut report = Report {
        files_scanned: 3,
        ..Report::default()
    };
    for f in lint("io_positive.rs", include_str!("fixtures/io_positive.rs")) {
        report.errors.push(f);
    }
    report
        .baselined
        .extend(lint("sup_stale.rs", include_str!("fixtures/sup_stale.rs")));
    for f in lint(
        "panic_suppressed.rs",
        include_str!("fixtures/panic_suppressed.rs"),
    ) {
        report.suppressed.push(f);
    }
    report
}

#[test]
fn sarif_and_json_are_byte_stable() {
    let report = fixture_report();
    assert_eq!(detlint::to_sarif(&report), detlint::to_sarif(&report));
    assert_eq!(detlint::to_json(&report), detlint::to_json(&report));
    // And stable across a fresh lint of the same sources.
    let again = fixture_report();
    assert_eq!(detlint::to_sarif(&report), detlint::to_sarif(&again));
}

#[test]
fn sarif_matches_the_committed_golden() {
    let sarif = detlint::to_sarif(&fixture_report());
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/expected.sarif");
    if std::env::var_os("E2C_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &sarif).expect("write golden");
    }
    let expected = std::fs::read_to_string(&path).expect("committed golden fixture");
    assert_eq!(
        sarif, expected,
        "SARIF output drifted from tests/fixtures/expected.sarif; if the \
         change is intentional, regenerate with \
         `E2C_UPDATE_GOLDEN=1 cargo test -p detlint`"
    );
}

#[test]
fn baseline_gates_only_new_findings() {
    let mut report = Report::default();
    for f in lint("io_positive.rs", include_str!("fixtures/io_positive.rs")) {
        report.errors.push(f);
    }
    // Baseline everything, then re-lint: clean.
    let baseline = detlint::Baseline::from_findings(report.errors.iter());
    report.apply_baseline(&baseline);
    assert!(report.is_clean());
    assert_eq!(report.baselined.len(), 4);
    assert_eq!(report.stale_baseline, 0);

    // A baseline missing one entry gates exactly the uncovered finding.
    let mut report = Report::default();
    for f in lint("io_positive.rs", include_str!("fixtures/io_positive.rs")) {
        report.errors.push(f);
    }
    let partial = detlint::Baseline::from_findings(report.errors.iter().skip(1));
    report.apply_baseline(&partial);
    assert_eq!(report.errors.len(), 1);
    assert_eq!(report.baselined.len(), 3);

    // Round-trip through the committed file format.
    let text = partial.render();
    let reparsed = detlint::Baseline::parse(&text).expect("baseline round-trip");
    assert_eq!(reparsed.render(), text);
}
