// Fixture: LOCK001 — a lock guard held across a WAL append / fsync.

pub fn commit(state: &Mutex<State>, wal: &Mutex<Wal>) {
    let mut st = state.lock();
    st.pending += 1;
    wal.lock().append(b"commit").ok(); // LOCK001: st's guard spans the append
    st.pending -= 1;
}

pub fn flush(file: &Mutex<File>, counter: &Mutex<u64>) {
    *counter.lock() += 1; // temporary guard, dropped at the `;`
    file.lock().sync_all().ok(); // LOCK001: the temporary spans the fsync
}

pub fn clean(state: &Mutex<State>, wal: &mut Wal) {
    {
        let mut st = state.lock();
        st.pending += 1;
    } // guard dropped here
    wal.append(b"commit").ok(); // clean: no guard live
}
