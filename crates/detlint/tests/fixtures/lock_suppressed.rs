// Fixture: LOCK001 silenced by a justified allow.

pub fn append(inner: &Mutex<Wal>, line: &[u8]) {
    let mut wal = inner.lock();
    // detlint: allow(LOCK001) the WAL mutex is the append serialization point itself
    wal.append(line).ok();
}
