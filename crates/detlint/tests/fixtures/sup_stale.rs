// Fixture: SUP001 — stale and malformed suppressions.

pub fn tidy() -> u64 {
    // detlint: allow(DET002) the clock read below was removed last release
    let x = 1; // SUP001: the allow above matches no finding
    let y = 2; // detlint: allow(DET999) no such rule — SUP001
    x + y
}
