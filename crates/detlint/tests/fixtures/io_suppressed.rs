// Fixture: IO001 silenced by a justified allow (scratch output).

pub fn dump_debug(bytes: &[u8]) -> std::io::Result<()> {
    // detlint: allow(IO001) debug scratch file, never read back by a resume
    std::fs::write("/tmp/e2c-debug.bin", bytes)
}
