// Fixture: IO001–002 positives in an artifact-persisting module.

use std::fs;
use std::fs::File;

pub fn snapshot(dir: &Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(dir.join("summary.json"), bytes)?; // IO001
    fs::write(dir.join("evaluations.csv"), bytes)?; // IO001
    let mut f = File::create(dir.join("trials.jsonl"))?; // IO001
    f.write_all(bytes)?;
    Ok(())
}

pub fn publish(tmp: &Path, target: &Path) -> std::io::Result<()> {
    fs::rename(tmp, target)?; // IO002: no dir fsync in this block
    Ok(())
}

pub fn publish_durably(tmp: &Path, target: &Path, dir: &Path) -> std::io::Result<()> {
    fs::rename(tmp, target)?; // clean: the rename is fsync'd below
    File::open(dir)?.sync_all()?;
    Ok(())
}
