// Fixture: a deliberately-kept allow, exempted from SUP001 by listing
// SUP001 alongside the kept code with a justification.

pub fn tidy() -> u64 {
    // detlint: allow(DET002, SUP001) kept for the cfg(windows) build where QueryPerformanceCounter is read here
    let x = 1;
    x
}
