// Fixture: PANIC findings silenced by justified allows.

pub fn decode(table: &[u32; 256], byte: u8) -> u32 {
    // detlint: allow(PANIC003) index is a u8, table has 256 entries
    let fast = table[byte as usize];
    let slow = table[(byte & 0x7F) as usize]; // detlint: allow(PANIC003) masked to 0..=127
    fast ^ slow
}

pub fn settle(cell: &OnceCell<u64>) -> u64 {
    // detlint: allow(PANIC001) set() above in the same function makes get() infallible
    *cell.get().unwrap()
}
