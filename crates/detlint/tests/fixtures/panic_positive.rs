// Fixture: PANIC001–003 positives in a crash-safety-critical module.
// Not compiled — linted as text by tests/token_rules.rs (and kept out of
// workspace lint runs by the default `fixtures` skip-dir).

pub fn commit(frames: &[Frame], journal: &mut Wal) -> u64 {
    let head = frames.first().unwrap(); // PANIC001
    let tail = frames.last().expect("non-empty batch"); // PANIC001
    if head.seq > tail.seq {
        panic!("frame order inverted"); // PANIC002
    }
    let mid = frames[frames.len() / 2].seq; // PANIC003
    let window = &frames[1..3]; // PANIC003
    let full = &frames[..]; // full-range slice: not a PANIC003
    let literal = [head.seq, mid]; // array literal: not a PANIC003
    for f in [tail] {
        // `in [` is iteration, not indexing: not a PANIC003
        journal.push(f.seq);
    }
    drop((window, full, literal));
    todo!() // PANIC002
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        // Token rules skip test regions: none of these are findings.
        let v = vec![1, 2, 3];
        assert_eq!(v.first().unwrap(), &1);
        let x = v[0];
        assert_eq!(x, 1);
    }
}
