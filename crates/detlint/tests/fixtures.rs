//! Fixture-driven tests: for every rule, a positive case, a suppressed
//! case, and a clean case. Fixtures are string literals, so the lint's
//! own scanner never sees them when this file itself is linted.

use detlint::{lint_source, Config, Finding, Rule};

fn run(path: &str, src: &str) -> Vec<Finding> {
    lint_source(path, src, &Config::default())
}

fn unsuppressed(findings: &[Finding], rule: Rule) -> usize {
    findings
        .iter()
        .filter(|f| f.rule == rule && !f.suppressed_with_justification())
        .count()
}

fn suppressed(findings: &[Finding], rule: Rule) -> usize {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed_with_justification())
        .count()
}

// ---------------------------------------------------------------- DET001

#[test]
fn det001_flags_hashmap_iteration() {
    let src = "use std::collections::HashMap;\n\
               fn f() {\n\
                   let mut m: HashMap<u64, f64> = HashMap::new();\n\
                   m.insert(1, 2.0);\n\
                   for (k, v) in m.iter() { println!(\"{k} {v}\"); }\n\
               }\n";
    let findings = run("src/a.rs", src);
    assert_eq!(unsuppressed(&findings, Rule::UnorderedIteration), 1);
    assert_eq!(
        findings
            .iter()
            .find(|f| f.rule == Rule::UnorderedIteration)
            .unwrap()
            .line,
        5
    );
}

#[test]
fn det001_flags_for_over_borrowed_set() {
    let src = "fn f(reqs: std::collections::HashSet<u64>) {\n\
               for r in &reqs { observe(r); }\n\
               }\n";
    let findings = run("src/a.rs", src);
    assert_eq!(unsuppressed(&findings, Rule::UnorderedIteration), 1);
}

#[test]
fn det001_suppressed_with_justification() {
    let src = "fn f(m: std::collections::HashMap<u64, u64>) {\n\
               // detlint: allow(DET001) drained into a Vec that is sorted below\n\
               let mut v: Vec<_> = m.keys().collect();\n\
               v.sort();\n\
               }\n";
    let findings = run("src/a.rs", src);
    assert_eq!(unsuppressed(&findings, Rule::UnorderedIteration), 0);
    assert_eq!(suppressed(&findings, Rule::UnorderedIteration), 1);
}

#[test]
fn det001_allow_without_justification_still_counts() {
    let src = "fn f(m: std::collections::HashMap<u64, u64>) {\n\
               for k in m.keys() {} // detlint: allow(DET001)\n\
               }\n";
    let findings = run("src/a.rs", src);
    assert_eq!(unsuppressed(&findings, Rule::UnorderedIteration), 1);
    assert!(findings[0].message.contains("missing a justification"));
}

#[test]
fn det001_clean_lookups_and_btreemap() {
    let src =
        "fn f(m: std::collections::HashMap<u64, u64>, b: std::collections::BTreeMap<u64, u64>) {\n\
               let _ = m.get(&1);\n\
               m.insert(2, 3);\n\
               for (k, v) in &b { println!(\"{k} {v}\"); }\n\
               }\n";
    assert!(run("src/a.rs", src).is_empty());
}

// ---------------------------------------------------------------- DET002

#[test]
fn det002_flags_wall_clock() {
    let src = "fn f() { let t = std::time::Instant::now(); drop(t); }\n\
               fn g() { let t = std::time::SystemTime::now(); drop(t); }\n";
    let findings = run("crates/x/src/a.rs", src);
    assert_eq!(unsuppressed(&findings, Rule::WallClock), 2);
}

#[test]
fn det002_approved_clock_module_is_exempt() {
    let src = "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n";
    let findings = run("crates/tune/src/clock.rs", src);
    assert_eq!(unsuppressed(&findings, Rule::WallClock), 0);
}

#[test]
fn det002_suppressed() {
    let src = "fn bench() {\n\
               let t = std::time::Instant::now(); // detlint: allow(DET002) bench harness timing, not a decision input\n\
               drop(t);\n\
               }\n";
    let findings = run("crates/x/src/a.rs", src);
    assert_eq!(unsuppressed(&findings, Rule::WallClock), 0);
    assert_eq!(suppressed(&findings, Rule::WallClock), 1);
}

// ---------------------------------------------------------------- DET003

#[test]
fn det003_flags_entropy_rng() {
    let src = "fn f() { let mut rng = StdRng::from_entropy(); use_it(&mut rng); }\n\
               fn g() { let mut rng = rand::thread_rng(); use_it(&mut rng); }\n";
    let findings = run("src/a.rs", src);
    assert_eq!(unsuppressed(&findings, Rule::EntropyRng), 2);
}

#[test]
fn det003_clean_seeded_rng() {
    let src = "fn f(seed: u64) { let mut rng = StdRng::seed_from_u64(seed); use_it(&mut rng); }\n";
    assert!(run("src/a.rs", src).is_empty());
}

// ---------------------------------------------------------------- DET004

#[test]
fn det004_flags_sleep_in_hot_path() {
    let src = "fn poll() { std::thread::sleep(std::time::Duration::from_millis(5)); }\n\
               fn spin() { std::hint::spin_loop(); }\n";
    let findings = run("crates/tune/src/watch.rs", src);
    assert_eq!(unsuppressed(&findings, Rule::SleepInHotPath), 2);
}

#[test]
fn det004_only_applies_inside_hot_paths() {
    let src = "fn poll() { std::thread::sleep(std::time::Duration::from_millis(5)); }\n";
    assert!(run("crates/bench/src/a.rs", src).is_empty());
}

#[test]
fn det004_suppressed_on_previous_line() {
    let src = "fn tick() {\n\
               // detlint: allow(DET004) watchdog cadence only; results never read this clock\n\
               std::thread::sleep(TICK);\n\
               }\n";
    let findings = run("crates/tune/src/watch.rs", src);
    assert_eq!(unsuppressed(&findings, Rule::SleepInHotPath), 0);
    assert_eq!(suppressed(&findings, Rule::SleepInHotPath), 1);
}

// ---------------------------------------------------------------- DET005

#[test]
fn det005_flags_sum_over_hashmap_values() {
    let src = "fn f(scores: std::collections::HashMap<u64, f64>) -> f64 {\n\
               scores.values().sum::<f64>()\n\
               }\n";
    let findings = run("src/a.rs", src);
    assert_eq!(unsuppressed(&findings, Rule::FloatAccumulation), 1);
    // The more specific DET005 replaces DET001 on the same chain.
    assert_eq!(unsuppressed(&findings, Rule::UnorderedIteration), 0);
}

#[test]
fn det005_flags_accumulation_inside_unordered_loop() {
    let src = "fn f(scores: std::collections::HashMap<u64, f64>) -> f64 {\n\
               let mut total = 0.0;\n\
               for (_, v) in &scores {\n\
                   total += v * 0.5;\n\
               }\n\
               total\n\
               }\n";
    let findings = run("src/a.rs", src);
    assert_eq!(unsuppressed(&findings, Rule::FloatAccumulation), 1);
}

#[test]
fn det005_integer_counters_are_fine() {
    let src = "fn f(scores: std::collections::HashMap<u64, f64>) -> usize {\n\
               let mut n = 0;\n\
               // detlint: allow(DET001) counting only; order cannot affect the count\n\
               for _ in scores.keys() {\n\
                   n += 1;\n\
               }\n\
               n\n\
               }\n";
    let findings = run("src/a.rs", src);
    assert_eq!(unsuppressed(&findings, Rule::FloatAccumulation), 0);
}

#[test]
fn det005_clean_sorted_accumulation() {
    let src = "fn f(scores: std::collections::BTreeMap<u64, f64>) -> f64 {\n\
               scores.values().sum::<f64>()\n\
               }\n";
    assert!(run("src/a.rs", src).is_empty());
}

// ------------------------------------------------------------- severity

#[test]
fn severity_off_and_warn_change_report_buckets() {
    use detlint::Severity;
    let mut config = Config::default();
    config.set_severity(Rule::WallClock, Severity::Off);
    let src = "fn f() { let t = std::time::Instant::now(); drop(t); }\n";
    let findings = detlint::lint_source("src/a.rs", src, &config);
    // lint_source still reports; severity buckets are applied by
    // lint_workspace, so here we just confirm the finding exists and the
    // config carries the override.
    assert_eq!(findings.len(), 1);
    assert_eq!(config.severity(Rule::WallClock), Severity::Off);
}

#[test]
fn literals_and_comments_never_trigger() {
    let src = "fn f() {\n\
               let msg = \"Instant::now() thread_rng() HashMap.iter()\";\n\
               // Instant::now() in a comment is fine\n\
               println!(\"{msg}\");\n\
               }\n";
    assert!(run("crates/tune/src/x.rs", src).is_empty());
}
