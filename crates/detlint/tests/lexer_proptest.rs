//! Property coverage of the hand-rolled lexer: whatever bytes come in —
//! unterminated strings, nested comment soup, stray quotes, multi-byte
//! unicode — tokenization must terminate without panicking, and every
//! token span must be in-bounds, on char boundaries, non-overlapping and
//! consistent with its recorded line number. Extends the wire-format
//! proptest beachhead toward the ROADMAP fuzzing item: the linter runs on
//! every CI push, so "never panics on weird source" is a gate, not a wish.

use detlint::{lint_source, tokenize, Config};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Printable ASCII (all Rust punctuation) plus whitespace, quotes and
/// multi-byte unicode — raw character soup.
const SOUP: &str = "[ -~\t\n\réà→ß🦀]{0,80}";

/// Code-shaped input: random concatenations of the exact constructs the
/// lexer special-cases (raw strings, nested comments, lifetimes, char
/// literals, attributes, suppressions), so boundary interactions between
/// them get exercised far more often than raw soup would manage.
fn code_fragments() -> impl Strategy<Value = String> {
    let fragment = Union::new(vec![
        Just("fn f() { ").boxed(),
        Just("}").boxed(),
        Just("let s = \"tab\\t\";").boxed(),
        Just("r#\"raw \" body\"#").boxed(),
        Just("br\"bytes\"").boxed(),
        Just("'a>").boxed(),
        Just("'x'").boxed(),
        Just("b'\\n'").boxed(),
        Just("/* outer /* nested */ still */").boxed(),
        Just("// line comment\n").boxed(),
        Just("// detlint: allow(DET001) reason\n").boxed(),
        Just("#[cfg(test)] mod t { ").boxed(),
        Just("#[test] fn u() { x.unwrap(); } ").boxed(),
        Just("v[i..j]").boxed(),
        Just("0x1f_u32 1.5e-3 0..10").boxed(),
        Just("std::fs::write(p, b)?;").boxed(),
        Just("\"unterminated").boxed(),
        Just("/* unterminated").boxed(),
        Just("é→🦀").boxed(),
        Just("\n").boxed(),
    ]);
    proptest::collection::vec(fragment, 0..12).prop_map(|v| v.concat())
}

/// The span/line invariants every tokenization must uphold.
fn check_tokens(src: &str) -> Result<(), TestCaseError> {
    let tokens = tokenize(src);
    let mut prev_end = 0usize;
    for t in &tokens {
        prop_assert!(t.start < t.end, "empty span {t:?}");
        prop_assert!(t.end <= src.len(), "span past EOF {t:?}");
        prop_assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "span splits a char {t:?}"
        );
        prop_assert!(
            t.start >= prev_end,
            "tokens overlap or run backwards at {t:?}"
        );
        prop_assert_eq!(t.text(src), &src[t.start..t.end]);
        let line = 1 + src[..t.start].matches('\n').count();
        prop_assert_eq!(t.line as usize, line, "line number drifted {:?}", t);
        prev_end = t.end;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_is_sound_on_character_soup(src in SOUP) {
        check_tokens(&src)?;
    }

    #[test]
    fn lexer_is_sound_on_code_shaped_input(src in code_fragments()) {
        check_tokens(&src)?;
    }

    /// The whole pipeline — lexer, test-region detection, every rule
    /// family, suppression attachment — terminates on arbitrary input
    /// with all path scopes active.
    #[test]
    fn full_lint_pipeline_never_panics(src in SOUP) {
        let mut config = Config::default();
        config.critical_paths.push("fuzz/".to_string());
        config.artifact_paths.push("fuzz/".to_string());
        let findings = lint_source("fuzz/input.rs", &src, &config);
        for f in findings {
            prop_assert!(f.line >= 1, "0-based line leaked: {f:?}");
        }
    }
}
