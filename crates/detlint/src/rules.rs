//! The rule families and the per-file analysis pass.
//!
//! Two passes run over every file:
//!
//! * the original *line pass* (blanked per-line text from
//!   [`split_source`]) carries the determinism family DET001–DET005;
//! * the *token pass* (spanned tokens from [`crate::lexer::tokenize`])
//!   carries the crash-safety families PANIC001–003, IO001–002 and
//!   LOCK001, which need to see expression structure and match across
//!   lines. Token rules skip `#[cfg(test)]` / `#[test]` regions — test
//!   code legitimately unwraps and writes scratch files.
//!
//! SUP001 runs last, over the suppression comments themselves: an
//! `detlint: allow(...)` that matches no finding is itself a finding, so
//! burned-down hazards cannot leave silent dead suppressions behind.

use crate::config::Config;
use crate::lexer::{in_regions, test_regions, tokenize, Token, TokenKind};
use crate::scanner::{split_source, Line};
use std::collections::BTreeSet;

/// A determinism or crash-safety hazard class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// DET001: iteration over an unordered `HashMap`/`HashSet`.
    UnorderedIteration,
    /// DET002: wall-clock read outside the approved clock module.
    WallClock,
    /// DET003: unseeded / entropy-based RNG construction.
    EntropyRng,
    /// DET004: sleep or spin loop in a search/observe hot path.
    SleepInHotPath,
    /// DET005: floating-point accumulation over an unordered collection.
    FloatAccumulation,
    /// PANIC001: `.unwrap()` / `.expect(...)` in a crash-safety-critical
    /// module.
    UnwrapInCritical,
    /// PANIC002: `panic!` / `unreachable!` / `todo!` / `unimplemented!`
    /// in a crash-safety-critical module.
    PanicMacro,
    /// PANIC003: slice/array index expression in a crash-safety-critical
    /// module (can panic out of bounds).
    SliceIndex,
    /// IO001: raw `std::fs::write` / `File::create` in a crate that
    /// persists run artifacts (bypasses `e2c-journal::write_atomic`).
    RawArtifactWrite,
    /// IO002: `std::fs::rename` with no directory fsync in scope.
    RenameWithoutFsync,
    /// LOCK001: `Wal::append` / fsync called while a lock guard is held.
    LockAcrossWal,
    /// SUP001: a `detlint: allow(...)` that matches no finding.
    StaleSuppression,
}

impl Rule {
    pub const COUNT: usize = 12;
    pub const ALL: [Rule; Rule::COUNT] = [
        Rule::UnorderedIteration,
        Rule::WallClock,
        Rule::EntropyRng,
        Rule::SleepInHotPath,
        Rule::FloatAccumulation,
        Rule::UnwrapInCritical,
        Rule::PanicMacro,
        Rule::SliceIndex,
        Rule::RawArtifactWrite,
        Rule::RenameWithoutFsync,
        Rule::LockAcrossWal,
        Rule::StaleSuppression,
    ];

    pub fn code(self) -> &'static str {
        match self {
            Rule::UnorderedIteration => "DET001",
            Rule::WallClock => "DET002",
            Rule::EntropyRng => "DET003",
            Rule::SleepInHotPath => "DET004",
            Rule::FloatAccumulation => "DET005",
            Rule::UnwrapInCritical => "PANIC001",
            Rule::PanicMacro => "PANIC002",
            Rule::SliceIndex => "PANIC003",
            Rule::RawArtifactWrite => "IO001",
            Rule::RenameWithoutFsync => "IO002",
            Rule::LockAcrossWal => "LOCK001",
            Rule::StaleSuppression => "SUP001",
        }
    }

    pub fn index(self) -> usize {
        Rule::ALL
            .iter()
            .position(|r| *r == self)
            .unwrap_or_default()
    }

    pub fn from_code(code: &str) -> Option<Rule> {
        let code = code.trim().to_ascii_uppercase();
        Rule::ALL.into_iter().find(|r| r.code() == code)
    }

    /// One-line description for reports and docs.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::UnorderedIteration => {
                "iteration over an unordered HashMap/HashSet — order varies between runs"
            }
            Rule::WallClock => "wall-clock read outside the approved clock module",
            Rule::EntropyRng => "entropy-based RNG construction defeats seeded replay",
            Rule::SleepInHotPath => "sleep/spin in a search or observe hot path",
            Rule::FloatAccumulation => {
                "floating-point accumulation over an unordered collection (fp addition is non-associative)"
            }
            Rule::UnwrapInCritical => {
                "unwrap/expect in a crash-safety-critical module aborts mid-commit"
            }
            Rule::PanicMacro => "panic-family macro in a crash-safety-critical module",
            Rule::SliceIndex => {
                "index expression in a crash-safety-critical module can panic out of bounds"
            }
            Rule::RawArtifactWrite => {
                "raw fs::write/File::create bypasses write_atomic — a crash tears the artifact"
            }
            Rule::RenameWithoutFsync => {
                "rename without a directory fsync may not survive a crash"
            }
            Rule::LockAcrossWal => {
                "WAL append/fsync while holding a lock blocks every other holder for the fsync"
            }
            Rule::StaleSuppression => "detlint: allow(...) that matches no finding",
        }
    }
}

/// A justified (or not) `detlint: allow(...)` attached to a finding.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Free-text reason following the `allow(...)`; empty means the
    /// suppression is invalid and the finding still counts.
    pub justification: String,
}

/// One rule hit at one source line.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    pub message: String,
    /// The offending source line, verbatim.
    pub snippet: String,
    /// Present when a `detlint: allow(<code>)` covers this line.
    pub suppression: Option<Suppression>,
}

impl Finding {
    /// True when the finding carries an allow *with a written reason* —
    /// an empty justification does not count.
    pub fn suppressed_with_justification(&self) -> bool {
        self.suppression
            .as_ref()
            .is_some_and(|s| !s.justification.is_empty())
    }
}

const ITERATION_METHODS: [&str; 10] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".retain(",
];

const ACCUMULATION_TAILS: [&str; 3] = [".sum::<", ".sum()", ".fold("];

const ENTROPY_PATTERNS: [&str; 6] = [
    "from_entropy",
    "thread_rng(",
    "rand::random(",
    "OsRng",
    "from_os_rng",
    "getrandom(",
];

const SLEEP_PATTERNS: [&str; 3] = ["thread::sleep(", "spin_loop(", "yield_now("];

/// Lint one file's text. `path` is the workspace-relative label used in
/// findings and for all path scoping (DET002/DET004 hot paths, the
/// PANIC/LOCK `critical_paths`, the IO `artifact_paths`).
pub fn lint_source(path: &str, text: &str, config: &Config) -> Vec<Finding> {
    let lines = split_source(text);
    let mut findings = det_pass(path, &lines, config);
    let critical = config
        .critical_paths
        .iter()
        .any(|p| path.starts_with(p.as_str()) || path.ends_with(p.as_str()));
    let artifact = config
        .artifact_paths
        .iter()
        .any(|p| path.starts_with(p.as_str()) || path.ends_with(p.as_str()));
    if critical || artifact {
        let tokens = tokenize(text);
        let tests = test_regions(text, &tokens);
        findings.extend(token_pass(
            path, text, &tokens, &tests, critical, artifact, &lines,
        ));
    }
    attach_suppressions(&mut findings, &lines);
    let stale = stale_suppressions(path, &lines, &findings);
    findings.extend(stale);
    findings.sort_by(|a, b| (a.line, a.rule.code()).cmp(&(b.line, b.rule.code())));
    findings
}

/// The original line-based determinism pass (DET001–DET005).
fn det_pass(path: &str, lines: &[Line], config: &Config) -> Vec<Finding> {
    let unordered = collect_unordered_idents(lines);
    let clock_approved = config
        .approved_clock_files
        .iter()
        .any(|suffix| path.ends_with(suffix.as_str()));
    let in_hot_path = config
        .hot_paths
        .iter()
        .any(|p| path.starts_with(p.as_str()));

    let mut findings = Vec::new();
    // Stack of `for`-loops over unordered collections: (depth inside the
    // loop body, loop-variable line) — used by DET005's `+=` heuristic.
    let mut depth: i64 = 0;
    let mut unordered_loops: Vec<i64> = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        let mut hit = |rule: Rule, message: String| {
            findings.push(Finding {
                rule,
                file: path.to_string(),
                line: idx + 1,
                message,
                snippet: line.raw.clone(),
                suppression: None,
            });
        };

        // DET002 — wall-clock reads.
        if !clock_approved && (code.contains("Instant::now(") || code.contains("SystemTime::now("))
        {
            hit(
                Rule::WallClock,
                format!(
                    "wall-clock read outside the approved clock module; route through `{}`",
                    config
                        .approved_clock_files
                        .first()
                        .map(String::as_str)
                        .unwrap_or("<approved clock module>")
                ),
            );
        }

        // DET003 — entropy-based RNG construction.
        if let Some(pat) = ENTROPY_PATTERNS.iter().find(|p| code.contains(**p)) {
            hit(
                Rule::EntropyRng,
                format!(
                    "`{}` draws entropy, so two runs with the same seed diverge; construct RNGs with `SeedableRng::seed_from_u64`",
                    pat.trim_end_matches('(')
                ),
            );
        }

        // DET004 — sleeping inside search/observe paths.
        if in_hot_path {
            if let Some(pat) = SLEEP_PATTERNS.iter().find(|p| code.contains(**p)) {
                hit(
                    Rule::SleepInHotPath,
                    format!(
                        "`{}` in a search/observe path couples results to wall-clock timing; prefer condvar wakeups",
                        pat.trim_end_matches('(')
                    ),
                );
            }
        }

        // DET001 / DET005 — unordered iteration and float accumulation.
        let mut det001_idents: BTreeSet<&str> = BTreeSet::new();
        let mut det005_idents: BTreeSet<&str> = BTreeSet::new();
        for ident in &unordered {
            for pos in word_occurrences(code, ident) {
                let rest = statement_tail(&code[pos + ident.len()..]);
                let iterates = ITERATION_METHODS.iter().any(|m| rest.contains(m))
                    || is_for_loop_target(code, pos);
                if !iterates {
                    continue;
                }
                if ACCUMULATION_TAILS.iter().any(|m| rest.contains(m)) {
                    det005_idents.insert(ident.as_str());
                } else {
                    det001_idents.insert(ident.as_str());
                }
            }
        }
        for ident in &det005_idents {
            hit(
                Rule::FloatAccumulation,
                format!(
                    "accumulation over unordered `{ident}` is order-sensitive (fp addition is non-associative); iterate a BTreeMap or sort keys first"
                ),
            );
        }
        for ident in &det001_idents {
            hit(
                Rule::UnorderedIteration,
                format!(
                    "iteration over unordered `{ident}` (HashMap/HashSet) — order varies between runs; use a BTreeMap/BTreeSet or sort before iterating"
                ),
            );
        }

        // DET005's second form: `+=` accumulation inside the body of a
        // `for` loop that walks an unordered collection.
        if unordered_loops.last().is_some_and(|&d| depth >= d) {
            if let Some(pos) = code.find("+=") {
                let rhs = code[pos + 2..].trim();
                let int_literal = !rhs.is_empty()
                    && rhs
                        .trim_end_matches(';')
                        .trim_end()
                        .chars()
                        .all(|c| c.is_ascii_digit() || c == '_');
                // Integer counters are order-independent; everything else
                // (floats, computed values) is flagged.
                if !int_literal {
                    hit(
                        Rule::FloatAccumulation,
                        "accumulation inside a loop over an unordered collection is order-sensitive; sort keys first or accumulate over a BTreeMap".to_string(),
                    );
                }
            }
        }

        // Track brace depth and open unordered `for` loops for the check
        // above (entries close when depth drops back).
        let opens = code.chars().filter(|&c| c == '{').count() as i64;
        let closes = code.chars().filter(|&c| c == '}').count() as i64;
        let was_unordered_for = code.contains("for ")
            && code.contains(" in ")
            && unordered.iter().any(|ident| {
                word_occurrences(code, ident)
                    .iter()
                    .any(|&p| is_for_loop_target(code, p))
            });
        depth += opens - closes;
        if was_unordered_for && opens > closes {
            unordered_loops.push(depth);
        }
        while unordered_loops.last().is_some_and(|&d| depth < d) {
            unordered_loops.pop();
        }
    }
    findings
}

/// Attach suppressions: trailing comment on the finding's own line, or an
/// allow standing alone on the line above it.
fn attach_suppressions(findings: &mut [Finding], lines: &[Line]) {
    for finding in findings.iter_mut() {
        if finding.suppression.is_some() {
            continue;
        }
        let idx = finding.line - 1; // 0-based index of the finding's line
        let own = lines
            .get(idx)
            .and_then(|l| parse_allow(&l.comment, finding.rule));
        let above = if idx > 0 && lines[idx - 1].code.trim().is_empty() {
            parse_allow(&lines[idx - 1].comment, finding.rule)
        } else {
            None
        };
        if let Some(justification) = own.or(above) {
            if justification.is_empty() {
                finding.message.push_str(
                    " [allow found but missing a justification: write `// detlint: allow(",
                );
                finding.message.push_str(finding.rule.code());
                finding.message.push_str(") <reason>`]");
            }
            finding.suppression = Some(Suppression { justification });
        }
    }
}

/// Keywords that can directly precede a `[` without the bracket being an
/// index expression (`for x in [..]`, `return [..]`, ...).
const NONINDEX_KEYWORDS: [&str; 10] = [
    "in", "return", "break", "else", "match", "if", "while", "loop", "move", "as",
];

/// Macros whose invocation aborts the process.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Calls that block under a held lock guard (LOCK001): the WAL append and
/// the fsync family.
const BLOCKING_UNDER_LOCK: [&str; 3] = ["append", "sync_all", "sync_data"];

/// The token-based crash-safety pass: PANIC001–003 (`critical`),
/// IO001–002 (`artifact`), LOCK001 (`critical`). Findings inside
/// `#[cfg(test)]` / `#[test]` regions are skipped.
fn token_pass(
    path: &str,
    src: &str,
    tokens: &[Token],
    tests: &[(u32, u32)],
    critical: bool,
    artifact: bool,
    lines: &[Line],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let snippet = |line: u32| {
        lines
            .get(line as usize - 1)
            .map(|l| l.raw.clone())
            .unwrap_or_default()
    };
    let mut hit = |rule: Rule, line: u32, message: String| {
        findings.push(Finding {
            rule,
            file: path.to_string(),
            line: line as usize,
            message,
            snippet: snippet(line),
            suppression: None,
        });
    };
    let text = |i: usize| tokens.get(i).map(|t| t.text(src)).unwrap_or("");
    let is_method_call = |i: usize| {
        i > 0
            && text(i - 1) == "."
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::Punct && t.text(src) == "(")
    };
    // `a :: b` path segment ending at ident index i? (checks `fs::write`
    // style qualifier immediately before i).
    let qualified_by = |i: usize, qual: &str| {
        i >= 3 && text(i - 1) == ":" && text(i - 2) == ":" && text(i - 3) == qual
    };
    // Forward extent of the block enclosing token i: indices j > i while
    // tokens stay at i's depth or deeper.
    let block_extent = |i: usize| {
        let d = tokens[i].depth;
        let mut j = i + 1;
        while j < tokens.len() && tokens[j].depth >= d {
            j += 1;
        }
        j
    };

    for (i, tok) in tokens.iter().enumerate() {
        if in_regions(tests, tok.line) {
            continue;
        }
        let word = tok.text(src);
        if critical && tok.kind == TokenKind::Ident {
            // PANIC001 — `.unwrap()` / `.expect(...)`.
            if (word == "unwrap" || word == "expect") && is_method_call(i) {
                hit(
                    Rule::UnwrapInCritical,
                    tok.line,
                    format!(
                        "`.{word}()` in a crash-safety-critical module aborts mid-commit; \
                         bubble the error through the typed error enum"
                    ),
                );
            }
            // PANIC002 — panic-family macro invocation.
            if PANIC_MACROS.contains(&word) && text(i + 1) == "!" {
                hit(
                    Rule::PanicMacro,
                    tok.line,
                    format!(
                        "`{word}!` in a crash-safety-critical module aborts the process; \
                         return an error instead"
                    ),
                );
            }
            // LOCK001 — `.lock()` whose guard is live across a WAL
            // append / fsync call.
            if word == "lock" && is_method_call(i) {
                let end = lock_guard_extent(src, tokens, i, block_extent(i));
                for (j, held) in tokens.iter().enumerate().take(end).skip(i + 2) {
                    let w = text(j);
                    if held.kind == TokenKind::Ident
                        && BLOCKING_UNDER_LOCK.contains(&w)
                        && j > 0
                        && text(j - 1) == "."
                        && text(j + 1) == "("
                        && !in_regions(tests, held.line)
                    {
                        hit(
                            Rule::LockAcrossWal,
                            held.line,
                            format!(
                                "`.{w}(...)` runs while the lock guard taken on line {} is \
                                 still held — the fsync blocks every other holder",
                                tok.line
                            ),
                        );
                    }
                }
            }
        }
        if critical && tok.kind == TokenKind::Punct && word == "[" {
            // PANIC003 — index expression: `expr[...]` where expr ends in
            // an identifier (not a keyword), `)` or `]`; `#[attr]`, macro
            // `vec![`, array types/literals and full-range `[..]` don't
            // match.
            let prev_ok = i > 0
                && match tokens[i - 1].kind {
                    TokenKind::Ident => !NONINDEX_KEYWORDS.contains(&text(i - 1)),
                    TokenKind::Punct => matches!(text(i - 1), ")" | "]"),
                    _ => false,
                };
            let full_range = text(i + 1) == "." && text(i + 2) == "." && text(i + 3) == "]";
            if prev_ok && !full_range {
                hit(
                    Rule::SliceIndex,
                    tok.line,
                    "index expression in a crash-safety-critical module can panic out of \
                     bounds; use `.get()` or a bounds-checked helper"
                        .to_string(),
                );
            }
        }
        if artifact && tok.kind == TokenKind::Ident {
            // IO001 — raw full-file writes bypassing write_atomic.
            let raw_write = (word == "write" && qualified_by(i, "fs"))
                || (word == "create" && qualified_by(i, "File"));
            if raw_write && text(i + 1) == "(" {
                let what = if word == "write" {
                    "std::fs::write"
                } else {
                    "File::create"
                };
                hit(
                    Rule::RawArtifactWrite,
                    tok.line,
                    format!(
                        "`{what}` bypasses `e2c-journal::write_atomic`; a crash mid-write \
                         tears the artifact"
                    ),
                );
            }
            // IO002 — rename with no directory fsync in the enclosing
            // block.
            if word == "rename" && qualified_by(i, "fs") && text(i + 1) == "(" {
                let end = block_extent(i);
                let fsynced = (i + 2..end)
                    .any(|j| tokens[j].kind == TokenKind::Ident && text(j) == "sync_all");
                if !fsynced {
                    hit(
                        Rule::RenameWithoutFsync,
                        tok.line,
                        "`std::fs::rename` without fsyncing the parent directory may not \
                         survive a crash; fsync the dir (or use `write_atomic`)"
                            .to_string(),
                    );
                }
            }
        }
    }
    // A guard held across several appends yields one finding per call
    // site but never duplicates on the same line for the same rule.
    findings.sort_by(|a, b| (a.line, a.rule.code()).cmp(&(b.line, b.rule.code())));
    findings.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    findings
}

/// How far the guard created by the `.lock()` call at token `i` stays
/// live: to the end of the enclosing block when the call initializes a
/// `let` binding, otherwise (a temporary in a method chain) to the end of
/// the statement. Returns an exclusive token index bounded by
/// `block_end`.
fn lock_guard_extent(src: &str, tokens: &[Token], i: usize, block_end: usize) -> usize {
    // Walk back to the start of the statement: just past the previous
    // `;`, `{` or `}` at any shallower-or-equal depth.
    let mut start = i;
    while start > 0 {
        let t = &tokens[start - 1];
        if t.kind == TokenKind::Punct && matches!(t.text(src), ";" | "{" | "}") {
            break;
        }
        start -= 1;
    }
    let is_let_binding = tokens.get(start).is_some_and(|t| t.text(src) == "let");
    if is_let_binding {
        return block_end;
    }
    // Temporary guard: drops at the end of the statement.
    let d = tokens[i].depth;
    for (j, t) in tokens.iter().enumerate().skip(i + 1).take(block_end - i) {
        if t.kind == TokenKind::Punct && t.text(src) == ";" && t.depth <= d {
            return j;
        }
    }
    block_end
}

/// SUP001: every code named by a `detlint: allow(...)` must match a
/// finding on the allow's own line or (for a standalone allow) the line
/// below. `allow(SUP001)` is exempt — it suppresses this rule itself.
fn stale_suppressions(path: &str, lines: &[Line], findings: &[Finding]) -> Vec<Finding> {
    let mut stale = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let Some(codes) = parse_allow_codes(&line.comment) else {
            continue;
        };
        let standalone = line.code.trim().is_empty();
        for code in codes {
            let Some(rule) = Rule::from_code(&code) else {
                stale.push(Finding {
                    rule: Rule::StaleSuppression,
                    file: path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "suppression names unknown rule `{code}`; fix or delete the allow"
                    ),
                    snippet: line.raw.clone(),
                    suppression: None,
                });
                continue;
            };
            if rule == Rule::StaleSuppression {
                continue;
            }
            let matched = findings.iter().any(|f| {
                f.rule == rule && (f.line == idx + 1 || (standalone && f.line == idx + 2))
            });
            if !matched {
                stale.push(Finding {
                    rule: Rule::StaleSuppression,
                    file: path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "stale suppression: `{}` matches no finding on this or the next \
                         line; delete the allow",
                        rule.code()
                    ),
                    snippet: line.raw.clone(),
                    suppression: None,
                });
            }
        }
    }
    // Stale-suppression findings are themselves suppressible (with
    // `detlint: allow(SUP001) <why>`), e.g. for allows kept against
    // platform-conditional code.
    let mut stale_slice = stale;
    attach_suppressions(&mut stale_slice, lines);
    stale_slice
}

/// The text after `detlint: allow(` when the comment *is* a directive.
/// The directive must open the comment text: doc comments keep their
/// third `/` or `!` as comment text, so prose that merely *mentions* the
/// allow syntax (`/// ... \`detlint: allow(...)\` ...`) never parses as
/// a suppression.
fn allow_directive(comment: &str) -> Option<&str> {
    let rest = comment.trim_start().strip_prefix("detlint:")?;
    let rest = rest.trim_start().strip_prefix("allow")?.trim_start();
    rest.strip_prefix('(')
}

/// The codes listed by a `detlint: allow(...)` directive comment, or
/// `None` when the comment has no allow.
fn parse_allow_codes(comment: &str) -> Option<Vec<String>> {
    let rest = allow_directive(comment)?;
    let close = rest.find(')')?;
    Some(
        rest[..close]
            .split(',')
            .map(|c| c.trim().to_ascii_uppercase())
            .filter(|c| !c.is_empty())
            .collect(),
    )
}

/// Identifiers declared as `HashMap`/`HashSet` in this file (let bindings,
/// struct fields, wrapped in `Mutex<...>`/`Arc<...>`, or `= HashMap::new()`).
fn collect_unordered_idents(lines: &[Line]) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    for line in lines {
        let code = line.code.as_str();
        if code.trim_start().starts_with("use ") {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            for pos in word_occurrences(code, ty) {
                if let Some(name) = declared_name(&code[..pos]) {
                    idents.insert(name);
                }
            }
        }
    }
    idents
}

/// Given the text before a `HashMap`/`HashSet` token, recover the declared
/// identifier: strip path segments (`std::collections::`) and generic
/// wrappers (`Mutex<`, `Arc<`), then accept `name:` or `name =` forms.
fn declared_name(prefix: &str) -> Option<String> {
    let mut p = prefix.trim_end();
    loop {
        if let Some(stripped) = p.strip_suffix("::") {
            p = strip_trailing_ident(stripped)?.trim_end();
        } else if let Some(stripped) = p.strip_suffix('<') {
            p = strip_trailing_ident(stripped.trim_end())?.trim_end();
        } else {
            break;
        }
    }
    let p = if let Some(s) = p.strip_suffix(':') {
        // Reject `::` (path, not a field/binding annotation).
        if s.ends_with(':') {
            return None;
        }
        s
    } else if let Some(s) = p.strip_suffix('=') {
        // Reject `=>`, `==`, `<=`, etc.
        if s.ends_with(['=', '<', '>', '!', '+', '-', '*', '/']) {
            return None;
        }
        s
    } else {
        return None;
    };
    let name = trailing_ident(p.trim_end())?;
    // Skip type ascriptions of generics (`T: HashMap` can't happen) and
    // obvious non-bindings.
    if name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(name)
}

fn trailing_ident(s: &str) -> Option<String> {
    let tail: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if tail.is_empty() {
        None
    } else {
        Some(tail)
    }
}

fn strip_trailing_ident(s: &str) -> Option<&str> {
    let trimmed = s.trim_end_matches(|c: char| c.is_alphanumeric() || c == '_');
    if trimmed.len() == s.len() {
        None // nothing stripped — malformed
    } else {
        Some(trimmed)
    }
}

/// Byte offsets of word-boundary occurrences of `word` in `code`.
fn word_occurrences(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(found) = code[start..].find(word) {
        let pos = start + found;
        let before_ok = pos == 0
            || !code[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = code[pos + word.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            out.push(pos);
        }
        start = pos + word.len();
    }
    out
}

/// The chain following an identifier, cut at the end of the statement.
fn statement_tail(rest: &str) -> &str {
    match rest.find(';') {
        Some(end) => &rest[..end],
        None => rest,
    }
}

/// Is the identifier at `pos` the target of a `for ... in <expr>` where
/// the expression is the (borrowed) collection itself?
fn is_for_loop_target(code: &str, pos: usize) -> bool {
    let before = &code[..pos];
    let Some(in_pos) = before.rfind(" in ") else {
        return false;
    };
    if !before[..in_pos].contains("for ") {
        return false;
    }
    // Everything between `in` and the identifier must be borrow sigils.
    before[in_pos + 4..]
        .chars()
        .all(|c| c == '&' || c == ' ' || c == '(' || c == 'm' || c == 'u' || c == 't')
}

/// Parse `detlint: allow(DETxxx[, DETyyy]) justification` from a comment;
/// returns the justification (possibly empty) when `rule` is covered.
fn parse_allow(comment: &str, rule: Rule) -> Option<String> {
    let rest = allow_directive(comment)?;
    let close = rest.find(')')?;
    let codes = &rest[..close];
    let justification = rest[close + 1..].trim();
    if codes
        .split(',')
        .any(|c| c.trim().eq_ignore_ascii_case(rule.code()))
    {
        Some(justification.to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_name_recovers_bindings() {
        assert_eq!(declared_name("    let mut watch: "), Some("watch".into()));
        assert_eq!(declared_name("pub reqs: "), Some("reqs".into()));
        assert_eq!(declared_name("    watch: Mutex<"), Some("watch".into()));
        assert_eq!(
            declared_name("    cache: std::collections::"),
            Some("cache".into())
        );
        assert_eq!(declared_name("let m = "), Some("m".into()));
        assert_eq!(declared_name("use std::collections::"), None);
        assert_eq!(declared_name("-> "), None);
        assert_eq!(declared_name("Some(x) => "), None);
    }

    #[test]
    fn word_occurrences_respect_boundaries() {
        assert_eq!(word_occurrences("reqs.iter()", "reqs"), vec![0]);
        assert!(word_occurrences("requests.iter()", "reqs").is_empty());
        assert!(word_occurrences("my_reqs.iter()", "reqs").is_empty());
    }

    #[test]
    fn allow_parsing() {
        assert_eq!(
            parse_allow(
                " detlint: allow(DET001) lookup only",
                Rule::UnorderedIteration
            ),
            Some("lookup only".into())
        );
        assert_eq!(
            parse_allow(
                " detlint: allow(DET001,DET005) both",
                Rule::FloatAccumulation
            ),
            Some("both".into())
        );
        assert_eq!(
            parse_allow(" detlint: allow(DET002)", Rule::WallClock),
            Some(String::new())
        );
        assert_eq!(
            parse_allow(" detlint: allow(DET001) x", Rule::WallClock),
            None
        );
        assert_eq!(parse_allow(" plain comment", Rule::WallClock), None);
    }
}
