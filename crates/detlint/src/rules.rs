//! The five determinism rules and the per-file analysis pass.

use crate::config::Config;
use crate::scanner::{split_source, Line};
use std::collections::BTreeSet;

/// A determinism hazard class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// DET001: iteration over an unordered `HashMap`/`HashSet`.
    UnorderedIteration,
    /// DET002: wall-clock read outside the approved clock module.
    WallClock,
    /// DET003: unseeded / entropy-based RNG construction.
    EntropyRng,
    /// DET004: sleep or spin loop in a search/observe hot path.
    SleepInHotPath,
    /// DET005: floating-point accumulation over an unordered collection.
    FloatAccumulation,
}

impl Rule {
    pub const COUNT: usize = 5;
    pub const ALL: [Rule; Rule::COUNT] = [
        Rule::UnorderedIteration,
        Rule::WallClock,
        Rule::EntropyRng,
        Rule::SleepInHotPath,
        Rule::FloatAccumulation,
    ];

    pub fn code(self) -> &'static str {
        match self {
            Rule::UnorderedIteration => "DET001",
            Rule::WallClock => "DET002",
            Rule::EntropyRng => "DET003",
            Rule::SleepInHotPath => "DET004",
            Rule::FloatAccumulation => "DET005",
        }
    }

    pub fn index(self) -> usize {
        match self {
            Rule::UnorderedIteration => 0,
            Rule::WallClock => 1,
            Rule::EntropyRng => 2,
            Rule::SleepInHotPath => 3,
            Rule::FloatAccumulation => 4,
        }
    }

    pub fn from_code(code: &str) -> Option<Rule> {
        let code = code.trim().to_ascii_uppercase();
        Rule::ALL.into_iter().find(|r| r.code() == code)
    }

    /// One-line description for reports and docs.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::UnorderedIteration => {
                "iteration over an unordered HashMap/HashSet — order varies between runs"
            }
            Rule::WallClock => "wall-clock read outside the approved clock module",
            Rule::EntropyRng => "entropy-based RNG construction defeats seeded replay",
            Rule::SleepInHotPath => "sleep/spin in a search or observe hot path",
            Rule::FloatAccumulation => {
                "floating-point accumulation over an unordered collection (fp addition is non-associative)"
            }
        }
    }
}

/// A justified (or not) `detlint: allow(...)` attached to a finding.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Free-text reason following the `allow(...)`; empty means the
    /// suppression is invalid and the finding still counts.
    pub justification: String,
}

/// One rule hit at one source line.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    pub message: String,
    /// The offending source line, verbatim.
    pub snippet: String,
    /// Present when a `detlint: allow(<code>)` covers this line.
    pub suppression: Option<Suppression>,
}

impl Finding {
    /// True when the finding carries an allow *with a written reason* —
    /// an empty justification does not count.
    pub fn suppressed_with_justification(&self) -> bool {
        self.suppression
            .as_ref()
            .is_some_and(|s| !s.justification.is_empty())
    }
}

const ITERATION_METHODS: [&str; 10] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".retain(",
];

const ACCUMULATION_TAILS: [&str; 3] = [".sum::<", ".sum()", ".fold("];

const ENTROPY_PATTERNS: [&str; 6] = [
    "from_entropy",
    "thread_rng(",
    "rand::random(",
    "OsRng",
    "from_os_rng",
    "getrandom(",
];

const SLEEP_PATTERNS: [&str; 3] = ["thread::sleep(", "spin_loop(", "yield_now("];

/// Lint one file's text. `path` is the workspace-relative label used in
/// findings and for the DET002/DET004 path scoping.
pub fn lint_source(path: &str, text: &str, config: &Config) -> Vec<Finding> {
    let lines = split_source(text);
    let unordered = collect_unordered_idents(&lines);
    let clock_approved = config
        .approved_clock_files
        .iter()
        .any(|suffix| path.ends_with(suffix.as_str()));
    let in_hot_path = config
        .hot_paths
        .iter()
        .any(|p| path.starts_with(p.as_str()));

    let mut findings = Vec::new();
    // Stack of `for`-loops over unordered collections: (depth inside the
    // loop body, loop-variable line) — used by DET005's `+=` heuristic.
    let mut depth: i64 = 0;
    let mut unordered_loops: Vec<i64> = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        let mut hit = |rule: Rule, message: String| {
            findings.push(Finding {
                rule,
                file: path.to_string(),
                line: idx + 1,
                message,
                snippet: line.raw.clone(),
                suppression: None,
            });
        };

        // DET002 — wall-clock reads.
        if !clock_approved && (code.contains("Instant::now(") || code.contains("SystemTime::now("))
        {
            hit(
                Rule::WallClock,
                format!(
                    "wall-clock read outside the approved clock module; route through `{}`",
                    config
                        .approved_clock_files
                        .first()
                        .map(String::as_str)
                        .unwrap_or("<approved clock module>")
                ),
            );
        }

        // DET003 — entropy-based RNG construction.
        if let Some(pat) = ENTROPY_PATTERNS.iter().find(|p| code.contains(**p)) {
            hit(
                Rule::EntropyRng,
                format!(
                    "`{}` draws entropy, so two runs with the same seed diverge; construct RNGs with `SeedableRng::seed_from_u64`",
                    pat.trim_end_matches('(')
                ),
            );
        }

        // DET004 — sleeping inside search/observe paths.
        if in_hot_path {
            if let Some(pat) = SLEEP_PATTERNS.iter().find(|p| code.contains(**p)) {
                hit(
                    Rule::SleepInHotPath,
                    format!(
                        "`{}` in a search/observe path couples results to wall-clock timing; prefer condvar wakeups",
                        pat.trim_end_matches('(')
                    ),
                );
            }
        }

        // DET001 / DET005 — unordered iteration and float accumulation.
        let mut det001_idents: BTreeSet<&str> = BTreeSet::new();
        let mut det005_idents: BTreeSet<&str> = BTreeSet::new();
        for ident in &unordered {
            for pos in word_occurrences(code, ident) {
                let rest = statement_tail(&code[pos + ident.len()..]);
                let iterates = ITERATION_METHODS.iter().any(|m| rest.contains(m))
                    || is_for_loop_target(code, pos);
                if !iterates {
                    continue;
                }
                if ACCUMULATION_TAILS.iter().any(|m| rest.contains(m)) {
                    det005_idents.insert(ident.as_str());
                } else {
                    det001_idents.insert(ident.as_str());
                }
            }
        }
        for ident in &det005_idents {
            hit(
                Rule::FloatAccumulation,
                format!(
                    "accumulation over unordered `{ident}` is order-sensitive (fp addition is non-associative); iterate a BTreeMap or sort keys first"
                ),
            );
        }
        for ident in &det001_idents {
            hit(
                Rule::UnorderedIteration,
                format!(
                    "iteration over unordered `{ident}` (HashMap/HashSet) — order varies between runs; use a BTreeMap/BTreeSet or sort before iterating"
                ),
            );
        }

        // DET005's second form: `+=` accumulation inside the body of a
        // `for` loop that walks an unordered collection.
        if unordered_loops.last().is_some_and(|&d| depth >= d) {
            if let Some(pos) = code.find("+=") {
                let rhs = code[pos + 2..].trim();
                let int_literal = !rhs.is_empty()
                    && rhs
                        .trim_end_matches(';')
                        .trim_end()
                        .chars()
                        .all(|c| c.is_ascii_digit() || c == '_');
                // Integer counters are order-independent; everything else
                // (floats, computed values) is flagged.
                if !int_literal {
                    hit(
                        Rule::FloatAccumulation,
                        "accumulation inside a loop over an unordered collection is order-sensitive; sort keys first or accumulate over a BTreeMap".to_string(),
                    );
                }
            }
        }

        // Track brace depth and open unordered `for` loops for the check
        // above (entries close when depth drops back).
        let opens = code.chars().filter(|&c| c == '{').count() as i64;
        let closes = code.chars().filter(|&c| c == '}').count() as i64;
        let was_unordered_for = code.contains("for ")
            && code.contains(" in ")
            && unordered.iter().any(|ident| {
                word_occurrences(code, ident)
                    .iter()
                    .any(|&p| is_for_loop_target(code, p))
            });
        depth += opens - closes;
        if was_unordered_for && opens > closes {
            unordered_loops.push(depth);
        }
        while unordered_loops.last().is_some_and(|&d| depth < d) {
            unordered_loops.pop();
        }

        // Attach suppressions: trailing comment on the line itself, or an
        // allow standing alone on the previous line.
        for finding in &mut findings {
            if finding.line != idx + 1 || finding.suppression.is_some() {
                continue;
            }
            let own = parse_allow(&line.comment, finding.rule);
            let above = if idx > 0 && lines[idx - 1].code.trim().is_empty() {
                parse_allow(&lines[idx - 1].comment, finding.rule)
            } else {
                None
            };
            if let Some(justification) = own.or(above) {
                if justification.is_empty() {
                    finding.message.push_str(
                        " [allow found but missing a justification: write `// detlint: allow(",
                    );
                    finding.message.push_str(finding.rule.code());
                    finding.message.push_str(") <reason>`]");
                }
                finding.suppression = Some(Suppression { justification });
            }
        }
    }
    findings
}

/// Identifiers declared as `HashMap`/`HashSet` in this file (let bindings,
/// struct fields, wrapped in `Mutex<...>`/`Arc<...>`, or `= HashMap::new()`).
fn collect_unordered_idents(lines: &[Line]) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    for line in lines {
        let code = line.code.as_str();
        if code.trim_start().starts_with("use ") {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            for pos in word_occurrences(code, ty) {
                if let Some(name) = declared_name(&code[..pos]) {
                    idents.insert(name);
                }
            }
        }
    }
    idents
}

/// Given the text before a `HashMap`/`HashSet` token, recover the declared
/// identifier: strip path segments (`std::collections::`) and generic
/// wrappers (`Mutex<`, `Arc<`), then accept `name:` or `name =` forms.
fn declared_name(prefix: &str) -> Option<String> {
    let mut p = prefix.trim_end();
    loop {
        if let Some(stripped) = p.strip_suffix("::") {
            p = strip_trailing_ident(stripped)?.trim_end();
        } else if let Some(stripped) = p.strip_suffix('<') {
            p = strip_trailing_ident(stripped.trim_end())?.trim_end();
        } else {
            break;
        }
    }
    let p = if let Some(s) = p.strip_suffix(':') {
        // Reject `::` (path, not a field/binding annotation).
        if s.ends_with(':') {
            return None;
        }
        s
    } else if let Some(s) = p.strip_suffix('=') {
        // Reject `=>`, `==`, `<=`, etc.
        if s.ends_with(['=', '<', '>', '!', '+', '-', '*', '/']) {
            return None;
        }
        s
    } else {
        return None;
    };
    let name = trailing_ident(p.trim_end())?;
    // Skip type ascriptions of generics (`T: HashMap` can't happen) and
    // obvious non-bindings.
    if name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(name)
}

fn trailing_ident(s: &str) -> Option<String> {
    let tail: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if tail.is_empty() {
        None
    } else {
        Some(tail)
    }
}

fn strip_trailing_ident(s: &str) -> Option<&str> {
    let trimmed = s.trim_end_matches(|c: char| c.is_alphanumeric() || c == '_');
    if trimmed.len() == s.len() {
        None // nothing stripped — malformed
    } else {
        Some(trimmed)
    }
}

/// Byte offsets of word-boundary occurrences of `word` in `code`.
fn word_occurrences(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(found) = code[start..].find(word) {
        let pos = start + found;
        let before_ok = pos == 0
            || !code[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = code[pos + word.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            out.push(pos);
        }
        start = pos + word.len();
    }
    out
}

/// The chain following an identifier, cut at the end of the statement.
fn statement_tail(rest: &str) -> &str {
    match rest.find(';') {
        Some(end) => &rest[..end],
        None => rest,
    }
}

/// Is the identifier at `pos` the target of a `for ... in <expr>` where
/// the expression is the (borrowed) collection itself?
fn is_for_loop_target(code: &str, pos: usize) -> bool {
    let before = &code[..pos];
    let Some(in_pos) = before.rfind(" in ") else {
        return false;
    };
    if !before[..in_pos].contains("for ") {
        return false;
    }
    // Everything between `in` and the identifier must be borrow sigils.
    before[in_pos + 4..]
        .chars()
        .all(|c| c == '&' || c == ' ' || c == '(' || c == 'm' || c == 'u' || c == 't')
}

/// Parse `detlint: allow(DETxxx[, DETyyy]) justification` from a comment;
/// returns the justification (possibly empty) when `rule` is covered.
fn parse_allow(comment: &str, rule: Rule) -> Option<String> {
    let at = comment.find("detlint:")?;
    let rest = comment[at + "detlint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let codes = &rest[..close];
    let justification = rest[close + 1..].trim();
    if codes
        .split(',')
        .any(|c| c.trim().eq_ignore_ascii_case(rule.code()))
    {
        Some(justification.to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_name_recovers_bindings() {
        assert_eq!(declared_name("    let mut watch: "), Some("watch".into()));
        assert_eq!(declared_name("pub reqs: "), Some("reqs".into()));
        assert_eq!(declared_name("    watch: Mutex<"), Some("watch".into()));
        assert_eq!(
            declared_name("    cache: std::collections::"),
            Some("cache".into())
        );
        assert_eq!(declared_name("let m = "), Some("m".into()));
        assert_eq!(declared_name("use std::collections::"), None);
        assert_eq!(declared_name("-> "), None);
        assert_eq!(declared_name("Some(x) => "), None);
    }

    #[test]
    fn word_occurrences_respect_boundaries() {
        assert_eq!(word_occurrences("reqs.iter()", "reqs"), vec![0]);
        assert!(word_occurrences("requests.iter()", "reqs").is_empty());
        assert!(word_occurrences("my_reqs.iter()", "reqs").is_empty());
    }

    #[test]
    fn allow_parsing() {
        assert_eq!(
            parse_allow(
                " detlint: allow(DET001) lookup only",
                Rule::UnorderedIteration
            ),
            Some("lookup only".into())
        );
        assert_eq!(
            parse_allow(
                " detlint: allow(DET001,DET005) both",
                Rule::FloatAccumulation
            ),
            Some("both".into())
        );
        assert_eq!(
            parse_allow(" detlint: allow(DET002)", Rule::WallClock),
            Some(String::new())
        );
        assert_eq!(
            parse_allow(" detlint: allow(DET001) x", Rule::WallClock),
            None
        );
        assert_eq!(parse_allow(" plain comment", Rule::WallClock), None);
    }
}
