//! Lint configuration: per-rule severity, the approved clock module, the
//! hot paths where sleeping is a hazard, and directories to skip.

use crate::rules::Rule;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Finding fails the lint (non-zero exit).
    Error,
    /// Finding is reported but does not fail the lint.
    Warn,
    /// Rule disabled.
    Off,
}

impl Severity {
    fn parse(s: &str) -> Option<Severity> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" | "deny" => Some(Severity::Error),
            "warn" | "warning" => Some(Severity::Warn),
            "off" | "allow" => Some(Severity::Off),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Config {
    /// Severity per rule, indexed by `Rule::index()`.
    severities: [Severity; Rule::COUNT],
    /// Path suffixes allowed to read the wall clock (DET002). Exactly one
    /// sanctioned call site exists in this workspace: the tune clock
    /// module.
    pub approved_clock_files: Vec<String>,
    /// Path prefixes treated as search/observe hot paths (DET004).
    pub hot_paths: Vec<String>,
    /// Path prefixes (or suffixes) of crash-safety-critical modules — the
    /// WAL append/replay code, the commit sequencer, the atomic artifact
    /// writers. PANIC001–003 and LOCK001 apply only here: a panic or a
    /// blocked fsync in these files tears the crash-safety story.
    pub critical_paths: Vec<String>,
    /// Path prefixes of crates that persist run artifacts. IO001–002
    /// apply only here: these files must write through
    /// `e2c-journal::write_atomic` (or fsync directories themselves).
    pub artifact_paths: Vec<String>,
    /// Directory names skipped by the workspace walker.
    pub skip_dirs: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            severities: [Severity::Error; Rule::COUNT],
            approved_clock_files: vec!["crates/tune/src/clock.rs".to_string()],
            hot_paths: vec![
                "crates/tune/src/".to_string(),
                "crates/optim/src/".to_string(),
                "crates/des/src/".to_string(),
            ],
            critical_paths: vec![
                "crates/journal/src/".to_string(),
                "crates/tune/src/journal.rs".to_string(),
                "crates/tune/src/tuner.rs".to_string(),
                "crates/tune/src/logger.rs".to_string(),
            ],
            artifact_paths: vec![
                "crates/journal/src/".to_string(),
                "crates/tune/src/".to_string(),
                "crates/trace/src/".to_string(),
                "crates/core/src/".to_string(),
                "src/".to_string(),
            ],
            skip_dirs: vec![
                "target".to_string(),
                "vendor".to_string(),
                ".git".to_string(),
                "fixtures".to_string(),
            ],
        }
    }
}

impl Config {
    pub fn severity(&self, rule: Rule) -> Severity {
        self.severities[rule.index()]
    }

    pub fn set_severity(&mut self, rule: Rule, severity: Severity) {
        self.severities[rule.index()] = severity;
    }

    /// Parse a plain `key = value` config file. Recognized keys: rule
    /// codes (`DET001 = warn`), `approve-clock` (adds a DET002-approved
    /// path suffix), `hot-path` (adds a DET004 prefix), `critical-path`
    /// (adds a PANIC/LOCK scope prefix), `artifact-path` (adds an IO
    /// scope prefix), `skip-dir`.
    /// Lines starting with `#` and blank lines are ignored.
    pub fn apply_file(&mut self, text: &str) -> Result<(), String> {
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", idx + 1))?;
            let (key, value) = (key.trim(), value.trim());
            if let Some(rule) = Rule::from_code(key) {
                let severity = Severity::parse(value)
                    .ok_or_else(|| format!("line {}: unknown severity `{value}`", idx + 1))?;
                self.set_severity(rule, severity);
            } else {
                match key.to_ascii_lowercase().as_str() {
                    "approve-clock" => self.approved_clock_files.push(value.to_string()),
                    "hot-path" => self.hot_paths.push(value.to_string()),
                    "critical-path" => self.critical_paths.push(value.to_string()),
                    "artifact-path" => self.artifact_paths.push(value.to_string()),
                    "skip-dir" => self.skip_dirs.push(value.to_string()),
                    other => return Err(format!("line {}: unknown key `{other}`", idx + 1)),
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_all_error() {
        let c = Config::default();
        for rule in Rule::ALL {
            assert_eq!(c.severity(rule), Severity::Error);
        }
    }

    #[test]
    fn config_file_overrides() {
        let mut c = Config::default();
        c.apply_file("# comment\nDET005 = warn\nDET004 = off\nhot-path = crates/x/\n")
            .unwrap();
        assert_eq!(c.severity(Rule::FloatAccumulation), Severity::Warn);
        assert_eq!(c.severity(Rule::SleepInHotPath), Severity::Off);
        assert_eq!(c.severity(Rule::UnorderedIteration), Severity::Error);
        assert!(c.hot_paths.iter().any(|p| p == "crates/x/"));
    }

    #[test]
    fn bad_lines_are_rejected() {
        let mut c = Config::default();
        assert!(c.apply_file("DET001 = loud").is_err());
        assert!(c.apply_file("nonsense").is_err());
        assert!(c.apply_file("mystery = 3").is_err());
    }
}
