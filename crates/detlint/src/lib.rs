//! # detlint — determinism static analysis
//!
//! The paper's core claim is *reproducible* optimization: an archived run
//! must replay bit-for-bit from its seed. Seeding RNGs is not enough —
//! unordered `HashMap` iteration, raw wall-clock reads and entropy-based
//! randomness silently break replayability. This crate is a hand-rolled,
//! std-only scanner over `.rs` files that enforces those invariants:
//!
//! | rule   | hazard |
//! |--------|--------|
//! | DET001 | iteration over an unordered `HashMap`/`HashSet` |
//! | DET002 | wall-clock read (`Instant::now`/`SystemTime::now`) outside the approved clock module |
//! | DET003 | unseeded / entropy-based RNG construction |
//! | DET004 | `thread::sleep` / spin loops inside search or observe paths |
//! | DET005 | floating-point accumulation over an unordered collection |
//!
//! Findings are suppressed per line with
//! `// detlint: allow(DET00x) <justification>` — the justification text is
//! mandatory; an allow without one is itself reported. The comment goes at
//! the end of the offending line or alone on the line above it.
//!
//! The scanner is deliberately token-level, not a full parser: it strips
//! comments and string/char literals, tracks which local identifiers were
//! declared as unordered containers, and pattern-matches the remaining
//! code text. That keeps it dependency-free (the build environment is
//! offline) and fast enough to run as a CI gate, at the cost of being a
//! heuristic — which is why per-line suppressions carry justifications
//! instead of the tool trying to be clever.

mod baseline;
mod config;
mod lexer;
mod rules;
mod sarif;
mod scanner;
mod walk;

pub use baseline::{fingerprint, Baseline};
pub use config::{Config, Severity};
pub use lexer::{tokenize, Token, TokenKind};
pub use rules::{lint_source, Finding, Rule};
pub use sarif::{to_json, to_sarif};
pub use walk::collect_rust_files;

use std::fmt::Write as _;
use std::path::Path;

/// Outcome of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Error-severity findings without a valid suppression. Any entry here
    /// should fail the build.
    pub errors: Vec<Finding>,
    /// Warn-severity findings without a valid suppression.
    pub warnings: Vec<Finding>,
    /// Error findings accepted by the committed `lint.baseline` — known
    /// debt being burned down, not a gate failure.
    pub baselined: Vec<Finding>,
    /// Findings silenced by a justified `detlint: allow(...)` comment.
    pub suppressed: Vec<Finding>,
    /// Baseline entries that matched no finding — the flagged code was
    /// fixed or moved; regenerate the baseline to shrink the file.
    pub stale_baseline: usize,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when nothing error-worthy remains.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Human-readable report (stable ordering: findings come out in
    /// path + line order, so the lint output is itself deterministic).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (list, severity) in [(&self.errors, "error"), (&self.warnings, "warning")] {
            for f in list {
                let _ = writeln!(
                    out,
                    "{} [{severity}] {}:{}: {}",
                    f.rule.code(),
                    f.file,
                    f.line,
                    f.message
                );
                let _ = writeln!(out, "    | {}", f.snippet.trim_end());
            }
        }
        if self.stale_baseline > 0 {
            let _ = writeln!(
                out,
                "note: {} stale baseline entr{} — run `e2clab lint --update-baseline` to shrink lint.baseline",
                self.stale_baseline,
                if self.stale_baseline == 1 { "y" } else { "ies" }
            );
        }
        let _ = writeln!(
            out,
            "detlint: {} file(s), {} error(s), {} warning(s), {} baselined, {} suppressed",
            self.files_scanned,
            self.errors.len(),
            self.warnings.len(),
            self.baselined.len(),
            self.suppressed.len()
        );
        out
    }

    /// Move errors covered by `baseline` into the `baselined` bucket and
    /// record how many baseline entries went unmatched. Gating then keys
    /// off `errors` alone: only findings *new* since the baseline fail.
    pub fn apply_baseline(&mut self, baseline: &Baseline) {
        let mut remaining = baseline.clone();
        let mut kept = Vec::with_capacity(self.errors.len());
        for finding in self.errors.drain(..) {
            if remaining.consume(&finding) {
                self.baselined.push(finding);
            } else {
                kept.push(finding);
            }
        }
        self.errors = kept;
        self.stale_baseline = remaining.stale();
    }
}

/// Lint every `.rs` file under `root` (skipping `Config::skip_dirs`),
/// sorting findings by path and line for deterministic output.
pub fn lint_workspace(root: &Path, config: &Config) -> std::io::Result<Report> {
    let files = collect_rust_files(root, &config.skip_dirs)?;
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    for path in &files {
        let text = std::fs::read_to_string(path)?;
        let label = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        for finding in lint_source(&label, &text, config) {
            match (
                finding.suppressed_with_justification(),
                config.severity(finding.rule),
            ) {
                (_, Severity::Off) => {}
                (true, _) => report.suppressed.push(finding),
                (false, Severity::Error) => report.errors.push(finding),
                (false, Severity::Warn) => report.warnings.push(finding),
            }
        }
    }
    for list in [
        &mut report.errors,
        &mut report.warnings,
        &mut report.suppressed,
    ] {
        list.sort_by(|a, b| {
            (&a.file, a.line, a.rule.code()).cmp(&(&b.file, b.line, b.rule.code()))
        });
    }
    Ok(report)
}
