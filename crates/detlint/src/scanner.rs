//! Source preprocessing: split a `.rs` file into per-line *code* text
//! (string/char literal contents blanked, comments removed) and per-line
//! *comment* text (for `detlint: allow(...)` suppressions).
//!
//! Blanking rather than deleting keeps byte columns stable, so snippets in
//! findings still line up with the original source.

/// One source line after preprocessing.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code with literal contents blanked and comments removed.
    pub code: String,
    /// Concatenated comment text on this line (without `//` / `/* */`).
    pub comment: String,
    /// The original, untouched line (for report snippets).
    pub raw: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    Str,
    RawStr { hashes: usize },
    Char,
    LineComment,
    BlockComment { depth: usize },
}

/// Split `text` into preprocessed lines.
///
/// Handles nested block comments, escapes in string/char literals, raw
/// strings (`r"..."`, `r#"..."#`), byte strings, and distinguishes
/// lifetimes (`'a`) from char literals by requiring a closing quote
/// nearby.
pub fn split_source(text: &str) -> Vec<Line> {
    let chars: Vec<char> = text.chars().collect();
    let mut lines = Vec::new();
    let mut line = Line::default();
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        line.raw.push(c);
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        line.raw.push('/');
                        state = State::LineComment;
                        i += 2;
                        continue;
                    }
                    '/' if next == Some('*') => {
                        line.raw.push('*');
                        state = State::BlockComment { depth: 1 };
                        i += 2;
                        continue;
                    }
                    '"' => {
                        line.code.push('"');
                        state = State::Str;
                    }
                    'r' | 'b' if is_raw_string_start(&chars, i) => {
                        // Consume the prefix (r, br, b) plus hashes up to
                        // the opening quote.
                        let mut j = i;
                        while chars.get(j) == Some(&'b') || chars.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        // chars[j] == '"'. Indexing (not an iterator) on
                        // purpose: `i` is the loop cursor, `raw` must skip
                        // the char already pushed at `i`.
                        #[allow(clippy::needless_range_loop)]
                        for k in i..=j {
                            if k > i {
                                line.raw.push(chars[k]);
                            }
                            line.code.push(chars[k]);
                        }
                        state = State::RawStr { hashes };
                        i = j + 1;
                        continue;
                    }
                    '\'' if is_char_literal_start(&chars, i) => {
                        line.code.push('\'');
                        state = State::Char;
                    }
                    _ => line.code.push(c),
                }
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped character entirely (it may be a
                    // quote or another backslash).
                    if let Some(&esc) = chars.get(i + 1) {
                        if esc != '\n' {
                            line.raw.push(esc);
                            i += 2;
                            continue;
                        }
                    }
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Code;
                } else {
                    line.code.push(' ');
                }
            }
            State::RawStr { hashes } => {
                if c == '"' && raw_string_closes(&chars, i, hashes) {
                    for k in 0..=hashes {
                        if k > 0 {
                            line.raw.push(chars[i + k]);
                        }
                        line.code.push(chars[i + k]);
                    }
                    i += hashes + 1;
                    state = State::Code;
                    continue;
                }
                line.code.push(' ');
            }
            State::Char => {
                if c == '\\' {
                    if let Some(&esc) = chars.get(i + 1) {
                        line.raw.push(esc);
                        i += 2;
                        continue;
                    }
                } else if c == '\'' {
                    line.code.push('\'');
                    state = State::Code;
                } else {
                    line.code.push(' ');
                }
            }
            State::LineComment => line.comment.push(c),
            State::BlockComment { depth } => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    line.raw.push('*');
                    state = State::BlockComment { depth: depth + 1 };
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    line.raw.push('/');
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment { depth: depth - 1 }
                    };
                    i += 2;
                    continue;
                }
                line.comment.push(c);
            }
        }
        i += 1;
    }
    if !line.raw.is_empty() || !line.comment.is_empty() {
        lines.push(line);
    }
    lines
}

/// `r"`, `r#"`, `br"`, `b"`? — only raw forms reach here; a plain `b"` is
/// handled as a normal string by the caller falling through to `"`.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Must not be part of a longer identifier (`for`, `bar`, ...).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Distinguish `'x'` / `'\n'` char literals from lifetimes like `'a`.
fn is_char_literal_start(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

fn raw_string_closes(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::split_source;

    #[test]
    fn strips_string_contents_but_keeps_code() {
        let lines = split_source("let x = \"Instant::now()\"; foo();\n");
        assert!(!lines[0].code.contains("Instant"));
        assert!(lines[0].code.contains("foo();"));
        assert!(lines[0].raw.contains("Instant::now()"));
    }

    #[test]
    fn captures_line_comments() {
        let lines = split_source("do_it(); // detlint: allow(DET001) lookup only\n");
        assert!(lines[0]
            .comment
            .contains("detlint: allow(DET001) lookup only"));
        assert!(!lines[0].code.contains("detlint"));
    }

    #[test]
    fn nested_block_comments() {
        let lines = split_source("a(); /* x /* y */ z */ b();\n");
        assert!(lines[0].code.contains("a();"));
        assert!(lines[0].code.contains("b();"));
        assert!(!lines[0].code.contains('z'));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let lines = split_source("let p = r#\"HashMap.iter()\"#; run();\n");
        assert!(!lines[0].code.contains("HashMap"), "{:?}", lines[0].code);
        assert!(lines[0].code.contains("run();"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = split_source("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(lines[0].code.contains("&'a str"));
    }

    #[test]
    fn char_literal_with_quote_content() {
        let lines = split_source("let q = '\"'; let h = '#'; tail();\n");
        assert!(lines[0].code.contains("tail();"));
    }

    #[test]
    fn multiline_string_spans_lines() {
        let lines = split_source("let s = \"line one\nInstant::now()\"; next();\n");
        assert_eq!(lines.len(), 2);
        assert!(!lines[1].code.contains("Instant"));
        assert!(lines[1].code.contains("next();"));
    }
}
