//! A hand-rolled, std-only Rust lexer producing *spanned* tokens.
//!
//! The original detlint pass matched blanked per-line text, which cannot
//! see across lines or into expression structure. The token stream fixes
//! that: every token carries its byte span, 1-based line and the brace
//! nesting depth at its position, so rules can ask questions like "is a
//! lock guard still live when this `append` call happens?" or "is this
//! `[` an index expression rather than an attribute?" without a parser.
//!
//! Guarantees (pinned by `tests/lexer_proptest.rs`):
//!
//! * [`tokenize`] never panics, for arbitrary (even non-UTF-8-shaped or
//!   unterminated) input;
//! * every token's span is in-bounds, lies on char boundaries, is
//!   non-empty and strictly follows the previous token's span (tokens
//!   never overlap);
//! * comments and the *contents* of string/char literals never produce
//!   `Ident`/`Punct` tokens, so code patterns cannot be spoofed from
//!   text.
//!
//! This is a lexer, not a parser: it does not build an AST, and keyword
//! identifiers are plain [`TokenKind::Ident`] tokens. Rules layer their
//! own (documented, suppressible) heuristics on top.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident` forms).
    Ident,
    /// Numeric literal (`42`, `0.5`, `0xFF`, `1_000u64`, ...).
    Number,
    /// String literal of any flavour (`"..."`, `r#"..."#`, `b"..."`).
    Str,
    /// Character literal (`'x'`, `'\n'`).
    Char,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// A single punctuation character (`.`, `:`, `[`, `!`, ...).
    Punct,
}

/// One lexed token. The text is not stored — slice the source with
/// [`Token::text`] — so a token is four words and the stream stays cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first char (inclusive, on a char boundary).
    pub start: usize,
    /// Byte offset past the last char (exclusive, on a char boundary).
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
    /// Brace nesting depth: `{` tokens carry the depth *outside* their
    /// block, the matching `}` carries that same depth, and everything
    /// between is one deeper.
    pub depth: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Does this token spell `word` (for [`TokenKind::Ident`] matching)?
    pub fn is(&self, src: &str, word: &str) -> bool {
        self.text(src) == word
    }
}

/// Tokenize `src`. Comments and whitespace produce no tokens; string and
/// char literal *contents* are opaque (one `Str`/`Char` token each).
/// Unterminated literals and comments extend to end of input — garbage
/// in, tokens out, never a panic.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    /// `(byte offset, char)` pairs — all indexing below is into this vec,
    /// never raw byte offsets, so char boundaries can't be violated.
    chars: Vec<(usize, char)>,
    pos: usize,
    line: u32,
    depth: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
            depth: 0,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    /// Byte offset of the char at vec index `i` (or end of input).
    fn offset(&self, i: usize) -> usize {
        self.chars.get(i).map_or(self.src.len(), |&(o, _)| o)
    }

    /// Advance one char, maintaining the line counter.
    fn bump(&mut self) {
        if let Some(&(_, c)) = self.chars.get(self.pos) {
            if c == '\n' {
                self.line += 1;
            }
        }
        self.pos += 1;
    }

    fn emit(&mut self, kind: TokenKind, start_idx: usize, line: u32, depth: u32) {
        self.tokens.push(Token {
            kind,
            start: self.offset(start_idx),
            end: self.offset(self.pos),
            line,
            depth,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match c {
                c if c.is_whitespace() => self.bump(),
                '/' if self.peek(1) == Some('/') => {
                    while self.peek(0).is_some_and(|c| c != '\n') {
                        self.bump();
                    }
                }
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(start, line),
                'b' | 'c' | 'r' if self.literal_prefix().is_some() => {
                    // `b"..."`, `r"..."`, `br#"..."#`, `c"..."` — consume
                    // the prefix, then the (possibly raw) string body.
                    let (prefix_len, raw) = self.literal_prefix().unwrap_or((1, false));
                    for _ in 0..prefix_len {
                        self.bump();
                    }
                    if raw {
                        self.raw_string(start, line);
                    } else {
                        self.string(start, line);
                    }
                }
                '\'' => self.char_or_lifetime(start, line),
                c if c.is_alphabetic() || c == '_' => {
                    while self
                        .peek(0)
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                    {
                        self.bump();
                    }
                    // Raw identifier `r#name` is lexed as one Ident by the
                    // prefix check above failing (no quote); `r#` followed
                    // by an ident-start char merges here via Punct '#'
                    // handling below — close enough for rule matching.
                    self.emit(TokenKind::Ident, start, line, self.depth);
                }
                c if c.is_ascii_digit() => self.number(start, line),
                '{' => {
                    self.bump();
                    self.emit(TokenKind::Punct, start, line, self.depth);
                    self.depth = self.depth.saturating_add(1);
                }
                '}' => {
                    self.bump();
                    self.depth = self.depth.saturating_sub(1);
                    self.emit(TokenKind::Punct, start, line, self.depth);
                }
                _ => {
                    self.bump();
                    self.emit(TokenKind::Punct, start, line, self.depth);
                }
            }
        }
        self.tokens
    }

    /// `b` / `r` / `c` / `br` / `cr` prefix directly before a `"` (raw if
    /// the prefix contains `r`, with optional `#`s). Returns the prefix
    /// length in chars and whether the string body is raw.
    fn literal_prefix(&self) -> Option<(usize, bool)> {
        let (mut i, mut raw) = match self.peek(0)? {
            'b' | 'c' => (1, false),
            'r' => (1, true),
            _ => return None,
        };
        if !raw && self.peek(1) == Some('r') {
            i = 2;
            raw = true;
        }
        if raw {
            let mut j = i;
            while self.peek(j) == Some('#') {
                j += 1;
            }
            (self.peek(j) == Some('"')).then_some((i, true))
        } else {
            (self.peek(i) == Some('"')).then_some((i, false))
        }
    }

    fn block_comment(&mut self) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => self.bump(),
                (None, _) => return, // unterminated: swallow to EOF
            }
        }
    }

    /// Cooked string body starting at the opening `"` (cursor is on it).
    fn string(&mut self, start: usize, line: u32) {
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                Some('\\') => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                Some('"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
                None => break, // unterminated
            }
        }
        self.emit(TokenKind::Str, start, line, self.depth);
    }

    /// Raw string body: cursor is on the first `#` or the `"`.
    fn raw_string(&mut self, start: usize, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some('"') {
            // `r#ident` raw identifier: emit the ident we already partly
            // consumed as one Ident token.
            while self
                .peek(0)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                self.bump();
            }
            self.emit(TokenKind::Ident, start, line, self.depth);
            return;
        }
        self.bump(); // opening quote
        'outer: loop {
            match self.peek(0) {
                Some('"') => {
                    if (1..=hashes).all(|k| self.peek(k) == Some('#')) {
                        for _ in 0..=hashes {
                            self.bump();
                        }
                        break 'outer;
                    }
                    self.bump();
                }
                Some(_) => self.bump(),
                None => break 'outer, // unterminated
            }
        }
        self.emit(TokenKind::Str, start, line, self.depth);
    }

    /// `'x'` / `'\n'` char literals vs `'a` lifetimes — same lookahead
    /// rule as the line scanner: a char literal closes within two chars.
    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        let is_char = match self.peek(1) {
            Some('\\') => true,
            Some(_) => self.peek(2) == Some('\''),
            None => false,
        };
        self.bump(); // opening quote
        if is_char {
            if self.peek(0) == Some('\\') {
                self.bump();
                if self.peek(0).is_some() {
                    self.bump();
                }
                // Multi-char escapes (`'\u{1F980}'`, `'\x7F'`): consume to
                // the closing quote.
                while self.peek(0).is_some_and(|c| c != '\'' && c != '\n') {
                    self.bump();
                }
            } else if self.peek(0).is_some() {
                self.bump();
            }
            if self.peek(0) == Some('\'') {
                self.bump();
            }
            self.emit(TokenKind::Char, start, line, self.depth);
        } else {
            while self
                .peek(0)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                self.bump();
            }
            self.emit(TokenKind::Lifetime, start, line, self.depth);
        }
    }

    fn number(&mut self, start: usize, line: u32) {
        // Digits, `_`, alphanumeric suffixes/radix chars, and a single
        // `.` when followed by a digit (so `0..5` stays three tokens).
        while let Some(c) = self.peek(0) {
            let fraction_dot = c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit());
            if c.is_ascii_alphanumeric() || c == '_' || fraction_dot {
                self.bump();
            } else {
                break;
            }
        }
        self.emit(TokenKind::Number, start, line, self.depth);
    }
}

/// Line ranges (1-based, inclusive) covered by `#[cfg(test)]`-gated items
/// and `#[test]` functions. PANIC/IO/LOCK rules skip findings inside
/// them: test code legitimately unwraps and writes scratch files, and
/// burying the signal under hundreds of test findings would make the
/// crash-safety families unusable.
pub fn test_regions(src: &str, tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions: Vec<(u32, u32)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let matched = match_attr(src, tokens, i, &["cfg", "(", "test", ")"])
            .or_else(|| match_attr(src, tokens, i, &["test"]));
        let Some(after_attr) = matched else {
            i += 1;
            continue;
        };
        // The attribute decorates the next item: its body is the first
        // `{` at the attribute's depth. Stop the search at a `;` or a
        // shallower depth (attribute on a non-block item).
        let attr_depth = tokens[i].depth;
        let mut j = after_attr;
        let mut open = None;
        while let Some(t) = tokens.get(j) {
            if t.depth < attr_depth || (t.kind == TokenKind::Punct && t.text(src) == ";") {
                break;
            }
            if t.kind == TokenKind::Punct && t.text(src) == "{" && t.depth == attr_depth {
                open = Some(j);
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = after_attr;
            continue;
        };
        // Matching close: first `}` at the same depth after the open.
        let mut close = tokens.len().saturating_sub(1);
        for (k, t) in tokens.iter().enumerate().skip(open + 1) {
            if t.kind == TokenKind::Punct && t.text(src) == "}" && t.depth == attr_depth {
                close = k;
                break;
            }
        }
        regions.push((tokens[i].line, tokens[close].line));
        i = close + 1;
    }
    regions
}

/// Is `line` inside any of `regions` (as returned by [`test_regions`])?
pub fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(lo, hi)| lo <= line && line <= hi)
}

/// Match `#[` + `inner` + `]` starting at token `i`; returns the index
/// past the closing `]`.
fn match_attr(src: &str, tokens: &[Token], i: usize, inner: &[&str]) -> Option<usize> {
    let mut j = i;
    for expect in ["#", "["].iter().chain(inner).chain(["]"].iter()) {
        if tokens.get(j)?.text(src) != *expect {
            return None;
        }
        j += 1;
    }
    Some(j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src)
            .iter()
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn idents_puncts_and_calls() {
        assert_eq!(
            texts("foo.unwrap();"),
            vec!["foo", ".", "unwrap", "(", ")", ";"]
        );
    }

    #[test]
    fn string_contents_are_opaque() {
        let src = "let s = \"x.unwrap()\"; done();";
        let toks = tokenize(src);
        assert!(toks
            .iter()
            .all(|t| t.kind != TokenKind::Ident || t.text(src) != "unwrap"));
        assert!(toks.iter().any(|t| t.is(src, "done")));
    }

    #[test]
    fn raw_strings_and_bytes() {
        let src = r##"let p = r#"a.unwrap()"#; let b = b"x"; t();"##;
        let toks = tokenize(src);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 2);
        assert!(toks.iter().any(|t| t.is(src, "t")));
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.is(src, "unwrap")));
    }

    #[test]
    fn comments_produce_no_tokens() {
        let src = "a(); // x.unwrap()\n/* b.expect() /* nested */ */ c();";
        let toks = tokenize(src);
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(idents, vec!["a", "c"]);
    }

    #[test]
    fn depth_tracks_braces() {
        let src = "fn f() { if x { y(); } }";
        let toks = tokenize(src);
        let y = toks.iter().find(|t| t.is(src, "y")).unwrap();
        assert_eq!(y.depth, 2);
        let f = toks.iter().find(|t| t.is(src, "f")).unwrap();
        assert_eq!(f.depth, 0);
        // Opening and closing braces pair up at the same depth.
        let braces: Vec<_> = toks
            .iter()
            .filter(|t| t.is(src, "{") || t.is(src, "}"))
            .map(|t| t.depth)
            .collect();
        assert_eq!(braces, vec![0, 1, 1, 0]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'y'; let e = '\\n'; }";
        let toks = tokenize(src);
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 2);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        assert_eq!(texts("0..5"), vec!["0", ".", ".", "5"]);
        assert_eq!(texts("1.5e3"), vec!["1.5e3"]);
        assert_eq!(texts("0xFFu32"), vec!["0xFFu32"]);
    }

    #[test]
    fn lines_are_tracked() {
        let src = "a();\nb();\n\nc();";
        let toks = tokenize(src);
        let line_of = |w: &str| toks.iter().find(|t| t.is(src, w)).unwrap().line;
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 2);
        assert_eq!(line_of("c"), 4);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in [
            "\"abc", "r#\"abc", "/* abc", "'", "b\"", "r###", "x.y[", "'\\",
        ] {
            let _ = tokenize(src);
        }
    }

    #[test]
    fn cfg_test_regions_cover_the_mod() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn after() {}\n";
        let toks = tokenize(src);
        let regions = test_regions(src, &toks);
        assert!(in_regions(&regions, 3));
        assert!(in_regions(&regions, 5));
        assert!(!in_regions(&regions, 1));
        assert!(!in_regions(&regions, 7));
    }

    #[test]
    fn test_fn_region_is_scoped_to_the_fn() {
        let src = "#[test]\nfn t() {\n  a.unwrap();\n}\nfn live() { b.unwrap(); }\n";
        let toks = tokenize(src);
        let regions = test_regions(src, &toks);
        assert!(in_regions(&regions, 3));
        assert!(!in_regions(&regions, 5));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() { a.unwrap(); }\n";
        let toks = tokenize(src);
        assert!(test_regions(src, &toks).is_empty());
    }
}
