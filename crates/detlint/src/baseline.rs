//! Committed-baseline gating.
//!
//! Growing an analyzer on a live codebase has a bootstrapping problem: the
//! day a new rule family lands, the workspace already violates it in dozens
//! of places, and failing CI on all of them at once blocks every unrelated
//! PR. The baseline file records the findings that existed when the rule
//! shipped; the lint gate then fails only on *new* findings, while the
//! recorded ones are burned down explicitly (each burn-down shrinks the
//! committed file, which reviewers see in the diff).
//!
//! Entries are matched as a multiset of `(rule, file, fingerprint)` where
//! the fingerprint is the finding's snippet with whitespace collapsed —
//! stable across reformatting and across line-number churn from unrelated
//! edits in the same file, but invalidated when the flagged code itself
//! changes.

use crate::rules::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Whitespace-collapsed snippet text used to match a finding against a
/// baseline entry independent of line numbers and indentation.
pub fn fingerprint(snippet: &str) -> String {
    let mut out = String::with_capacity(snippet.len());
    let mut pending_space = false;
    for ch in snippet.trim().chars() {
        if ch.is_whitespace() {
            pending_space = !out.is_empty();
        } else {
            if pending_space {
                out.push(' ');
                pending_space = false;
            }
            out.push(ch);
        }
    }
    out
}

fn key(rule: &str, file: &str, fp: &str) -> String {
    format!("{rule}\t{file}\t{fp}")
}

/// A multiset of accepted findings, keyed `rule \t file \t fingerprint`.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    entries: BTreeMap<String, usize>,
}

impl Baseline {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total entry count (multiset cardinality).
    pub fn len(&self) -> usize {
        self.entries.values().sum()
    }

    /// Parse the committed `lint.baseline` format: one tab-separated
    /// `CODE\tpath\tfingerprint` entry per line; `#` comments and blank
    /// lines ignored. Duplicate lines accumulate (multiset).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim_end();
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let (code, file, fp) = match (parts.next(), parts.next(), parts.next()) {
                (Some(c), Some(f), Some(p)) if !c.is_empty() && !f.is_empty() => (c, f, p),
                _ => {
                    return Err(format!(
                        "baseline line {}: expected `CODE<TAB>path<TAB>fingerprint`",
                        idx + 1
                    ))
                }
            };
            *entries.entry(key(code, file, fp)).or_insert(0) += 1;
        }
        Ok(Baseline { entries })
    }

    /// Build a baseline that accepts exactly the given findings.
    pub fn from_findings<'a>(findings: impl IntoIterator<Item = &'a Finding>) -> Baseline {
        let mut entries = BTreeMap::new();
        for f in findings {
            let k = key(f.rule.code(), &f.file, &fingerprint(&f.snippet));
            *entries.entry(k).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Render the committed file format: sorted, one entry per line,
    /// duplicates repeated. Byte-stable for a given entry set.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("# detlint baseline — accepted findings, one `CODE<TAB>path<TAB>fingerprint` per line.\n");
        out.push_str(
            "# Regenerate with `e2clab lint --update-baseline`; shrink it by fixing findings.\n",
        );
        for (k, count) in &self.entries {
            for _ in 0..*count {
                let _ = writeln!(out, "{k}");
            }
        }
        out
    }

    /// Consume one matching entry for the finding if present. Returns true
    /// when the finding was covered by the baseline.
    pub fn consume(&mut self, f: &Finding) -> bool {
        let k = key(f.rule.code(), &f.file, &fingerprint(&f.snippet));
        match self.entries.get_mut(&k) {
            Some(count) if *count > 0 => {
                *count -= 1;
                if *count == 0 {
                    self.entries.remove(&k);
                }
                true
            }
            _ => false,
        }
    }

    /// Entries never consumed — findings that were fixed (or moved) since
    /// the baseline was recorded. Reported so the file gets re-shrunk.
    pub fn stale(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn finding(rule: Rule, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 1,
            message: String::new(),
            snippet: snippet.to_string(),
            suppression: None,
        }
    }

    #[test]
    fn fingerprint_collapses_whitespace() {
        assert_eq!(fingerprint("  let x =\t1;  "), "let x = 1;");
        assert_eq!(fingerprint("a\n b"), "a b");
        assert_eq!(fingerprint(""), "");
    }

    #[test]
    fn roundtrip_parse_render() {
        let f1 = finding(Rule::UnwrapInCritical, "a.rs", "x.unwrap()");
        let f2 = finding(Rule::RawArtifactWrite, "b.rs", "fs::write(p, b)");
        let b = Baseline::from_findings([&f1, &f2, &f1]);
        assert_eq!(b.len(), 3);
        let text = b.render();
        let b2 = Baseline::parse(&text).unwrap();
        assert_eq!(b2.len(), 3);
        assert_eq!(b2.render(), text);
    }

    #[test]
    fn consume_is_multiset_aware() {
        let f = finding(Rule::PanicMacro, "a.rs", "panic!(\"x\")");
        let mut b = Baseline::from_findings([&f, &f]);
        assert!(b.consume(&f));
        assert!(b.consume(&f));
        assert!(!b.consume(&f));
        assert_eq!(b.stale(), 0);
    }

    #[test]
    fn unconsumed_entries_are_stale() {
        let f = finding(Rule::LockAcrossWal, "a.rs", "guard.append(&e)");
        let b = Baseline::from_findings([&f]);
        assert_eq!(b.stale(), 1);
    }

    #[test]
    fn line_number_churn_does_not_invalidate() {
        let mut f = finding(Rule::SliceIndex, "a.rs", "buf[4..8]");
        let mut b = Baseline::from_findings([&f]);
        f.line = 99;
        assert!(b.consume(&f));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Baseline::parse("PANIC001 no tabs here").is_err());
        assert!(Baseline::parse("# fine\n\nPANIC001\ta.rs\tfp\n").is_ok());
    }
}
