//! Recursive `.rs` file discovery with deterministic (sorted) ordering.

use std::io;
use std::path::{Path, PathBuf};

/// Collect every `.rs` file under `root`, skipping directories whose
/// *name* matches an entry in `skip_dirs` (e.g. `target`, `vendor`,
/// `.git`). The result is sorted so lint output never depends on
/// filesystem enumeration order.
pub fn collect_rust_files(root: &Path, skip_dirs: &[String]) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let file_type = entry.file_type()?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if file_type.is_dir() {
                if !skip_dirs.iter().any(|s| s.as_str() == name) {
                    stack.push(path);
                }
            } else if file_type.is_file() && name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::collect_rust_files;

    #[test]
    fn skips_configured_dirs_and_sorts() {
        let tmp = std::env::temp_dir().join(format!("detlint-walk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        std::fs::create_dir_all(tmp.join("src")).unwrap();
        std::fs::create_dir_all(tmp.join("target")).unwrap();
        std::fs::write(tmp.join("src/b.rs"), "fn b() {}\n").unwrap();
        std::fs::write(tmp.join("src/a.rs"), "fn a() {}\n").unwrap();
        std::fs::write(tmp.join("target/x.rs"), "fn x() {}\n").unwrap();
        std::fs::write(tmp.join("notes.txt"), "not rust\n").unwrap();

        let files = collect_rust_files(&tmp, &["target".to_string()]).unwrap();
        let names: Vec<_> = files
            .iter()
            .map(|p| {
                p.strip_prefix(&tmp)
                    .unwrap()
                    .to_string_lossy()
                    .replace('\\', "/")
            })
            .collect();
        assert_eq!(names, vec!["src/a.rs", "src/b.rs"]);
        std::fs::remove_dir_all(&tmp).unwrap();
    }
}
