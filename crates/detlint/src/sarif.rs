//! Machine-readable output: a hand-rendered SARIF 2.1.0 subset and a
//! compact custom JSON format.
//!
//! Both renderers emit keys in a fixed order and findings in the report's
//! already-deterministic (path, line, rule) order, with no timestamps or
//! absolute paths — two runs over the same tree produce byte-identical
//! output, which is what lets CI diff the artifact and the tests commit a
//! golden fixture. The SARIF subset carries exactly what code-scanning
//! UIs need: the rule table, per-result level/message/location, and a
//! `partialFingerprints` entry matching the baseline fingerprint so
//! external tools dedupe the same way the baseline gate does.

use crate::baseline::fingerprint;
use crate::rules::{Finding, Rule};
use crate::Report;
use std::fmt::Write as _;

/// JSON string escape: quotes, backslashes, and control characters.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn sarif_result(out: &mut String, f: &Finding, level: &str, baselined: bool, indent: &str) {
    let _ = writeln!(out, "{indent}{{");
    let _ = writeln!(out, "{indent}  \"ruleId\": \"{}\",", f.rule.code());
    let _ = writeln!(out, "{indent}  \"ruleIndex\": {},", f.rule.index());
    let _ = writeln!(out, "{indent}  \"level\": \"{level}\",");
    let _ = writeln!(
        out,
        "{indent}  \"message\": {{ \"text\": \"{}\" }},",
        esc(&f.message)
    );
    let _ = writeln!(out, "{indent}  \"locations\": [");
    let _ = writeln!(out, "{indent}    {{");
    let _ = writeln!(out, "{indent}      \"physicalLocation\": {{");
    let _ = writeln!(
        out,
        "{indent}        \"artifactLocation\": {{ \"uri\": \"{}\" }},",
        esc(&f.file)
    );
    let _ = writeln!(
        out,
        "{indent}        \"region\": {{ \"startLine\": {}, \"snippet\": {{ \"text\": \"{}\" }} }}",
        f.line,
        esc(f.snippet.trim_end())
    );
    let _ = writeln!(out, "{indent}      }}");
    let _ = writeln!(out, "{indent}    }}");
    let _ = writeln!(out, "{indent}  ],");
    let _ = write!(
        out,
        "{indent}  \"partialFingerprints\": {{ \"detlint/v1\": \"{}\" }}",
        esc(&fingerprint(&f.snippet))
    );
    if baselined {
        let _ = writeln!(out, ",");
        let _ = writeln!(
            out,
            "{indent}  \"suppressions\": [ {{ \"kind\": \"external\", \"justification\": \"accepted in lint.baseline\" }} ]"
        );
    } else {
        let _ = writeln!(out);
    }
    let _ = write!(out, "{indent}}}");
}

/// Render the report as a SARIF 2.1.0 subset. Errors map to level
/// `error`, warnings to `warning`; baselined findings are included with an
/// external-suppression marker so scanners show them as accepted, not new.
pub fn to_sarif(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n");
    out.push_str("    {\n");
    out.push_str("      \"tool\": {\n");
    out.push_str("        \"driver\": {\n");
    out.push_str("          \"name\": \"detlint\",\n");
    let _ = writeln!(
        out,
        "          \"version\": \"{}\",",
        env!("CARGO_PKG_VERSION")
    );
    out.push_str("          \"rules\": [\n");
    for (i, rule) in Rule::ALL.iter().enumerate() {
        let _ = write!(
            out,
            "            {{ \"id\": \"{}\", \"shortDescription\": {{ \"text\": \"{}\" }} }}",
            rule.code(),
            esc(rule.summary())
        );
        out.push_str(if i + 1 < Rule::ALL.len() { ",\n" } else { "\n" });
    }
    out.push_str("          ]\n");
    out.push_str("        }\n");
    out.push_str("      },\n");
    out.push_str("      \"results\": [\n");
    let groups: [(&[Finding], &str, bool); 3] = [
        (&report.errors, "error", false),
        (&report.warnings, "warning", false),
        (&report.baselined, "error", true),
    ];
    let total: usize = groups.iter().map(|(list, _, _)| list.len()).sum();
    let mut emitted = 0usize;
    for (list, level, baselined) in groups {
        for f in list {
            sarif_result(&mut out, f, level, baselined, "        ");
            emitted += 1;
            out.push_str(if emitted < total { ",\n" } else { "\n" });
        }
    }
    out.push_str("      ]\n");
    out.push_str("    }\n");
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn json_finding(out: &mut String, f: &Finding, indent: &str) {
    let _ = write!(
        out,
        "{indent}{{ \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"snippet\": \"{}\", \"fingerprint\": \"{}\" }}",
        f.rule.code(),
        esc(&f.file),
        f.line,
        esc(&f.message),
        esc(f.snippet.trim_end()),
        esc(&fingerprint(&f.snippet))
    );
}

/// Render the report as compact custom JSON: one object with bucketed
/// finding arrays plus scan counters. Fixed key order, byte-stable.
pub fn to_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"detlint\",\n");
    let _ = writeln!(out, "  \"version\": \"{}\",", env!("CARGO_PKG_VERSION"));
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(out, "  \"stale_baseline\": {},", report.stale_baseline);
    let buckets: [(&str, &[Finding]); 4] = [
        ("errors", &report.errors),
        ("warnings", &report.warnings),
        ("baselined", &report.baselined),
        ("suppressed", &report.suppressed),
    ];
    for (bi, (name, list)) in buckets.iter().enumerate() {
        let _ = writeln!(out, "  \"{name}\": [");
        for (i, f) in list.iter().enumerate() {
            json_finding(&mut out, f, "    ");
            out.push_str(if i + 1 < list.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]");
        out.push_str(if bi + 1 < buckets.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        let f = Finding {
            rule: Rule::RawArtifactWrite,
            file: "src/x.rs".to_string(),
            line: 7,
            message: "raw write \"quoted\"".to_string(),
            snippet: "  std::fs::write(p, b)?;\n".to_string(),
            suppression: None,
        };
        let mut r = Report {
            files_scanned: 3,
            ..Report::default()
        };
        r.errors.push(f.clone());
        r.baselined.push(Finding {
            rule: Rule::UnwrapInCritical,
            line: 2,
            ..f
        });
        r
    }

    #[test]
    fn sarif_is_byte_stable_and_escaped() {
        let r = report();
        let a = to_sarif(&r);
        let b = to_sarif(&r);
        assert_eq!(a, b);
        assert!(a.contains("\\\"quoted\\\""));
        assert!(a.contains("\"version\": \"2.1.0\""));
        assert!(a.contains("\"kind\": \"external\""));
        // Every rule appears in the driver rule table.
        for rule in Rule::ALL {
            assert!(a.contains(&format!("\"id\": \"{}\"", rule.code())));
        }
    }

    #[test]
    fn json_buckets_and_counts() {
        let r = report();
        let j = to_json(&r);
        assert!(j.contains("\"files_scanned\": 3"));
        assert!(j.contains("\"errors\": ["));
        assert!(j.contains("\"fingerprint\": \"std::fs::write(p, b)?;\""));
        assert_eq!(to_json(&r), j);
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(esc("a\u{1}b"), "a\\u0001b");
        assert_eq!(esc("tab\there"), "tab\\there");
    }
}
