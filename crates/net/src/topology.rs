//! Named groups with pairwise link constraints.
//!
//! Mirrors E2Clab's `networks.yaml`: the user names logical groups (layers
//! such as "edge", "fog", "cloud", or testbed clusters) and constrains the
//! paths between them. Lookups fall back to a default (unconstrained) link
//! when no explicit rule matches, exactly like unshaped testbed traffic.

use crate::link::LinkSpec;
use std::collections::HashMap;

/// A symmetric topology of named groups with per-pair link constraints.
#[derive(Debug, Clone)]
pub struct Topology {
    default: LinkSpec,
    // Keyed by (min, max) of the lexicographic pair so lookups are symmetric.
    links: HashMap<(String, String), LinkSpec>,
    groups: Vec<String>,
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

impl Topology {
    /// A topology whose unmatched pairs use an unconstrained link.
    pub fn new() -> Self {
        Topology {
            default: LinkSpec::unconstrained(),
            links: HashMap::new(),
            groups: Vec::new(),
        }
    }

    /// Set the fallback link used for pairs without an explicit constraint.
    pub fn with_default(mut self, spec: LinkSpec) -> Self {
        self.default = spec;
        self
    }

    /// Declare a group (idempotent).
    pub fn add_group(&mut self, name: &str) {
        if !self.groups.iter().any(|g| g == name) {
            self.groups.push(name.to_string());
        }
    }

    fn key(a: &str, b: &str) -> (String, String) {
        if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        }
    }

    /// Constrain the path between `a` and `b` (symmetric). Also declares
    /// both groups.
    pub fn constrain(&mut self, a: &str, b: &str, spec: LinkSpec) {
        self.add_group(a);
        self.add_group(b);
        self.links.insert(Self::key(a, b), spec);
    }

    /// The link between two groups (explicit constraint, a group's
    /// self-link, or the default).
    pub fn link(&self, a: &str, b: &str) -> LinkSpec {
        self.links
            .get(&Self::key(a, b))
            .copied()
            .unwrap_or(self.default)
    }

    /// Transfer time in seconds of `bytes` between two groups.
    pub fn transfer_secs(&self, a: &str, b: &str, bytes: u64) -> f64 {
        self.link(a, b).transfer_secs(bytes)
    }

    /// Round-trip latency between two groups, in seconds.
    pub fn rtt_secs(&self, a: &str, b: &str) -> f64 {
        2.0 * self.link(a, b).latency_ms / 1e3
    }

    /// All declared groups in insertion order.
    pub fn groups(&self) -> &[String] {
        &self.groups
    }

    /// Number of explicit constraints.
    pub fn constraint_count(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_cloud() -> Topology {
        let mut t = Topology::new();
        t.constrain("edge", "cloud", LinkSpec::new(50.0, 100.0));
        t.constrain("edge", "fog", LinkSpec::new(10.0, 500.0));
        t
    }

    #[test]
    fn constraints_are_symmetric() {
        let t = edge_cloud();
        assert_eq!(t.link("edge", "cloud"), t.link("cloud", "edge"));
        assert_eq!(t.link("edge", "cloud").latency_ms, 50.0);
    }

    #[test]
    fn unmatched_pairs_use_default() {
        let t = edge_cloud();
        assert_eq!(t.link("fog", "cloud"), LinkSpec::unconstrained());
        let custom = Topology::new().with_default(LinkSpec::new(1.0, 10.0));
        assert_eq!(custom.link("x", "y").bandwidth_mbps, 10.0);
    }

    #[test]
    fn groups_declared_by_constrain() {
        let t = edge_cloud();
        assert_eq!(t.groups(), &["edge", "cloud", "fog"]);
        assert_eq!(t.constraint_count(), 2);
    }

    #[test]
    fn rtt_is_twice_latency() {
        let t = edge_cloud();
        assert!((t.rtt_secs("edge", "cloud") - 0.1).abs() < 1e-12);
    }

    #[test]
    fn transfer_uses_pair_link() {
        let t = edge_cloud();
        // 100 Mbps link: 12.5 MB takes 1 s + 50 ms latency.
        let secs = t.transfer_secs("edge", "cloud", 12_500_000);
        assert!((secs - 1.05).abs() < 1e-9, "{secs}");
    }

    #[test]
    fn add_group_idempotent() {
        let mut t = Topology::new();
        t.add_group("a");
        t.add_group("a");
        assert_eq!(t.groups().len(), 1);
    }
}
