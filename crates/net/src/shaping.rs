//! Traffic shaping primitives.

/// A token bucket rate limiter: tokens accrue at `rate` per second up to
/// `burst`; sending `n` units either succeeds immediately or reports how
/// long the sender must wait.
///
/// Used by shaped links to model `tc`'s rate limiting: short bursts pass at
/// line rate, sustained traffic is clamped to the configured rate.
#[derive(Debug, Clone, Copy)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: f64,
}

impl TokenBucket {
    /// A bucket that refills at `rate` tokens/second and holds at most
    /// `burst` tokens; starts full.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0 && burst > 0.0, "rate and burst must be positive");
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: 0.0,
        }
    }

    fn refill(&mut self, now: f64) {
        assert!(now >= self.last, "time went backwards");
        self.tokens = (self.tokens + (now - self.last) * self.rate).min(self.burst);
        self.last = now;
    }

    /// Try to consume `n` tokens at time `now`. On success returns
    /// `Ok(())`; otherwise `Err(wait)` with the seconds until enough tokens
    /// accrue (the tokens are *not* reserved).
    pub fn try_consume(&mut self, now: f64, n: f64) -> Result<(), f64> {
        self.refill(now);
        if n <= self.tokens {
            self.tokens -= n;
            Ok(())
        } else {
            Err((n - self.tokens) / self.rate)
        }
    }

    /// Tokens currently available at `now`.
    pub fn available(&mut self, now: f64) -> f64 {
        self.refill(now);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_passes_then_limits() {
        let mut tb = TokenBucket::new(10.0, 5.0);
        assert!(tb.try_consume(0.0, 5.0).is_ok()); // full burst
        let err = tb.try_consume(0.0, 1.0).unwrap_err();
        assert!((err - 0.1).abs() < 1e-12); // 1 token @ 10/s = 0.1 s
    }

    #[test]
    fn refills_at_rate_up_to_burst() {
        let mut tb = TokenBucket::new(10.0, 5.0);
        tb.try_consume(0.0, 5.0).unwrap();
        assert!((tb.available(0.2) - 2.0).abs() < 1e-12);
        // Long idle: capped at burst.
        assert!((tb.available(100.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sustained_throughput_equals_rate() {
        let mut tb = TokenBucket::new(100.0, 10.0);
        let mut sent = 0.0f64;
        let mut now = 0.0f64;
        while now < 10.0 {
            match tb.try_consume(now, 1.0) {
                // Floor the advance: floating-point residue can make
                // `wait` vanishingly small, which would stall the loop.
                Ok(()) => sent += 1.0,
                Err(wait) => now += wait.max(1e-6),
            }
        }
        // ~rate * duration + initial burst (the 1e-6 floor costs a
        // fraction of a token over the whole run).
        assert!((sent - 1010.0).abs() <= 3.0, "sent {sent}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_rate() {
        TokenBucket::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn rejects_time_reversal() {
        let mut tb = TokenBucket::new(1.0, 1.0);
        tb.available(5.0);
        tb.available(4.0);
    }
}
