//! # e2c-net — network emulation substrate
//!
//! E2Clab applies `tc netem`-style constraints (delay, rate, loss) between
//! the Edge, Fog and Cloud layers of an experiment. This crate reproduces
//! that capability for the simulated testbed:
//!
//! * [`LinkSpec`] — the constraint triple (latency, bandwidth, loss);
//! * [`Topology`] — named groups with pairwise constraints and transfer-time
//!   computation;
//! * [`SharedLink`] — a link whose bandwidth is processor-shared among
//!   concurrent flows (what a pool of simultaneous image downloads sees);
//! * [`TokenBucket`] — a classic rate limiter used for shaped links.

pub mod link;
pub mod shaping;
pub mod topology;

pub use link::{LinkSpec, SharedLink};
pub use shaping::TokenBucket;
pub use topology::Topology;
