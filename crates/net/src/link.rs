//! Link constraints and the shared-bandwidth flow model.

/// A `tc netem`-style constraint set on a (directed) link: one-way latency,
/// bandwidth, and packet loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation delay in milliseconds.
    pub latency_ms: f64,
    /// Link rate in megabits per second.
    pub bandwidth_mbps: f64,
    /// Packet loss probability in `[0, 1)`. Loss inflates the effective
    /// transfer time by `1 / (1 - loss)` (each lost packet is retransmitted).
    pub loss: f64,
}

impl LinkSpec {
    /// A constraint with the given latency and bandwidth and no loss.
    pub fn new(latency_ms: f64, bandwidth_mbps: f64) -> Self {
        LinkSpec {
            latency_ms,
            bandwidth_mbps,
            loss: 0.0,
        }
    }

    /// Same link with a loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0,1)");
        self.loss = loss;
        self
    }

    /// An effectively unconstrained link (datacenter-local).
    pub fn unconstrained() -> Self {
        LinkSpec::new(0.05, 100_000.0)
    }

    /// Time in seconds to move `bytes` across this link as a single flow:
    /// propagation + serialization, inflated by retransmissions.
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        assert!(self.bandwidth_mbps > 0.0, "zero-bandwidth link");
        let serialization = (bytes as f64 * 8.0) / (self.bandwidth_mbps * 1e6);
        let retrans = 1.0 / (1.0 - self.loss);
        self.latency_ms / 1e3 + serialization * retrans
    }

    /// Effective per-flow bandwidth (Mbps) when `flows` share the link
    /// fairly.
    pub fn per_flow_mbps(&self, flows: usize) -> f64 {
        if flows <= 1 {
            self.bandwidth_mbps
        } else {
            self.bandwidth_mbps / flows as f64
        }
    }
}

/// A link whose bandwidth is fair-shared among active flows.
///
/// This is the steady-state abstraction the Pl@ntNet download stage uses:
/// with `n` concurrent downloads on a `B` Mbps link each download sees
/// `B / n`. The struct tracks the active flow count and answers "how long
/// would this transfer take if the current concurrency persisted" — an
/// approximation that avoids rescheduling every in-flight transfer on each
/// membership change while preserving the congestion effect.
#[derive(Debug, Clone)]
pub struct SharedLink {
    spec: LinkSpec,
    active_flows: usize,
    started: u64,
    finished: u64,
}

impl SharedLink {
    /// New idle link.
    pub fn new(spec: LinkSpec) -> Self {
        SharedLink {
            spec,
            active_flows: 0,
            started: 0,
            finished: 0,
        }
    }

    /// The underlying constraint.
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Register a new flow and return its estimated transfer time in
    /// seconds for `bytes`, given the congestion it joins.
    pub fn begin_flow(&mut self, bytes: u64) -> f64 {
        self.active_flows += 1;
        self.started += 1;
        let eff = LinkSpec {
            bandwidth_mbps: self.spec.per_flow_mbps(self.active_flows),
            ..self.spec
        };
        eff.transfer_secs(bytes)
    }

    /// Mark one flow finished.
    pub fn end_flow(&mut self) {
        assert!(self.active_flows > 0, "end_flow on idle link");
        self.active_flows -= 1;
        self.finished += 1;
    }

    /// Currently active flows.
    pub fn active(&self) -> usize {
        self.active_flows
    }

    /// Flows started since creation.
    pub fn total_started(&self) -> u64 {
        self.started
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_has_latency_and_serialization() {
        // 10 ms + 1 MB over 8 Mbps = 10ms + 1s.
        let l = LinkSpec::new(10.0, 8.0);
        let t = l.transfer_secs(1_000_000);
        assert!((t - 1.010).abs() < 1e-9, "{t}");
    }

    #[test]
    fn loss_inflates_transfer() {
        let clean = LinkSpec::new(0.0, 8.0);
        let lossy = LinkSpec::new(0.0, 8.0).with_loss(0.5);
        let b = 1_000_000;
        assert!((lossy.transfer_secs(b) / clean.transfer_secs(b) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "loss must be in [0,1)")]
    fn full_loss_rejected() {
        let _ = LinkSpec::new(0.0, 1.0).with_loss(1.0);
    }

    #[test]
    fn per_flow_bandwidth_shares_fairly() {
        let l = LinkSpec::new(0.0, 100.0);
        assert_eq!(l.per_flow_mbps(0), 100.0);
        assert_eq!(l.per_flow_mbps(1), 100.0);
        assert_eq!(l.per_flow_mbps(4), 25.0);
    }

    #[test]
    fn shared_link_congestion_slows_new_flows() {
        let mut link = SharedLink::new(LinkSpec::new(0.0, 80.0));
        let solo = link.begin_flow(1_000_000); // 1 flow @ 80 Mbps = 0.1 s
        assert!((solo - 0.1).abs() < 1e-9);
        let crowded = link.begin_flow(1_000_000); // 2 flows -> 40 Mbps each
        assert!((crowded - 0.2).abs() < 1e-9);
        assert_eq!(link.active(), 2);
        link.end_flow();
        link.end_flow();
        assert_eq!(link.active(), 0);
        assert_eq!(link.total_started(), 2);
    }

    #[test]
    #[should_panic(expected = "end_flow on idle link")]
    fn end_flow_on_idle_panics() {
        let mut link = SharedLink::new(LinkSpec::unconstrained());
        link.end_flow();
    }

    #[test]
    fn unconstrained_is_fast() {
        let l = LinkSpec::unconstrained();
        assert!(l.transfer_secs(10_000_000) < 0.01);
    }
}
