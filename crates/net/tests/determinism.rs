//! Integration-level determinism for the network substrate: the crate is
//! pure arithmetic (no RNG, no wall clock), so two independent
//! instantiations of the same topology must agree bit-for-bit on every
//! derived quantity — the property the deterministic deployment layer
//! leans on when it replays an experiment.

use e2c_net::{LinkSpec, SharedLink, TokenBucket, Topology};

/// The paper's three-layer continuum with asymmetric constraints.
fn build_topology() -> Topology {
    let mut topo = Topology::new().with_default(LinkSpec::unconstrained());
    for group in ["edge", "fog", "cloud"] {
        topo.add_group(group);
    }
    topo.constrain("edge", "fog", LinkSpec::new(25.0, 100.0).with_loss(0.01));
    topo.constrain("fog", "cloud", LinkSpec::new(10.0, 1000.0));
    topo.constrain("edge", "cloud", LinkSpec::new(60.0, 50.0).with_loss(0.02));
    topo
}

#[test]
fn independent_topology_instantiations_agree_bitwise() {
    let a = build_topology();
    let b = build_topology();
    assert_eq!(a.groups(), b.groups());
    assert_eq!(a.constraint_count(), b.constraint_count());
    let sizes = [1u64, 1_000, 65_536, 5_000_000, u32::MAX as u64];
    for x in ["edge", "fog", "cloud"] {
        for y in ["edge", "fog", "cloud"] {
            assert_eq!(
                a.rtt_secs(x, y).to_bits(),
                b.rtt_secs(x, y).to_bits(),
                "rtt {x}-{y}"
            );
            for bytes in sizes {
                assert_eq!(
                    a.transfer_secs(x, y, bytes).to_bits(),
                    b.transfer_secs(x, y, bytes).to_bits(),
                    "transfer {x}-{y} {bytes}B"
                );
            }
        }
    }
}

#[test]
fn topology_is_symmetric_and_ordering_insensitive() {
    // Constraints are pairwise: the (a, b) and (b, a) lookups must agree,
    // and the order in which constraints were added must not matter.
    let a = build_topology();
    let mut reordered = Topology::new().with_default(LinkSpec::unconstrained());
    for group in ["edge", "fog", "cloud"] {
        reordered.add_group(group);
    }
    reordered.constrain("edge", "cloud", LinkSpec::new(60.0, 50.0).with_loss(0.02));
    reordered.constrain("fog", "cloud", LinkSpec::new(10.0, 1000.0));
    reordered.constrain("edge", "fog", LinkSpec::new(25.0, 100.0).with_loss(0.01));
    for x in ["edge", "fog", "cloud"] {
        for y in ["edge", "fog", "cloud"] {
            assert_eq!(
                a.transfer_secs(x, y, 1_000_000).to_bits(),
                a.transfer_secs(y, x, 1_000_000).to_bits(),
                "asymmetric {x}-{y}"
            );
            assert_eq!(
                a.transfer_secs(x, y, 1_000_000).to_bits(),
                reordered.transfer_secs(x, y, 1_000_000).to_bits(),
                "order-sensitive {x}-{y}"
            );
        }
    }
}

#[test]
fn shared_link_flow_sequences_replay_identically() {
    // A scripted sequence of flow starts/ends (the shape of a trial's
    // concurrent image downloads) produces the same per-flow transfer
    // times on two independent links.
    let script: &[(bool, u64)] = &[
        (true, 100_000),
        (true, 2_000_000),
        (false, 0),
        (true, 50_000),
        (true, 750_000),
        (false, 0),
        (false, 0),
        (true, 5_000_000),
        (false, 0),
        (false, 0),
    ];
    let run = || {
        let mut link = SharedLink::new(LinkSpec::new(20.0, 200.0));
        let mut times = Vec::new();
        for &(begin, bytes) in script {
            if begin {
                times.push(link.begin_flow(bytes).to_bits());
            } else {
                link.end_flow();
            }
        }
        (times, link.active(), link.total_started())
    };
    assert_eq!(run(), run());
}

#[test]
fn token_bucket_decision_sequence_is_deterministic() {
    let run = || {
        let mut bucket = TokenBucket::new(100.0, 50.0);
        let mut decisions = Vec::new();
        let mut now = 0.0;
        for step in 0..200 {
            now += 0.013;
            let n = 1.0 + (step % 7) as f64;
            match bucket.try_consume(now, n) {
                Ok(()) => decisions.push(None),
                Err(wait) => decisions.push(Some(wait.to_bits())),
            }
        }
        decisions
    };
    assert_eq!(run(), run());
}
