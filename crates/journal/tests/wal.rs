//! WAL edge cases: torn tails, checksum corruption, empty journals, and
//! appending after recovery. These are the crash shapes the resume layer
//! relies on the log to absorb.

use e2c_journal::{read_records, write_atomic, Wal};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("e2c-journal-it-{}-{name}", std::process::id()))
}

fn fresh(name: &str) -> PathBuf {
    let path = tmp(name);
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn empty_journal_opens_with_no_records() {
    let path = fresh("empty.wal");
    Wal::create(&path).unwrap();
    let (wal, records) = Wal::open(&path).unwrap();
    assert_eq!(wal.record_count(), 0);
    assert!(records.is_empty());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn torn_tail_record_is_truncated_on_open() {
    let path = fresh("torn.wal");
    let mut wal = Wal::create(&path).unwrap();
    wal.append(b"one").unwrap();
    wal.append(b"two").unwrap();
    wal.append(b"three").unwrap();
    drop(wal);
    // Chop the last record mid-payload: a kill between write and fsync.
    let full = std::fs::read(&path).unwrap();
    std::fs::write(&path, &full[..full.len() - 3]).unwrap();
    let (mut wal, records) = Wal::open(&path).unwrap();
    assert_eq!(records, vec![b"one".to_vec(), b"two".to_vec()]);
    // The torn bytes are gone from disk and appends continue cleanly.
    let on_disk = std::fs::read(&path).unwrap();
    assert_eq!(on_disk.len(), full.len() - (8 + 5));
    wal.append(b"three again").unwrap();
    drop(wal);
    let records = read_records(&path).unwrap();
    assert_eq!(
        records,
        vec![b"one".to_vec(), b"two".to_vec(), b"three again".to_vec()]
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn torn_header_is_truncated_on_open() {
    let path = fresh("torn-header.wal");
    let mut wal = Wal::create(&path).unwrap();
    wal.append(b"kept").unwrap();
    drop(wal);
    // A kill after only 5 of the 8 header bytes hit the disk.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(&[9, 0, 0, 0, 0xAA]);
    std::fs::write(&path, &bytes).unwrap();
    let (wal, records) = Wal::open(&path).unwrap();
    assert_eq!(wal.record_count(), 1);
    assert_eq!(records, vec![b"kept".to_vec()]);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checksum_mismatch_truncates_from_the_corrupt_frame() {
    let path = fresh("crc.wal");
    let mut wal = Wal::create(&path).unwrap();
    wal.append(b"good").unwrap();
    wal.append(b"flipped").unwrap();
    wal.append(b"after").unwrap();
    drop(wal);
    // Flip one payload byte of the middle record; it and everything after
    // it are unacknowledgeable and must be dropped.
    let mut bytes = std::fs::read(&path).unwrap();
    let second_payload = 8 + 4 + 8; // frame 1 + header of frame 2
    bytes[second_payload] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let (wal, records) = Wal::open(&path).unwrap();
    assert_eq!(wal.record_count(), 1);
    assert_eq!(records, vec![b"good".to_vec()]);
    assert_eq!(std::fs::read(&path).unwrap().len(), 8 + 4);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn absurd_length_field_is_treated_as_corruption() {
    let path = fresh("length.wal");
    let mut wal = Wal::create(&path).unwrap();
    wal.append(b"ok").unwrap();
    drop(wal);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(b"garbage garbage");
    std::fs::write(&path, &bytes).unwrap();
    let (_, records) = Wal::open(&path).unwrap();
    assert_eq!(records, vec![b"ok".to_vec()]);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn read_records_tolerates_a_torn_tail_without_writing() {
    let path = fresh("readonly.wal");
    let mut wal = Wal::create(&path).unwrap();
    wal.append(b"a").unwrap();
    drop(wal);
    let mut bytes = std::fs::read(&path).unwrap();
    let len = bytes.len();
    bytes.extend_from_slice(&[1, 0]);
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(read_records(&path).unwrap(), vec![b"a".to_vec()]);
    // Non-destructive: the torn tail is still on disk.
    assert_eq!(std::fs::read(&path).unwrap().len(), len + 2);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn atomic_write_leaves_no_tmp_behind_and_creates_parents() {
    let dir = tmp("atomic-dir");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("nested").join("out.txt");
    write_atomic(&path, b"payload").unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), b"payload");
    let entries: Vec<_> = std::fs::read_dir(path.parent().unwrap())
        .unwrap()
        .flatten()
        .map(|e| e.file_name())
        .collect();
    assert_eq!(entries.len(), 1, "{entries:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}
