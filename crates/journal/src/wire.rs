//! Shared text-wire primitives for tab-separated record formats.
//!
//! Both line protocols in this workspace — the run journal's WAL records
//! (`e2c-tune::journal`) and the worker farm's stdio frames
//! (`e2c-tune::worker`) — spell their payloads the same way: fields
//! separated by tabs, strings escaped with exactly four sequences
//! (`\\`, `\t`, `\n`, `\r`), integers as canonical decimals and floats
//! as Rust's shortest-round-trip `Display` form. This module is that
//! spelling, factored out so the two codecs cannot drift: every accepted
//! field re-encodes byte-identically, which is the roundtrip property the
//! fuzz harness checks for both protocols.

use std::borrow::Cow;

/// Escape a payload for the tab-separated wire format. Borrows when the
/// payload needs no escaping — the overwhelmingly common case on the
/// journal hot path (fingerprints and error payloads rarely carry tabs
/// or newlines).
pub fn escape(s: &str) -> Cow<'_, str> {
    if !s
        .bytes()
        .any(|b| matches!(b, b'\\' | b'\t' | b'\n' | b'\r'))
    {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Decode an escaped field. Only the four sequences the escaper writes
/// are accepted; raw control characters and unknown escapes are
/// corruption (they could never re-encode to the same bytes).
pub fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\n' || c == '\r' {
            // The escaper always writes these as `\n` / `\r`; a literal
            // one cannot re-encode to the same bytes, so it is corruption.
            return Err("raw control character in wire field".to_string());
        }
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            // The escaper only ever writes the four sequences above.
            // Accepting `\q` as `q` (as the journal decoder once did)
            // made decode → encode lossy; these records are
            // machine-written, so an unknown escape is corruption, not
            // intent.
            Some(other) => return Err(format!("invalid escape `\\{other}` in wire field")),
            None => return Err("dangling `\\` at end of wire field".to_string()),
        }
    }
    Ok(out)
}

/// Strict canonical-decimal `u64`: ASCII digits only — no sign, no
/// leading zeros, no whitespace — exactly the spelling `Display` writes.
pub fn parse_u64(s: &str) -> Result<u64, String> {
    let canonical =
        !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()) && (s == "0" || !s.starts_with('0'));
    if !canonical {
        return Err(format!("bad integer `{s}`: not a canonical decimal"));
    }
    s.parse::<u64>()
        .map_err(|e| format!("bad integer `{s}`: {e}"))
}

/// Strict `u32` (e.g. an attempt index). Parsing as `u64` and truncating
/// with `as u32` would silently misread values ≥ 2³²; out of range is a
/// typed error instead.
pub fn parse_u32(s: &str) -> Result<u32, String> {
    u32::try_from(parse_u64(s)?).map_err(|_| format!("bad integer `{s}`: exceeds u32"))
}

/// Strict `f64`: the field must be the exact shortest-round-trip form
/// Rust's `Display` writes — the only spelling the encoders ever
/// produce. `NaN`, `inf` and `-inf` are therefore accepted (records
/// legitimately carry non-finite objective returns), while alternate
/// spellings a hand edit or corruption could introduce (`nan`, `+inf`,
/// `infinity`, `1e6`, `007`, `1.50`) are rejected: any accepted field
/// re-encodes byte-identically.
pub fn parse_f64(s: &str) -> Result<f64, String> {
    let v = s
        .parse::<f64>()
        .map_err(|e| format!("bad float `{s}`: {e}"))?;
    if v.to_string() != s {
        return Err(format!(
            "bad float `{s}`: not canonical (the wire writes `{v}`)"
        ));
    }
    Ok(v)
}

/// Optional float: `-` means absent, anything else must be canonical.
pub fn parse_opt_f64(s: &str) -> Result<Option<f64>, String> {
    if s == "-" {
        Ok(None)
    } else {
        parse_f64(s).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_borrows_the_common_case_and_roundtrips_the_rest() {
        assert!(matches!(escape("plain"), Cow::Borrowed(_)));
        for s in ["a\tb", "line\nbreak", "cr\rhere", "back\\slash", ""] {
            let escaped = escape(s);
            assert!(!escaped.contains('\t') || s.is_empty());
            assert_eq!(unescape(&escaped).unwrap(), s);
        }
    }

    #[test]
    fn unescape_rejects_corruption() {
        assert!(unescape("a\\qb").is_err());
        assert!(unescape("trailing\\").is_err());
        assert!(unescape("raw\nnewline").is_err());
        assert!(unescape("raw\rcr").is_err());
    }

    #[test]
    fn integers_must_be_canonical() {
        assert_eq!(parse_u64("0").unwrap(), 0);
        assert_eq!(parse_u64("42").unwrap(), 42);
        for bad in ["+5", "07", " 5", "5 ", "-1", "", "٤"] {
            assert!(parse_u64(bad).is_err(), "{bad:?}");
        }
        assert!(parse_u32("4294967295").is_ok());
        assert!(parse_u32("4294967296").is_err());
    }

    #[test]
    fn floats_must_be_shortest_round_trip_display() {
        for good in ["NaN", "inf", "-inf", "-0", "0.1", "1000000"] {
            let v = parse_f64(good).unwrap();
            assert_eq!(v.to_string(), good);
        }
        for bad in ["nan", "+inf", "infinity", "1e6", "00.5", "1.50", "+1"] {
            assert!(parse_f64(bad).is_err(), "{bad:?}");
        }
        assert_eq!(parse_opt_f64("-").unwrap(), None);
        assert_eq!(parse_opt_f64("2.5").unwrap(), Some(2.5));
    }
}
