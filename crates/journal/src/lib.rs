//! # e2c-journal — crash-safe persistence primitives
//!
//! Two std-only building blocks for the crash-safe optimization story:
//!
//! * [`Wal`] — a write-ahead log of opaque byte records. Each record is
//!   framed as `[u32 LE length][u32 LE CRC32][payload]`; every append is
//!   flushed and fsync'd before it returns, so a record that the caller
//!   saw acknowledged survives a process kill at any later instruction.
//!   [`Wal::open`] recovers by scanning frames from the start and
//!   truncating the file at the first torn or corrupt frame (the standard
//!   single-appender recovery rule: a bad frame can only be the
//!   interrupted tail, and anything after it was never acknowledged).
//! * [`write_atomic`] — full-file snapshot writes via a tmp sibling +
//!   `rename`, with the file and its directory fsync'd, so readers only
//!   ever observe the old bytes or the new bytes, never a truncated mix.
//! * [`wire`] — the shared tab-separated text spelling (escaping and
//!   canonical numeric forms) that both record protocols layered on this
//!   crate — the run journal and the worker-farm frames — encode with.
//!
//! The framing is deliberately dumb: no compression, no sequence numbers,
//! no format versioning beyond the frame itself. Interpretation of the
//! payload belongs to the caller (`e2c-tune`'s run journal gives records
//! meaning — including their wire version, carried in its meta record —
//! this crate only promises they are whole).

pub mod wire;

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Frame header size: 4-byte length + 4-byte CRC32, both little-endian.
/// Public so differential tests (the fuzz harness's torn-WAL oracle) can
/// compute expected recovery prefixes without re-stating the format.
pub const HEADER: usize = 8;

/// Sanity cap on a single record (64 MiB). A declared length beyond this
/// is treated as frame corruption, not an allocation request.
pub const MAX_RECORD: u32 = 64 * 1024 * 1024;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c; // detlint: allow(PANIC003) i < 256 by the loop bound; const fn evaluated at compile time
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        // detlint: allow(PANIC003) index is masked to 0..=255 and the table has 256 entries
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// An append-only write-ahead log of length- and checksum-framed records.
pub struct Wal {
    file: File,
    path: PathBuf,
    records: u64,
    /// Reusable frame assembly buffer: appends are frequent and fsync'd,
    /// so the encode step should not also pay a heap allocation each time.
    frame: Vec<u8>,
}

impl Wal {
    /// Create a fresh, empty log. Fails if `path` already exists — an
    /// existing journal must be opened (resumed), never clobbered.
    pub fn create(path: &Path) -> io::Result<Wal> {
        if let Some(parent) = parent_dir(path) {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            records: 0,
            frame: Vec::new(),
        })
    }

    /// Open an existing log, returning every intact record in append
    /// order. The file is truncated at the first torn or corrupt frame
    /// (an interrupted append's tail) and positioned for further appends.
    pub fn open(path: &Path) -> io::Result<(Wal, Vec<Vec<u8>>)> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, valid_len) = scan(&bytes);
        if valid_len as u64 != bytes.len() as u64 {
            file.set_len(valid_len as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(valid_len as u64))?;
        let n = records.len() as u64;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                records: n,
                frame: Vec::new(),
            },
            records,
        ))
    }

    /// Append one record. The frame is flushed and fsync'd before this
    /// returns: an acknowledged append survives a crash at any later
    /// point.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_RECORD)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "record too large"))?;
        self.frame.clear();
        self.frame.reserve(HEADER + payload.len());
        self.frame.extend_from_slice(&len.to_le_bytes());
        self.frame.extend_from_slice(&crc32(payload).to_le_bytes());
        self.frame.extend_from_slice(payload);
        self.file.write_all(&self.frame)?;
        self.file.sync_data()?;
        self.records += 1;
        Ok(())
    }

    /// Number of intact records (recovered + appended).
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// A little-endian `u32` at `pos`, or `None` when fewer than four bytes
/// remain — the bounds-checked primitive the frame scanner is built on.
fn read_u32_le(bytes: &[u8], pos: usize) -> Option<u32> {
    let src = bytes.get(pos..pos.checked_add(4)?)?;
    let mut word = [0u8; 4];
    word.copy_from_slice(src);
    Some(u32::from_le_bytes(word))
}

/// Scan framed records from `bytes`, stopping at the first invalid frame.
/// Returns the intact records and the byte length of the valid prefix.
/// Every access is bounds-checked: a short header, an out-of-range length
/// or a bad CRC all mean "torn tail", never a panic — recovery code that
/// aborts on the very corruption it exists to handle is no recovery.
fn scan(bytes: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    // All offset arithmetic is checked: `pos` is in-bounds here, but
    // `pos + 4` / `pos + HEADER` / `start + len` must not be assumed
    // representable — a declared length near `u32::MAX` combined with
    // an offset near the end of a large mapping would otherwise wrap
    // and turn the bounds check into a slice panic.
    while let Some(len) = read_u32_le(bytes, pos) {
        let Some(crc) = pos.checked_add(4).and_then(|p| read_u32_le(bytes, p)) else {
            break;
        };
        if len > MAX_RECORD {
            break;
        }
        let Some(start) = pos.checked_add(HEADER) else {
            break;
        };
        // A frame whose declared length (≤ MAX_RECORD, so it always fits
        // usize) runs past the end of the file is a torn tail: truncate
        // at the frame boundary, never slice past the buffer.
        let Some(payload) = start
            .checked_add(len as usize)
            .and_then(|end| bytes.get(start..end))
        else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        records.push(payload.to_vec());
        pos = start + payload.len();
    }
    (records, pos)
}

/// Scan a WAL *image* already in memory, returning the intact records and
/// the byte length of the valid prefix — [`Wal::open`]'s recovery rule
/// without touching the filesystem. This is the surface the fuzz harness
/// and the torn-tail truncation oracle drive: it lets every mutated byte
/// string exercise recovery directly, with file-backed `open` checked on
/// a sample.
pub fn scan_records(bytes: &[u8]) -> (Vec<Vec<u8>>, usize) {
    scan(bytes)
}

/// Read every intact record of a log without taking write access (the
/// file is left untouched, torn tail included). For inspection and tests.
pub fn read_records(path: &Path) -> io::Result<Vec<Vec<u8>>> {
    let bytes = std::fs::read(path)?;
    Ok(scan(&bytes).0)
}

/// Write `bytes` to `path` atomically: the content goes to a tmp sibling
/// first, is fsync'd, then renamed over the target, and the parent
/// directory is fsync'd. A crash at any point leaves either the old file
/// or the new one — never a truncated hybrid.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let parent = parent_dir(path);
    if let Some(dir) = parent {
        std::fs::create_dir_all(dir)?;
    }
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        // detlint: allow(IO001) this IS the write_atomic implementation — the raw create targets the tmp sibling, and the rename + dir fsync below provide the atomicity
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = parent {
        // Persist the rename itself: fsync the containing directory.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// `path.parent()`, treating the empty path (bare file name) as "no
/// parent" so `create_dir_all("")` is never attempted.
fn parent_dir(path: &Path) -> Option<&Path> {
    path.parent().filter(|p| !p.as_os_str().is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("e2c-journal-{}-{name}", std::process::id()))
    }

    #[test]
    fn crc32_matches_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_open_round_trips() {
        let path = tmp("roundtrip.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::create(&path).unwrap();
        wal.append(b"alpha").unwrap();
        wal.append(b"").unwrap();
        wal.append(&[0u8, 255, 7]).unwrap();
        assert_eq!(wal.record_count(), 3);
        drop(wal);
        let (wal, records) = Wal::open(&path).unwrap();
        assert_eq!(wal.record_count(), 3);
        assert_eq!(
            records,
            vec![b"alpha".to_vec(), Vec::new(), vec![0u8, 255, 7]]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_refuses_existing_file() {
        let path = tmp("existing.wal");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, b"x").unwrap();
        assert!(Wal::create(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    /// Build one valid frame for `payload`.
    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut f = Vec::with_capacity(HEADER + payload.len());
        f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        f.extend_from_slice(&crc32(payload).to_le_bytes());
        f.extend_from_slice(payload);
        f
    }

    /// A declared length just *under* MAX_RECORD with only a short tail
    /// behind the header is a torn frame: the scan truncates at the frame
    /// boundary instead of slicing past the buffer.
    #[test]
    fn declared_len_near_max_with_short_tail_truncates() {
        let mut bytes = frame(b"good");
        let good_len = bytes.len();
        bytes.extend_from_slice(&(MAX_RECORD - 1).to_le_bytes());
        bytes.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        bytes.extend_from_slice(b"short tail");
        let (records, valid) = scan_records(&bytes);
        assert_eq!(records, vec![b"good".to_vec()]);
        assert_eq!(valid, good_len);
    }

    /// A declared length *over* MAX_RECORD is corruption, not an
    /// allocation request — even when the bytes to back it exist.
    #[test]
    fn declared_len_over_max_is_corruption() {
        let mut bytes = (MAX_RECORD + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 12]);
        let (records, valid) = scan_records(&bytes);
        assert!(records.is_empty());
        assert_eq!(valid, 0);
        // u32::MAX (the adversarial extreme: start + len wraps a u32) too.
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 12]);
        assert_eq!(scan_records(&bytes).1, 0);
    }

    /// Headers cut at every length short of 8 bytes are torn tails.
    #[test]
    fn truncated_headers_are_torn_tails() {
        let full = frame(b"payload");
        for cut in 0..HEADER {
            let (records, valid) = scan_records(&full[..cut]);
            assert!(records.is_empty(), "cut {cut}");
            assert_eq!(valid, 0, "cut {cut}");
        }
    }

    /// Torn-tail recovery through the real file path: a good record with
    /// a half-written second frame behind it opens to exactly the good
    /// record, truncates the file, and accepts further appends.
    #[test]
    fn open_truncates_torn_tail_and_appends() {
        let path = tmp("torn.wal");
        let _ = std::fs::remove_file(&path);
        let mut bytes = frame(b"alpha");
        let keep = bytes.len();
        let second = frame(b"beta");
        bytes.extend_from_slice(&second[..second.len() - 2]);
        std::fs::write(&path, &bytes).unwrap();
        let (mut wal, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"alpha".to_vec()]);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), keep as u64);
        wal.append(b"gamma").unwrap();
        drop(wal);
        let (_, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"alpha".to_vec(), b"gamma".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    /// The in-memory scan and the file-backed open agree byte-for-byte on
    /// what survives an arbitrary corruption.
    #[test]
    fn scan_records_matches_open() {
        let path = tmp("scan-match.wal");
        let _ = std::fs::remove_file(&path);
        let mut bytes = frame(b"one");
        bytes.extend_from_slice(&frame(b"two"));
        bytes[HEADER + 1] ^= 0x40; // corrupt record one's payload
        std::fs::write(&path, &bytes).unwrap();
        let (records, valid) = scan_records(&bytes);
        assert!(records.is_empty());
        assert_eq!(valid, 0);
        let (_, opened) = Wal::open(&path).unwrap();
        assert_eq!(opened, records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomic_write_replaces_content() {
        let path = tmp("atomic.txt");
        let _ = std::fs::remove_file(&path);
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second, longer content").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer content");
        assert!(!path.with_extension("txt.tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }
}
