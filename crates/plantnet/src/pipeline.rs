//! The identification pipeline of Table I.

/// The four thread pools of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pool {
    /// Request admission/bookkeeping pool.
    Http,
    /// Image download pool.
    Download,
    /// GPU inference pool.
    Extract,
    /// Similarity-search pool.
    Simsearch,
}

/// Where a task executes (Table I's "Hardware" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hardware {
    /// CPU-resident work.
    Cpu,
    /// GPU-resident work (DNN inference).
    Gpu,
}

/// The nine identification processing steps, in execution order (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// Decoding the query parameters.
    PreProcess,
    /// Wait for an available download thread.
    WaitDownload,
    /// Download images.
    Download,
    /// Wait for an available extractor thread.
    WaitExtract,
    /// DNN inference of the image.
    Extract,
    /// Process classification and similarity-search output at query level.
    Process,
    /// Wait for an available similarity-search thread.
    WaitSimsearch,
    /// Search the most similar images in the botanical database.
    Simsearch,
    /// Check processed query results and format the response.
    PostProcess,
}

impl Task {
    /// All tasks in execution order.
    pub const ORDER: [Task; 9] = [
        Task::PreProcess,
        Task::WaitDownload,
        Task::Download,
        Task::WaitExtract,
        Task::Extract,
        Task::Process,
        Task::WaitSimsearch,
        Task::Simsearch,
        Task::PostProcess,
    ];

    /// The pool that *executes* the task (wait steps belong to the pool
    /// being waited for, matching Table I's second pool column).
    pub fn pool(&self) -> Pool {
        match self {
            Task::PreProcess | Task::Process | Task::PostProcess => Pool::Http,
            Task::WaitDownload | Task::Download => Pool::Download,
            Task::WaitExtract | Task::Extract => Pool::Extract,
            Task::WaitSimsearch | Task::Simsearch => Pool::Simsearch,
        }
    }

    /// Hardware the task runs on (Table I).
    pub fn hardware(&self) -> Hardware {
        match self {
            Task::Extract => Hardware::Gpu,
            _ => Hardware::Cpu,
        }
    }

    /// Whether this is a queueing (wait-*) step.
    pub fn is_wait(&self) -> bool {
        matches!(
            self,
            Task::WaitDownload | Task::WaitExtract | Task::WaitSimsearch
        )
    }

    /// Metric label, e.g. `wait-extract`, matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Task::PreProcess => "pre-process",
            Task::WaitDownload => "wait-download",
            Task::Download => "download",
            Task::WaitExtract => "wait-extract",
            Task::Extract => "extract",
            Task::Process => "process",
            Task::WaitSimsearch => "wait-simsearch",
            Task::Simsearch => "simsearch",
            Task::PostProcess => "post-process",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_matches_table_i() {
        let labels: Vec<&str> = Task::ORDER.iter().map(|t| t.label()).collect();
        assert_eq!(
            labels,
            vec![
                "pre-process",
                "wait-download",
                "download",
                "wait-extract",
                "extract",
                "process",
                "wait-simsearch",
                "simsearch",
                "post-process",
            ]
        );
    }

    #[test]
    fn only_extract_is_gpu() {
        for t in Task::ORDER {
            if t == Task::Extract {
                assert_eq!(t.hardware(), Hardware::Gpu);
            } else {
                assert_eq!(t.hardware(), Hardware::Cpu);
            }
        }
    }

    #[test]
    fn pool_assignment_matches_table_i() {
        assert_eq!(Task::PreProcess.pool(), Pool::Http);
        assert_eq!(Task::WaitDownload.pool(), Pool::Download);
        assert_eq!(Task::Download.pool(), Pool::Download);
        assert_eq!(Task::WaitExtract.pool(), Pool::Extract);
        assert_eq!(Task::Extract.pool(), Pool::Extract);
        assert_eq!(Task::Process.pool(), Pool::Http);
        assert_eq!(Task::WaitSimsearch.pool(), Pool::Simsearch);
        assert_eq!(Task::Simsearch.pool(), Pool::Simsearch);
        assert_eq!(Task::PostProcess.pool(), Pool::Http);
    }

    #[test]
    fn exactly_three_wait_steps() {
        assert_eq!(Task::ORDER.iter().filter(|t| t.is_wait()).count(), 3);
    }
}
