//! Real-thread engine: the same pipeline on actual OS threads.
//!
//! The DES backend answers the paper's questions cheaply; this backend
//! exists to integration-test the framework against something that really
//! blocks: every pool is a counting semaphore, every client is a thread in
//! a closed loop, and service times are real (scaled) sleeps. Useful for
//! validating that pool sizing effects (admission queueing, bottleneck
//! waits) appear in a genuinely concurrent implementation, not just in the
//! simulator.

use crate::config::PoolConfig;
use crate::model::EngineModel;
use e2c_metrics::{OnlineStats, Summary};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counting semaphore (parking-lot mutex + condvar).
pub struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    /// A semaphore with `n` permits.
    pub fn new(n: usize) -> Self {
        Semaphore {
            permits: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    /// Block until a permit is available, then take it.
    pub fn acquire(&self) {
        let mut p = self.permits.lock();
        while *p == 0 {
            self.cv.wait(&mut p);
        }
        *p -= 1;
    }

    /// Return a permit and wake one waiter.
    pub fn release(&self) {
        let mut p = self.permits.lock();
        *p += 1;
        self.cv.notify_one();
    }

    /// Current free permits (racy; diagnostics only).
    pub fn available(&self) -> usize {
        *self.permits.lock()
    }
}

/// Results of a real-thread run.
#[derive(Debug, Clone)]
pub struct RtMetrics {
    /// Per-request response times.
    pub response: Summary,
    /// Requests completed.
    pub completed: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// Real-thread engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct RtEngine {
    /// Thread-pool sizes.
    pub config: PoolConfig,
    /// Service-time constants (shared with the DES).
    pub model: EngineModel,
    /// Multiplier applied to all service times (e.g. `0.01` runs the
    /// pipeline 100× faster than real time so tests stay quick).
    pub time_scale: f64,
}

impl RtEngine {
    /// An engine with scaled-down service times.
    pub fn new(config: PoolConfig, time_scale: f64) -> Self {
        assert!(time_scale > 0.0, "time scale must be positive");
        RtEngine {
            config,
            model: EngineModel::default(),
            time_scale,
        }
    }

    fn sleep_scaled(&self, secs: f64) {
        let scaled = secs * self.time_scale;
        if scaled > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(scaled));
        }
    }

    /// Run `clients` closed-loop client threads, each issuing
    /// `requests_per_client` requests through the pipeline.
    pub fn run(&self, clients: usize, requests_per_client: usize, seed: u64) -> RtMetrics {
        assert!(clients > 0 && requests_per_client > 0);
        self.config.validate().expect("invalid pool configuration");
        let http = Arc::new(Semaphore::new(self.config.http as usize));
        let download = Arc::new(Semaphore::new(self.config.download as usize));
        let extract = Arc::new(Semaphore::new(self.config.extract as usize));
        let simsearch = Arc::new(Semaphore::new(self.config.simsearch as usize));
        let stats = Arc::new(Mutex::new(OnlineStats::new()));
        // detlint: allow(DET002) real-time backend: this engine measures actual elapsed time by design (the DES backend is the reproducible path)
        let started = Instant::now();

        crossbeam::thread::scope(|scope| {
            for c in 0..clients {
                let http = http.clone();
                let download = download.clone();
                let extract = extract.clone();
                let simsearch = simsearch.clone();
                let stats = stats.clone();
                let engine = *self;
                scope.spawn(move |_| {
                    use e2c_des::Dist;
                    let mut rng = StdRng::seed_from_u64(seed ^ (c as u64) << 20);
                    let sample = |d: Dist, rng: &mut StdRng| -> f64 { d.sample(rng).max(1e-6) };
                    for _ in 0..requests_per_client {
                        // detlint: allow(DET002) real-time backend: per-request latency is genuinely wall-clock here
                        let t0 = Instant::now();
                        http.acquire();
                        engine.sleep_scaled(sample(engine.model.t_preprocess, &mut rng));
                        download.acquire();
                        engine.sleep_scaled(sample(engine.model.t_download_cpu, &mut rng));
                        download.release();
                        extract.acquire();
                        engine.sleep_scaled(sample(engine.model.t_extract_gpu, &mut rng));
                        extract.release();
                        engine.sleep_scaled(sample(engine.model.t_process, &mut rng));
                        simsearch.acquire();
                        engine.sleep_scaled(sample(engine.model.t_simsearch, &mut rng));
                        simsearch.release();
                        engine.sleep_scaled(sample(engine.model.t_postprocess, &mut rng));
                        http.release();
                        // Report response in *model* seconds (unscaled).
                        let resp = t0.elapsed().as_secs_f64() / engine.time_scale;
                        stats.lock().push(resp);
                    }
                });
            }
        })
        .expect("client thread panicked");

        let stats = stats.lock();
        RtMetrics {
            response: Summary::from(&*stats),
            completed: stats.count(),
            elapsed: started.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semaphore_limits_concurrency() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sem = Arc::new(Semaphore::new(3));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        crossbeam::thread::scope(|scope| {
            for _ in 0..12 {
                let sem = sem.clone();
                let running = running.clone();
                let peak = peak.clone();
                scope.spawn(move |_| {
                    sem.acquire();
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(3));
                    running.fetch_sub(1, Ordering::SeqCst);
                    sem.release();
                });
            }
        })
        .unwrap();
        assert!(peak.load(Ordering::SeqCst) <= 3);
        assert_eq!(sem.available(), 3);
    }

    #[test]
    fn rt_engine_completes_all_requests() {
        let engine = RtEngine::new(PoolConfig::baseline(), 0.002);
        let m = engine.run(8, 3, 1);
        assert_eq!(m.completed, 24);
        assert!(m.response.mean > 0.0);
    }

    #[test]
    fn admission_queueing_inflates_response() {
        // Same offered load; an HTTP pool of 2 must queue and show larger
        // response times than a pool of 16.
        let mut small = PoolConfig::baseline();
        small.http = 2;
        let mut large = PoolConfig::baseline();
        large.http = 16;
        let m_small = RtEngine::new(small, 0.002).run(16, 2, 3);
        let m_large = RtEngine::new(large, 0.002).run(16, 2, 3);
        assert!(
            m_small.response.mean > m_large.response.mean * 1.5,
            "small {} vs large {}",
            m_small.response.mean,
            m_large.response.mean
        );
    }

    #[test]
    fn extract_bottleneck_visible_in_real_threads() {
        let mut narrow = PoolConfig::baseline();
        narrow.extract = 1;
        let mut wide = PoolConfig::baseline();
        wide.extract = 8;
        let m_narrow = RtEngine::new(narrow, 0.002).run(12, 2, 5);
        let m_wide = RtEngine::new(wide, 0.002).run(12, 2, 5);
        assert!(
            m_narrow.response.mean > m_wide.response.mean,
            "narrow {} vs wide {}",
            m_narrow.response.mean,
            m_wide.response.mean
        );
    }
}
