//! Real-thread engine: the same pipeline on actual OS threads.
//!
//! The DES backend answers the paper's questions cheaply; this backend
//! exists to integration-test the framework against something that really
//! blocks: every pool is a counting semaphore, every client is a thread in
//! a closed loop, and service times are real (scaled) sleeps. Useful for
//! validating that pool sizing effects (admission queueing, bottleneck
//! waits) appear in a genuinely concurrent implementation, not just in the
//! simulator.

use crate::config::PoolConfig;
use crate::model::EngineModel;
use e2c_metrics::{OnlineStats, Summary};
use e2c_workload::RateSchedule;
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counting semaphore (parking-lot mutex + condvar).
pub struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    /// A semaphore with `n` permits.
    pub fn new(n: usize) -> Self {
        Semaphore {
            permits: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    /// Block until a permit is available, then take it.
    pub fn acquire(&self) {
        let mut p = self.permits.lock();
        while *p == 0 {
            self.cv.wait(&mut p);
        }
        *p -= 1;
    }

    /// Return a permit and wake one waiter.
    pub fn release(&self) {
        let mut p = self.permits.lock();
        *p += 1;
        self.cv.notify_one();
    }

    /// Take a permit only if one is free right now (never blocks).
    pub fn try_acquire(&self) -> bool {
        let mut p = self.permits.lock();
        if *p == 0 {
            return false;
        }
        *p -= 1;
        true
    }

    /// Current free permits (racy; diagnostics only).
    pub fn available(&self) -> usize {
        *self.permits.lock()
    }
}

/// Results of a real-thread run.
#[derive(Debug, Clone)]
pub struct RtMetrics {
    /// Per-request response times.
    pub response: Summary,
    /// Requests completed.
    pub completed: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// Real-thread engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct RtEngine {
    /// Thread-pool sizes.
    pub config: PoolConfig,
    /// Service-time constants (shared with the DES).
    pub model: EngineModel,
    /// Multiplier applied to all service times (e.g. `0.01` runs the
    /// pipeline 100× faster than real time so tests stay quick).
    pub time_scale: f64,
}

impl RtEngine {
    /// An engine with scaled-down service times.
    pub fn new(config: PoolConfig, time_scale: f64) -> Self {
        assert!(time_scale > 0.0, "time scale must be positive");
        RtEngine {
            config,
            model: EngineModel::default(),
            time_scale,
        }
    }

    fn sleep_scaled(&self, secs: f64) {
        let scaled = secs * self.time_scale;
        if scaled > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(scaled));
        }
    }

    /// Run `clients` closed-loop client threads, each issuing
    /// `requests_per_client` requests through the pipeline.
    pub fn run(&self, clients: usize, requests_per_client: usize, seed: u64) -> RtMetrics {
        assert!(clients > 0 && requests_per_client > 0);
        self.config.validate().expect("invalid pool configuration");
        let http = Arc::new(Semaphore::new(self.config.http as usize));
        let download = Arc::new(Semaphore::new(self.config.download as usize));
        let extract = Arc::new(Semaphore::new(self.config.extract as usize));
        let simsearch = Arc::new(Semaphore::new(self.config.simsearch as usize));
        let stats = Arc::new(Mutex::new(OnlineStats::new()));
        // detlint: allow(DET002) real-time backend: this engine measures actual elapsed time by design (the DES backend is the reproducible path)
        let started = Instant::now();

        crossbeam::thread::scope(|scope| {
            for c in 0..clients {
                let http = http.clone();
                let download = download.clone();
                let extract = extract.clone();
                let simsearch = simsearch.clone();
                let stats = stats.clone();
                let engine = *self;
                scope.spawn(move |_| {
                    use e2c_des::Dist;
                    let mut rng = StdRng::seed_from_u64(seed ^ (c as u64) << 20);
                    let sample = |d: Dist, rng: &mut StdRng| -> f64 { d.sample(rng).max(1e-6) };
                    for _ in 0..requests_per_client {
                        // detlint: allow(DET002) real-time backend: per-request latency is genuinely wall-clock here
                        let t0 = Instant::now();
                        http.acquire();
                        engine.sleep_scaled(sample(engine.model.t_preprocess, &mut rng));
                        download.acquire();
                        engine.sleep_scaled(sample(engine.model.t_download_cpu, &mut rng));
                        download.release();
                        extract.acquire();
                        engine.sleep_scaled(sample(engine.model.t_extract_gpu, &mut rng));
                        extract.release();
                        engine.sleep_scaled(sample(engine.model.t_process, &mut rng));
                        simsearch.acquire();
                        engine.sleep_scaled(sample(engine.model.t_simsearch, &mut rng));
                        simsearch.release();
                        engine.sleep_scaled(sample(engine.model.t_postprocess, &mut rng));
                        http.release();
                        // Report response in *model* seconds (unscaled).
                        let resp = t0.elapsed().as_secs_f64() / engine.time_scale;
                        stats.lock().push(resp);
                    }
                });
            }
        })
        .expect("client thread panicked");

        let stats = stats.lock();
        RtMetrics {
            response: Summary::from(&*stats),
            completed: stats.count(),
            elapsed: started.elapsed(),
        }
    }

    /// Open-loop serving against real threads: replay `schedule`
    /// (model seconds, compressed by `time_scale`) with a bounded
    /// admission queue. An arrival that cannot take an HTTP permit
    /// immediately queues unless `queue_bound` requests are already
    /// waiting, in which case it is rejected on the spot. Responses
    /// above `slo` (model seconds) count as violations.
    ///
    /// Unlike the DES backend this path is wall-clock by nature —
    /// counts conserve exactly (`admitted + rejected == offered`,
    /// every admitted request completes) but latencies and the
    /// admit/reject split vary run to run. Deadline shedding is a
    /// DES-only feature; a blocked real thread cannot be revoked
    /// cheaply.
    pub fn serve(
        &self,
        schedule: &RateSchedule,
        queue_bound: usize,
        slo: f64,
        seed: u64,
    ) -> RtServingMetrics {
        self.config.validate().expect("invalid pool configuration");
        assert!(slo.is_finite() && slo > 0.0, "SLO bound must be positive");
        // Same derivation as the DES serving path: the arrival stream
        // is a pure function of (schedule, seed).
        let mut arr_rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_0F0F_F0F0);
        let arrivals = schedule.arrivals(&mut arr_rng);
        let http = Arc::new(Semaphore::new(self.config.http as usize));
        let download = Arc::new(Semaphore::new(self.config.download as usize));
        let extract = Arc::new(Semaphore::new(self.config.extract as usize));
        let simsearch = Arc::new(Semaphore::new(self.config.simsearch as usize));
        let stats = Arc::new(Mutex::new(OnlineStats::new()));
        let queued = Arc::new(AtomicUsize::new(0));
        let slo_violations = Arc::new(AtomicU64::new(0));
        let offered = arrivals.len() as u64;
        let mut admitted = 0u64;
        let mut rejected = 0u64;
        // detlint: allow(DET002) real-time backend: this engine measures actual elapsed time by design (the DES backend is the reproducible path)
        let started = Instant::now();

        crossbeam::thread::scope(|scope| {
            for (i, at) in arrivals.iter().enumerate() {
                let due = Duration::from_secs_f64(at.as_secs_f64() * self.time_scale);
                let since = started.elapsed();
                if due > since {
                    std::thread::sleep(due - since);
                }
                // Admission decision, made by the dispatcher alone.
                let direct = http.try_acquire();
                if !direct && queued.load(Ordering::SeqCst) >= queue_bound {
                    rejected += 1;
                    continue;
                }
                admitted += 1;
                if !direct {
                    queued.fetch_add(1, Ordering::SeqCst);
                }
                let http = http.clone();
                let download = download.clone();
                let extract = extract.clone();
                let simsearch = simsearch.clone();
                let stats = stats.clone();
                let queued = queued.clone();
                let slo_violations = slo_violations.clone();
                let engine = *self;
                scope.spawn(move |_| {
                    use e2c_des::Dist;
                    let mut rng = StdRng::seed_from_u64(seed ^ ((i as u64) << 20));
                    let sample = |d: Dist, rng: &mut StdRng| -> f64 { d.sample(rng).max(1e-6) };
                    // detlint: allow(DET002) real-time backend: per-request latency is genuinely wall-clock here
                    let t0 = Instant::now();
                    if !direct {
                        http.acquire();
                        queued.fetch_sub(1, Ordering::SeqCst);
                    }
                    engine.sleep_scaled(sample(engine.model.t_preprocess, &mut rng));
                    download.acquire();
                    engine.sleep_scaled(sample(engine.model.t_download_cpu, &mut rng));
                    download.release();
                    extract.acquire();
                    engine.sleep_scaled(sample(engine.model.t_extract_gpu, &mut rng));
                    extract.release();
                    engine.sleep_scaled(sample(engine.model.t_process, &mut rng));
                    simsearch.acquire();
                    engine.sleep_scaled(sample(engine.model.t_simsearch, &mut rng));
                    simsearch.release();
                    engine.sleep_scaled(sample(engine.model.t_postprocess, &mut rng));
                    http.release();
                    // Report response in *model* seconds (unscaled).
                    let resp = t0.elapsed().as_secs_f64() / engine.time_scale;
                    if resp > slo {
                        slo_violations.fetch_add(1, Ordering::SeqCst);
                    }
                    stats.lock().push(resp);
                });
            }
        })
        .expect("worker thread panicked");

        let stats = stats.lock();
        RtServingMetrics {
            offered,
            admitted,
            rejected,
            slo_violations: slo_violations.load(Ordering::SeqCst),
            completed: stats.count(),
            response: Summary::from(&*stats),
            elapsed: started.elapsed(),
        }
    }
}

/// Results of a real-thread open-loop serving run.
#[derive(Debug, Clone)]
pub struct RtServingMetrics {
    /// Arrivals generated from the schedule.
    pub offered: u64,
    /// Requests that entered the engine (directly or via the queue).
    pub admitted: u64,
    /// Arrivals bounced at the admission bound.
    pub rejected: u64,
    /// Completions above the SLO bound (model seconds).
    pub slo_violations: u64,
    /// Requests completed (every admitted request completes).
    pub completed: u64,
    /// Per-request response times in model seconds.
    pub response: Summary,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semaphore_limits_concurrency() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sem = Arc::new(Semaphore::new(3));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        crossbeam::thread::scope(|scope| {
            for _ in 0..12 {
                let sem = sem.clone();
                let running = running.clone();
                let peak = peak.clone();
                scope.spawn(move |_| {
                    sem.acquire();
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(3));
                    running.fetch_sub(1, Ordering::SeqCst);
                    sem.release();
                });
            }
        })
        .unwrap();
        assert!(peak.load(Ordering::SeqCst) <= 3);
        assert_eq!(sem.available(), 3);
    }

    #[test]
    fn rt_engine_completes_all_requests() {
        let engine = RtEngine::new(PoolConfig::baseline(), 0.002);
        let m = engine.run(8, 3, 1);
        assert_eq!(m.completed, 24);
        assert!(m.response.mean > 0.0);
    }

    #[test]
    fn admission_queueing_inflates_response() {
        // Same offered load; an HTTP pool of 2 must queue and show larger
        // response times than a pool of 16.
        let mut small = PoolConfig::baseline();
        small.http = 2;
        let mut large = PoolConfig::baseline();
        large.http = 16;
        let m_small = RtEngine::new(small, 0.002).run(16, 2, 3);
        let m_large = RtEngine::new(large, 0.002).run(16, 2, 3);
        assert!(
            m_small.response.mean > m_large.response.mean * 1.5,
            "small {} vs large {}",
            m_small.response.mean,
            m_large.response.mean
        );
    }

    #[test]
    fn open_loop_serve_conserves_counts() {
        use e2c_des::SimTime;
        // Generous bound: everything is admitted and completes.
        let engine = RtEngine::new(PoolConfig::baseline(), 0.002);
        let sched = RateSchedule::constant(10.0, SimTime::from_secs(3)).unwrap();
        let m = engine.serve(&sched, 10_000, 4.0, 7);
        assert!(m.offered > 0);
        assert_eq!(m.admitted + m.rejected, m.offered);
        assert_eq!(m.rejected, 0);
        assert_eq!(m.completed, m.admitted);
    }

    #[test]
    fn open_loop_serve_rejects_when_saturated() {
        use e2c_des::SimTime;
        // One-wide pools, a tiny queue bound, and a burst of arrivals:
        // most of the burst must bounce, and counts still conserve.
        let mut cfg = PoolConfig::baseline();
        cfg.http = 1;
        let engine = RtEngine::new(cfg, 0.002);
        let sched = RateSchedule::constant(50.0, SimTime::from_secs(4)).unwrap();
        let m = engine.serve(&sched, 2, 4.0, 11);
        assert!(m.rejected > 0, "expected rejections: {m:?}");
        assert_eq!(m.admitted + m.rejected, m.offered);
        assert_eq!(m.completed, m.admitted);
    }

    #[test]
    fn extract_bottleneck_visible_in_real_threads() {
        let mut narrow = PoolConfig::baseline();
        narrow.extract = 1;
        let mut wide = PoolConfig::baseline();
        wide.extract = 8;
        let m_narrow = RtEngine::new(narrow, 0.002).run(12, 2, 5);
        let m_wide = RtEngine::new(wide, 0.002).run(12, 2, 5);
        assert!(
            m_narrow.response.mean > m_wide.response.mean,
            "narrow {} vs wide {}",
            m_narrow.response.mean,
            m_wide.response.mean
        );
    }
}
