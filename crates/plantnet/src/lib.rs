//! # plantnet — a calibrated model of the Pl@ntNet Identification Engine
//!
//! The paper's evaluation object is the Pl@ntNet **Identification Engine**:
//! a service that identifies plant species from user photos through the
//! nine-task pipeline of Table I, executed by four thread pools (Table II):
//! HTTP (admission — "simultaneous requests being processed"), Download,
//! Extract (GPU inference) and Simsearch (CPU similarity search).
//!
//! We cannot run the production engine, so this crate provides the closest
//! synthetic equivalent (see DESIGN.md): a **discrete-event queueing
//! model** whose mechanisms are exactly the ones the paper's analysis
//! turns on —
//!
//! * admission control by the HTTP pool (requests beyond it queue);
//! * a GPU with concurrency-dependent efficiency (more Extract threads ⇒
//!   higher throughput but no faster individual inference, and more GPU
//!   memory);
//! * a 40-core CPU under processor sharing: Simsearch tasks, download
//!   decoding, HTTP bookkeeping *and the CPU-side feeding of the GPU* all
//!   compete — oversubscription slows Simsearch, which is the Fig. 9
//!   story;
//! * closed-loop clients (N simultaneous requests).
//!
//! Two execution backends share the same [`config::PoolConfig`]:
//! [`sim::Experiment`] (the DES used by all paper experiments) and
//! [`rt`] (a real-thread engine running the same pipeline on actual OS
//! threads, for integration testing the framework against something that
//! really blocks).

pub mod config;
pub mod model;
pub mod monitor;
pub mod pipeline;
pub mod rt;
pub mod sim;

pub use config::PoolConfig;
pub use model::EngineModel;
pub use monitor::{EngineMetrics, OverloadTotals};
pub use sim::{Experiment, OverloadPolicy, ServiceFault, ServiceFaultKind};
