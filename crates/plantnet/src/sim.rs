//! Discrete-event simulation of the Identification Engine.
//!
//! One [`Experiment`] simulates a Pl@ntNet engine node serving a
//! closed-loop population of clients:
//!
//! * the four thread pools are counting semaphores
//!   ([`e2c_des::resources::Tokens`]) — the `wait-*` steps of Table I are
//!   their queues;
//! * all CPU-side work (pre-process, download decode, process, simsearch,
//!   post-process, *and the per-inference GPU feeding load*) shares the
//!   node's cores under processor sharing;
//! * GPU inference runs on a saturating-efficiency server: concurrency
//!   raises throughput sub-linearly and never shortens one inference;
//! * image transfer times come from a fair-shared network link.
//!
//! Every run is fully determined by `(spec, seed)`. An optional
//! [`ServiceFault`] perturbs a run at a fixed simulated time — a
//! [`ServiceFaultKind::Crash`] stops the engine (the run reports a NaN
//! response mean, which the tuning layer classifies as a failed,
//! retryable evaluation), a [`ServiceFaultKind::SlowDown`] multiplies
//! every service time from the trigger onwards.

use crate::config::PoolConfig;
use crate::model::EngineModel;
use crate::monitor::{names, EngineMetrics, OverloadTotals, RepeatedMetrics};
use crate::pipeline::Task;
use e2c_des::resources::{Discipline, ProcShare, Tokens};
use e2c_des::{Context, Dist, EventHandle, Model, SimTime, Simulation};
use e2c_metrics::{Histogram, OnlineStats, Registry, Summary};
use e2c_net::{LinkSpec, SharedLink};
use e2c_workload::{ImageMix, RateSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::collections::VecDeque;

/// What a [`ServiceFault`] does to the engine once it triggers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceFaultKind {
    /// The engine process dies: no event after the trigger is handled
    /// and the run reports a NaN response mean.
    Crash,
    /// Every service time sampled after the trigger is multiplied by
    /// `factor` (a degraded node, a noisy neighbour).
    SlowDown {
        /// Service-time multiplier; must be finite and positive.
        factor: f64,
    },
}

/// A deterministic engine-level fault: at simulated time `at`, `kind`
/// happens. Exactly one per run; `None` (the default in
/// [`ExperimentSpec::paper`]) reproduces the paper's fault-free setup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceFault {
    /// Simulated trigger time.
    pub at: SimTime,
    /// What happens.
    pub kind: ServiceFaultKind,
}

/// Overload policy for an open-loop serving run.
///
/// The HTTP pool's wait queue becomes a *bounded* admission queue:
/// arrivals finding `queue_bound` requests already waiting are rejected
/// outright, and queued requests older than `shed_after` are shed —
/// deterministically, at service-start and window boundaries — instead
/// of serving a response the user gave up on long ago. Completions
/// slower than `slo` count as SLO violations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadPolicy {
    /// Maximum admission-queue depth; arrivals beyond it are rejected.
    pub queue_bound: usize,
    /// Shed queued requests older than this (`None`: never shed).
    pub shed_after: Option<SimTime>,
    /// Response-time SLO bound in seconds (the paper's 4 s tolerance).
    pub slo: f64,
}

impl OverloadPolicy {
    /// A policy with the paper's 4 s SLO, a queue bound sized like a
    /// production listen backlog, and shedding at twice the SLO.
    pub fn paper_slo(queue_bound: usize) -> Self {
        OverloadPolicy {
            queue_bound,
            shed_after: Some(SimTime::from_secs(8)),
            slo: 4.0,
        }
    }
}

/// Open-loop serving bookkeeping. Lives on the model (not the `Copy`
/// spec): the arrival schedule is data, and the overload counters are
/// run state.
struct Serving {
    policy: Option<OverloadPolicy>,
    /// FIFO mirror of the HTTP admission queue: `(req, enqueued_at)`.
    /// `Tokens` keeps the authoritative queue; this adds the enqueue
    /// timestamps shedding needs. Orders always agree (both FIFO).
    waiting: VecDeque<(u64, SimTime)>,
    totals: OverloadTotals,
    // Window counters, reset at each sample boundary.
    win_offered: u64,
    win_rejected: u64,
    win_shed: u64,
    win_slo: u64,
}

impl Serving {
    fn new(policy: Option<OverloadPolicy>) -> Self {
        if let Some(p) = policy {
            assert!(
                p.slo.is_finite() && p.slo > 0.0,
                "SLO bound must be finite and positive, got {}",
                p.slo
            );
        }
        Serving {
            policy,
            waiting: VecDeque::new(),
            totals: OverloadTotals::default(),
            win_offered: 0,
            win_rejected: 0,
            win_shed: 0,
            win_slo: 0,
        }
    }
}

/// Full description of one engine experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentSpec {
    /// Thread-pool sizes under test.
    pub config: PoolConfig,
    /// Engine constants (hardware + service times).
    pub model: EngineModel,
    /// Closed-loop simultaneous requests (the paper's workload knob).
    pub clients: usize,
    /// Client think time between response and next request.
    pub think: Dist,
    /// Experiment duration (the paper: 1380 s).
    pub duration: SimTime,
    /// Monitoring window (the paper: 10 s).
    pub sample_interval: SimTime,
    /// Samples at or before this time are excluded from summaries (the
    /// pipeline starts empty; the first seconds are not steady-state).
    pub warmup: SimTime,
    /// Client → engine network link.
    pub link: LinkSpec,
    /// Optional engine-level fault injected at a fixed simulated time.
    pub fault: Option<ServiceFault>,
}

impl ExperimentSpec {
    /// The paper's experimental setup for a configuration and workload:
    /// 1380 s runs, 10 s sampling, saturating closed loop, 10 Gbps
    /// client links.
    pub fn paper(config: PoolConfig, clients: usize) -> Self {
        ExperimentSpec {
            config,
            model: EngineModel::default(),
            clients,
            think: Dist::Constant(0.0),
            duration: SimTime::from_secs(1380),
            sample_interval: SimTime::from_secs(10),
            warmup: SimTime::from_secs(60),
            link: LinkSpec::new(0.5, 10_000.0),
            fault: None,
        }
    }

    /// A shortened variant for tests: same mechanics, 1/10 the duration.
    pub fn quick(config: PoolConfig, clients: usize) -> Self {
        ExperimentSpec {
            duration: SimTime::from_secs(138),
            warmup: SimTime::from_secs(20),
            ..ExperimentSpec::paper(config, clients)
        }
    }

    /// Spec for an open-loop serving run over `horizon` of simulated
    /// time. `clients` is irrelevant in open loop (arrivals come from
    /// the schedule); no warm-up exclusion — a serving window accounts
    /// for every request it saw. The sampling interval adapts to short
    /// horizons so every run gets a handful of windows.
    pub fn serving(config: PoolConfig, horizon: SimTime) -> Self {
        let interval =
            SimTime((horizon.0 / 12).clamp(SimTime::from_secs(1).0, SimTime::from_secs(10).0));
        ExperimentSpec {
            duration: horizon,
            sample_interval: interval,
            warmup: SimTime::ZERO,
            ..ExperimentSpec::paper(config, 1)
        }
    }
}

/// Simulation events (public because `Experiment` implements `Model`;
/// construct experiments through [`Experiment::run`] instead).
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// A client submits a request.
    Arrive { client: u32 },
    /// A CPU job finished.
    CpuDone { job: u64 },
    /// A GPU inference finished.
    GpuDone { req: u64 },
    /// A network transfer finished.
    NetDone { req: u64 },
    /// Monitoring window boundary.
    Sample,
}

/// CPU job-id codes (job id = `req_id * 8 + code`).
mod code {
    pub const PRE: u64 = 0;
    pub const DOWNLOAD: u64 = 1;
    pub const PROCESS: u64 = 2;
    pub const SIMSEARCH: u64 = 3;
    pub const POST: u64 = 4;
    /// Persistent CPU load while this request's inference occupies the GPU.
    pub const GPU_FEED: u64 = 7;
}

fn jid(req: u64, c: u64) -> u64 {
    req * 8 + c
}

struct Req {
    client: u32,
    arrived: SimTime,
    phase_start: SimTime,
}

/// The engine model driven by the DES kernel.
pub struct Experiment {
    spec: ExperimentSpec,
    // Resources.
    http: Tokens,
    download: Tokens,
    extract: Tokens,
    simsearch: Tokens,
    cpu: ProcShare,
    gpu: ProcShare,
    link: SharedLink,
    images: ImageMix,
    cpu_handle: Option<EventHandle>,
    gpu_handle: Option<EventHandle>,
    // Requests in flight. Deliberately a HashMap: every access is a keyed
    // lookup (get/insert/remove) driven by event order, never an
    // iteration, so hash order can't leak into results (detlint DET001
    // only fires on iteration).
    reqs: HashMap<u64, Req>,
    next_req: u64,
    // Statistics.
    task_stats: BTreeMap<&'static str, OnlineStats>,
    registry: Registry,
    window_resp: OnlineStats,
    /// Per-request response distribution after warm-up (for tail
    /// percentiles); 50 ms bins over [0, 60) s cover every sane run.
    responses: Histogram,
    completed: u64,
    completed_after_warmup: u64,
    /// Set once a [`ServiceFaultKind::Crash`] triggers; every later
    /// event is dropped and `finish` reports a NaN response mean.
    crashed: bool,
    /// Open-loop serving state (`None` in the closed-loop protocol).
    serving: Option<Serving>,
    /// Optional trace sink: per-window `sim/queues` events (pool queue
    /// depths) and the `sim/crash` marker, stamped with sim microseconds.
    tracer: Option<e2c_trace::Tracer>,
    // Previous-window integrals for windowed utilizations.
    prev_cpu_demand: f64,
    prev_busy: [f64; 4],
}

impl Experiment {
    /// Build the model for a spec.
    pub fn new(spec: ExperimentSpec) -> Self {
        spec.config.validate().expect("invalid pool configuration");
        if let Some(ServiceFault {
            kind: ServiceFaultKind::SlowDown { factor },
            ..
        }) = spec.fault
        {
            assert!(
                factor.is_finite() && factor > 0.0,
                "slow-down factor must be finite and positive, got {factor}"
            );
        }
        Experiment {
            http: Tokens::new(spec.config.http as usize),
            download: Tokens::new(spec.config.download as usize),
            extract: Tokens::new(spec.config.extract as usize),
            simsearch: Tokens::new(spec.config.simsearch as usize),
            cpu: ProcShare::cores(spec.model.cores),
            gpu: ProcShare::new(Discipline::Saturating {
                alpha: spec.model.gpu_alpha,
                cap: spec.model.gpu_parallel_cap,
                devices: spec.model.gpus,
            }),
            link: SharedLink::new(spec.link),
            images: ImageMix::new(spec.model.image_bytes_mean, spec.model.image_bytes_cv),
            cpu_handle: None,
            gpu_handle: None,
            reqs: HashMap::new(),
            next_req: 0,
            task_stats: BTreeMap::new(),
            registry: Registry::new(),
            window_resp: OnlineStats::new(),
            responses: Histogram::new(0.0, 60.0, 1200),
            completed: 0,
            completed_after_warmup: 0,
            crashed: false,
            serving: None,
            tracer: None,
            prev_cpu_demand: 0.0,
            prev_busy: [0.0; 4],
            spec,
        }
    }

    /// Run the experiment once with a seed; returns the collected metrics.
    pub fn run(spec: ExperimentSpec, seed: u64) -> EngineMetrics {
        Experiment::run_traced(spec, seed, None)
    }

    /// [`Experiment::run`] with an optional trace sink: the DES kernel
    /// emits per-segment `des/run` events and the model per-window
    /// `sim/queues` depths, all stamped with sim time (deterministic).
    pub fn run_traced(
        spec: ExperimentSpec,
        seed: u64,
        tracer: Option<e2c_trace::Tracer>,
    ) -> EngineMetrics {
        assert!(spec.clients > 0, "need at least one client");
        let mut model = Experiment::new(spec);
        model.tracer = tracer.clone();
        let mut sim = Simulation::new(model, seed);
        if let Some(tr) = tracer {
            sim.set_trace(tr, "plantnet");
        }
        // Clients ramp in over the first two seconds.
        let ramp = SimTime::from_secs(2);
        let n = spec.clients as u64;
        for client in 0..spec.clients as u32 {
            let at = SimTime(ramp.0 * client as u64 / n);
            sim.schedule(at, Ev::Arrive { client });
        }
        sim.schedule(spec.sample_interval, Ev::Sample);
        sim.run_until(spec.duration);
        sim.into_model().finish()
    }

    /// Open-loop serving run: arrivals replay `schedule` (thinned
    /// deterministically from `seed`), the closed loop is off, and
    /// `policy` — if any — bounds admission and sheds stale queue
    /// entries. With `policy = None` the run is bitwise-identical to
    /// the engine without overload semantics: the policy checks draw no
    /// randomness and touch no service path.
    pub fn run_serving(
        spec: ExperimentSpec,
        schedule: &RateSchedule,
        policy: Option<OverloadPolicy>,
        seed: u64,
    ) -> EngineMetrics {
        Experiment::run_serving_traced(spec, schedule, policy, seed, None)
    }

    /// [`Experiment::run_serving`] with an optional trace sink
    /// (per-window `sim/queues` and `sim/overload` events).
    pub fn run_serving_traced(
        spec: ExperimentSpec,
        schedule: &RateSchedule,
        policy: Option<OverloadPolicy>,
        seed: u64,
        tracer: Option<e2c_trace::Tracer>,
    ) -> EngineMetrics {
        let mut model = Experiment::new(spec);
        model.serving = Some(Serving::new(policy));
        model.tracer = tracer.clone();
        let mut sim = Simulation::new(model, seed);
        if let Some(tr) = tracer {
            sim.set_trace(tr, "plantnet");
        }
        // The arrival stream comes from its own derived RNG so it is a
        // pure function of (schedule, seed) — independent of how many
        // service times the engine happens to draw.
        let mut arr_rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_0F0F_F0F0);
        let horizon = spec.duration.min(schedule.horizon());
        for (i, at) in schedule.arrivals(&mut arr_rng).into_iter().enumerate() {
            if at > horizon {
                break;
            }
            sim.schedule(at, Ev::Arrive { client: i as u32 });
        }
        sim.schedule(spec.sample_interval, Ev::Sample);
        sim.run_until(spec.duration);
        sim.into_model().finish()
    }

    /// Run `reps` repetitions with derived seeds and pool the windows —
    /// the paper's "repeat each configuration 7 times" protocol.
    pub fn run_repeated(spec: ExperimentSpec, reps: usize, base_seed: u64) -> RepeatedMetrics {
        Experiment::run_repeated_traced(spec, reps, base_seed, None)
    }

    /// [`Experiment::run_repeated`] with an optional trace sink shared by
    /// every repetition.
    pub fn run_repeated_traced(
        spec: ExperimentSpec,
        reps: usize,
        base_seed: u64,
        tracer: Option<e2c_trace::Tracer>,
    ) -> RepeatedMetrics {
        assert!(reps > 0, "need at least one repetition");
        let runs: Vec<EngineMetrics> = (0..reps)
            .map(|r| {
                Experiment::run_traced(
                    spec,
                    base_seed.wrapping_mul(0x9E37_79B9).wrapping_add(r as u64),
                    tracer.clone(),
                )
            })
            .collect();
        RepeatedMetrics::from_runs(runs)
    }

    // ---- statistics helpers ----

    fn record_task(&mut self, task: Task, start: SimTime, now: SimTime) {
        self.task_stats
            .entry(task.label())
            .or_default()
            .push((now - start).as_secs_f64());
    }

    /// Service-time multiplier at `now` (1.0 unless a slow-down fault
    /// has triggered).
    fn service_scale(&self, now: SimTime) -> f64 {
        match self.spec.fault {
            Some(ServiceFault {
                at,
                kind: ServiceFaultKind::SlowDown { factor },
            }) if now >= at => factor,
            _ => 1.0,
        }
    }

    fn sample_dist(&self, d: Dist, now: SimTime, rng: &mut impl rand::Rng) -> f64 {
        (d.sample(rng) * self.service_scale(now)).max(1e-6)
    }

    // ---- resource completion rescheduling ----

    fn resched_cpu(&mut self, ctx: &mut Context<'_, Ev>) {
        if let Some(h) = self.cpu_handle.take() {
            ctx.cancel(h);
        }
        if let Some((at, job)) = self.cpu.next_completion(ctx.now()) {
            self.cpu_handle = Some(ctx.schedule(at, Ev::CpuDone { job }));
        }
    }

    fn resched_gpu(&mut self, ctx: &mut Context<'_, Ev>) {
        if let Some(h) = self.gpu_handle.take() {
            ctx.cancel(h);
        }
        if let Some((at, req)) = self.gpu.next_completion(ctx.now()) {
            self.gpu_handle = Some(ctx.schedule(at, Ev::GpuDone { req }));
        }
    }

    // ---- pipeline transitions ----

    fn start_preprocess(&mut self, ctx: &mut Context<'_, Ev>, req: u64) {
        let t = {
            let d = self.spec.model.t_preprocess;
            self.sample_dist(d, ctx.now(), ctx.rng())
        };
        self.reqs.get_mut(&req).expect("live request").phase_start = ctx.now();
        self.cpu.start(
            ctx.now(),
            jid(req, code::PRE),
            t,
            self.spec.model.http_cpu_weight,
        );
        self.resched_cpu(ctx);
    }

    fn request_download(&mut self, ctx: &mut Context<'_, Ev>, req: u64) {
        let now = ctx.now();
        self.reqs.get_mut(&req).expect("live request").phase_start = now;
        if self.download.try_acquire(now, req) {
            self.record_task(Task::WaitDownload, now, now);
            self.start_net_transfer(ctx, req);
        }
        // Otherwise the request sits in the download queue; the release
        // path resumes it (its wait-download time runs from phase_start).
    }

    fn start_net_transfer(&mut self, ctx: &mut Context<'_, Ev>, req: u64) {
        let bytes = self.images.sample_bytes(ctx.rng());
        // The fetch is dominated by the user-side uplink; the testbed link
        // only matters if it is more congested than the uplink.
        let uplink = {
            let d = self.spec.model.t_download_net;
            self.sample_dist(d, ctx.now(), ctx.rng())
        };
        let secs = self.link.begin_flow(bytes).max(uplink);
        self.reqs.get_mut(&req).expect("live request").phase_start = ctx.now();
        ctx.schedule_in(SimTime::from_secs_f64(secs), Ev::NetDone { req });
    }

    fn start_download_cpu(&mut self, ctx: &mut Context<'_, Ev>, req: u64) {
        let t = {
            let d = self.spec.model.t_download_cpu;
            self.sample_dist(d, ctx.now(), ctx.rng())
        };
        self.cpu.start(
            ctx.now(),
            jid(req, code::DOWNLOAD),
            t,
            self.spec.model.download_cpu_weight,
        );
        self.resched_cpu(ctx);
    }

    fn request_extract(&mut self, ctx: &mut Context<'_, Ev>, req: u64) {
        let now = ctx.now();
        self.reqs.get_mut(&req).expect("live request").phase_start = now;
        if self.extract.try_acquire(now, req) {
            self.record_task(Task::WaitExtract, now, now);
            self.start_extract(ctx, req);
        }
    }

    fn start_extract(&mut self, ctx: &mut Context<'_, Ev>, req: u64) {
        let t = {
            let d = self.spec.model.t_extract_gpu;
            self.sample_dist(d, ctx.now(), ctx.rng())
        };
        let now = ctx.now();
        self.reqs.get_mut(&req).expect("live request").phase_start = now;
        self.gpu.start(now, req, t, 1.0);
        // CPU-side feeding load for the duration of the inference: a
        // *reserved* job (feeding always wins the scheduler) that never
        // completes on its own (removed at GpuDone).
        self.cpu.start_reserved(
            now,
            jid(req, code::GPU_FEED),
            1e9,
            self.spec.model.extract_cpu_weight,
        );
        self.resched_gpu(ctx);
        self.resched_cpu(ctx);
    }

    fn start_process(&mut self, ctx: &mut Context<'_, Ev>, req: u64) {
        let t = {
            let d = self.spec.model.t_process;
            self.sample_dist(d, ctx.now(), ctx.rng())
        };
        self.reqs.get_mut(&req).expect("live request").phase_start = ctx.now();
        self.cpu.start(
            ctx.now(),
            jid(req, code::PROCESS),
            t,
            self.spec.model.http_cpu_weight,
        );
        self.resched_cpu(ctx);
    }

    fn request_simsearch(&mut self, ctx: &mut Context<'_, Ev>, req: u64) {
        let now = ctx.now();
        self.reqs.get_mut(&req).expect("live request").phase_start = now;
        if self.simsearch.try_acquire(now, req) {
            self.record_task(Task::WaitSimsearch, now, now);
            self.start_simsearch(ctx, req);
        }
    }

    fn start_simsearch(&mut self, ctx: &mut Context<'_, Ev>, req: u64) {
        let t = {
            let d = self.spec.model.t_simsearch;
            self.sample_dist(d, ctx.now(), ctx.rng())
        };
        self.reqs.get_mut(&req).expect("live request").phase_start = ctx.now();
        self.cpu.start(
            ctx.now(),
            jid(req, code::SIMSEARCH),
            t,
            self.spec.model.simsearch_cpu_weight,
        );
        self.resched_cpu(ctx);
    }

    fn start_postprocess(&mut self, ctx: &mut Context<'_, Ev>, req: u64) {
        let t = {
            let d = self.spec.model.t_postprocess;
            self.sample_dist(d, ctx.now(), ctx.rng())
        };
        self.reqs.get_mut(&req).expect("live request").phase_start = ctx.now();
        self.cpu.start(
            ctx.now(),
            jid(req, code::POST),
            t,
            self.spec.model.http_cpu_weight,
        );
        self.resched_cpu(ctx);
    }

    fn complete_request(&mut self, ctx: &mut Context<'_, Ev>, req: u64) {
        let now = ctx.now();
        let r = self.reqs.remove(&req).expect("live request");
        let response = (now - r.arrived).as_secs_f64();
        self.window_resp.push(response);
        self.completed += 1;
        if now > self.spec.warmup {
            self.completed_after_warmup += 1;
            self.responses.record(response);
        }
        if let Some(s) = &mut self.serving {
            if let Some(p) = s.policy {
                if response > p.slo {
                    s.totals.slo_violations += 1;
                    s.win_slo += 1;
                }
            }
            // Open loop: no client to reschedule. Pass the freed HTTP
            // slot down the admission queue (shedding stale waiters).
            self.release_admission(ctx);
            return;
        }
        // Release the HTTP slot; an admission-queued request starts now.
        if let Some(waiter) = self.http.release(now) {
            self.start_preprocess(ctx, waiter);
        }
        // Closed loop: the client thinks, then submits again.
        let think = {
            let d = self.spec.think;
            SimTime::from_secs_f64(d.sample(ctx.rng()))
        };
        ctx.schedule_in(think, Ev::Arrive { client: r.client });
    }

    /// Serving-mode release path: grant the freed HTTP slot to the
    /// oldest waiter, shedding any whose queueing delay already exceeds
    /// the policy deadline at the moment it would start service.
    fn release_admission(&mut self, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        while let Some(waiter) = self.http.release(now) {
            let s = self.serving.as_mut().expect("serving mode");
            let (id, enqueued) = s.waiting.pop_front().expect("mirrored admission queue");
            debug_assert_eq!(id, waiter, "admission FIFO mirror out of sync");
            let stale = s
                .policy
                .and_then(|p| p.shed_after)
                .map(|d| now - enqueued > d)
                .unwrap_or(false);
            if stale {
                s.totals.shed += 1;
                s.win_shed += 1;
                self.reqs.remove(&waiter);
                // The shed request held the freshly granted slot;
                // release again for the next waiter.
                continue;
            }
            s.totals.admitted += 1;
            self.start_preprocess(ctx, waiter);
            break;
        }
    }

    // ---- monitoring ----

    fn sample_window(&mut self, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        let t = now.as_secs_f64();
        let dt = self.spec.sample_interval.as_secs_f64();

        if now > self.spec.warmup && self.window_resp.count() > 0 {
            self.registry
                .record(names::RESPONSE, t, self.window_resp.mean());
            self.registry
                .record(names::THROUGHPUT, t, self.window_resp.count() as f64 / dt);
        }
        self.window_resp = OnlineStats::new();

        // Serving mode: shed expired waiters at the boundary (they are
        // a prefix of the FIFO — enqueue times are monotone), then
        // record this window's overload counters.
        if let Some(s) = &mut self.serving {
            if let Some(d) = s.policy.and_then(|p| p.shed_after) {
                while let Some(&(id, enq)) = s.waiting.front() {
                    if now - enq > d {
                        let cancelled = self.http.cancel_wait(now, id);
                        debug_assert!(cancelled, "mirrored waiter not in queue");
                        s.waiting.pop_front();
                        self.reqs.remove(&id);
                        s.totals.shed += 1;
                        s.win_shed += 1;
                    } else {
                        break;
                    }
                }
            }
            self.registry
                .record(names::OFFERED, t, s.win_offered as f64);
            self.registry
                .record(names::REJECTED, t, s.win_rejected as f64);
            self.registry.record(names::SHED, t, s.win_shed as f64);
            self.registry
                .record(names::SLO_VIOLATIONS, t, s.win_slo as f64);
            if let Some(tr) = &self.tracer {
                tr.point_at(
                    now.as_micros(),
                    "sim",
                    "overload",
                    None,
                    e2c_trace::fields([
                        ("offered", s.win_offered.into()),
                        ("rejected", s.win_rejected.into()),
                        ("shed", s.win_shed.into()),
                        ("slo_violations", s.win_slo.into()),
                    ]),
                );
            }
            s.win_offered = 0;
            s.win_rejected = 0;
            s.win_shed = 0;
            s.win_slo = 0;
        }

        // Windowed CPU utilization from the demand integral.
        let cpu_int = self.cpu.demand_integral(now);
        let cpu_util = ((cpu_int - self.prev_cpu_demand) / dt / self.spec.model.cores).min(1.0);
        self.prev_cpu_demand = cpu_int;
        self.registry.record(names::CPU, t, cpu_util);

        // Windowed pool busy fractions.
        let caps = [
            self.spec.config.http as f64,
            self.spec.config.download as f64,
            self.spec.config.extract as f64,
            self.spec.config.simsearch as f64,
        ];
        let metric_names = [
            names::HTTP_BUSY,
            names::DOWNLOAD_BUSY,
            names::EXTRACT_BUSY,
            names::SIMSEARCH_BUSY,
        ];
        let ints = [
            self.http.busy_integral(now),
            self.download.busy_integral(now),
            self.extract.busy_integral(now),
            self.simsearch.busy_integral(now),
        ];
        for i in 0..4 {
            let frac = (ints[i] - self.prev_busy[i]) / (dt * caps[i]);
            self.prev_busy[i] = ints[i];
            self.registry.record(metric_names[i], t, frac.min(1.0));
        }

        // Per-pool queue depths at the window boundary: where requests
        // pile up is exactly what the trace layer needs to explain a
        // configuration's response time.
        let depths = [
            (names::HTTP_QUEUE, self.http.queue_len()),
            (names::DOWNLOAD_QUEUE, self.download.queue_len()),
            (names::EXTRACT_QUEUE, self.extract.queue_len()),
            (names::SIMSEARCH_QUEUE, self.simsearch.queue_len()),
        ];
        for (name, depth) in depths {
            self.registry.record(name, t, depth as f64);
        }
        if let Some(tr) = &self.tracer {
            tr.point_at(
                now.as_micros(),
                "sim",
                "queues",
                None,
                e2c_trace::fields([
                    ("http", depths[0].1.into()),
                    ("download", depths[1].1.into()),
                    ("extract", depths[2].1.into()),
                    ("simsearch", depths[3].1.into()),
                ]),
            );
        }

        // Constant-per-config footprints, recorded each window so the
        // series render flat (Fig. 9d/9e style).
        self.registry.record(
            names::GPU_MEM,
            t,
            self.spec.model.gpu_memory_gb(self.spec.config.extract),
        );
        self.registry.record(
            names::SYS_MEM,
            t,
            self.spec
                .model
                .sys_memory_gb(self.spec.config.extract, self.spec.config.http),
        );

        let next = now + self.spec.sample_interval;
        if next <= self.spec.duration {
            ctx.schedule(next, Ev::Sample);
        }
    }

    /// Final packaging of a finished run.
    fn finish(mut self) -> EngineMetrics {
        if let Some(s) = &mut self.serving {
            // Requests still queued at the horizon were offered but
            // never served: account them as sheds so conservation
            // (admitted + rejected + shed == offered) holds exactly.
            s.totals.shed += s.waiting.len() as u64;
            s.waiting.clear();
        }
        let mut response = self.registry.summary(names::RESPONSE);
        if self.crashed {
            // A crashed engine produced no valid measurement; a NaN mean
            // is the sentinel the tuning layer maps to a failed trial.
            response.mean = f64::NAN;
        }
        let task_times: BTreeMap<String, Summary> = self
            .task_stats
            .iter()
            .map(|(label, stats)| (label.to_string(), Summary::from(stats)))
            .collect();
        let measured = self.spec.duration.saturating_sub(self.spec.warmup);
        let throughput = if measured.as_secs_f64() > 0.0 {
            self.completed_after_warmup as f64 / measured.as_secs_f64()
        } else {
            0.0
        };
        // `None` when no request finished after warm-up — an empty
        // histogram used to masquerade as "all-zero latencies" here.
        let response_percentiles = if self.responses.count() == 0 {
            None
        } else {
            let pct = |q| self.responses.quantile(q).expect("non-empty histogram");
            Some((pct(0.50), pct(0.95), pct(0.99)))
        };
        EngineMetrics {
            config: self.spec.config,
            clients: self.spec.clients,
            response,
            response_percentiles,
            task_times,
            completed: self.completed,
            throughput,
            gpu_mem_gb: self.spec.model.gpu_memory_gb(self.spec.config.extract),
            sys_mem_gb: self
                .spec
                .model
                .sys_memory_gb(self.spec.config.extract, self.spec.config.http),
            overload: self.serving.as_ref().map(|s| s.totals),
            registry: self.registry,
        }
    }
}

impl Model for Experiment {
    type Event = Ev;

    fn handle(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
        // Crash fault: once the trigger time is reached the engine is
        // gone — drop every event, schedule nothing, let the queue drain.
        if let Some(ServiceFault {
            at,
            kind: ServiceFaultKind::Crash,
        }) = self.spec.fault
        {
            if ctx.now() >= at {
                if !self.crashed {
                    if let Some(tr) = &self.tracer {
                        tr.point_at(
                            ctx.now().as_micros(),
                            "sim",
                            "crash",
                            None,
                            e2c_trace::Fields::new(),
                        );
                    }
                }
                self.crashed = true;
                return;
            }
        }
        match ev {
            Ev::Arrive { client } => {
                let req = self.next_req;
                self.next_req += 1;
                let now = ctx.now();
                if let Some(s) = &mut self.serving {
                    s.totals.offered += 1;
                    s.win_offered += 1;
                }
                self.reqs.insert(
                    req,
                    Req {
                        client,
                        arrived: now,
                        phase_start: now,
                    },
                );
                if self.http.try_acquire(now, req) {
                    if let Some(s) = &mut self.serving {
                        s.totals.admitted += 1;
                    }
                    self.start_preprocess(ctx, req);
                } else if let Some(s) = &mut self.serving {
                    // Queued. Enforce the admission bound: the arrival
                    // that would push the queue past it is bounced.
                    let over = s
                        .policy
                        .map(|p| self.http.queue_len() > p.queue_bound)
                        .unwrap_or(false);
                    if over {
                        let cancelled = self.http.cancel_wait(now, req);
                        debug_assert!(cancelled, "rejected arrival not in queue");
                        self.reqs.remove(&req);
                        s.totals.rejected += 1;
                        s.win_rejected += 1;
                    } else {
                        s.waiting.push_back((req, now));
                        s.totals.peak_queue_depth =
                            s.totals.peak_queue_depth.max(self.http.queue_len());
                    }
                }
                // Closed loop: the request waits in the (unbounded) HTTP
                // admission queue; complete_request's release starts it.
            }

            Ev::CpuDone { job } => {
                let now = ctx.now();
                let req = job / 8;
                let c = job % 8;
                let removed = self.cpu.remove(now, job);
                debug_assert!(removed, "completion for unknown CPU job");
                let phase_start = self.reqs.get(&req).expect("live request").phase_start;
                match c {
                    code::PRE => {
                        self.record_task(Task::PreProcess, phase_start, now);
                        self.request_download(ctx, req);
                    }
                    code::DOWNLOAD => {
                        self.record_task(Task::Download, phase_start, now);
                        // Free the download thread; resume the next waiter
                        // (its wait-download span ends now).
                        if let Some(waiter) = self.download.release(now) {
                            let ws = self.reqs.get(&waiter).expect("live waiter").phase_start;
                            self.record_task(Task::WaitDownload, ws, now);
                            self.start_net_transfer(ctx, waiter);
                        }
                        self.request_extract(ctx, req);
                    }
                    code::PROCESS => {
                        self.record_task(Task::Process, phase_start, now);
                        self.request_simsearch(ctx, req);
                    }
                    code::SIMSEARCH => {
                        self.record_task(Task::Simsearch, phase_start, now);
                        if let Some(waiter) = self.simsearch.release(now) {
                            let ws = self.reqs.get(&waiter).expect("live waiter").phase_start;
                            self.record_task(Task::WaitSimsearch, ws, now);
                            self.start_simsearch(ctx, waiter);
                        }
                        self.start_postprocess(ctx, req);
                    }
                    code::POST => {
                        self.record_task(Task::PostProcess, phase_start, now);
                        self.complete_request(ctx, req);
                    }
                    other => unreachable!("unexpected CPU job code {other}"),
                }
                self.resched_cpu(ctx);
            }

            Ev::GpuDone { req } => {
                let now = ctx.now();
                let removed = self.gpu.remove(now, req);
                debug_assert!(removed, "completion for unknown GPU job");
                self.cpu.remove(now, jid(req, code::GPU_FEED));
                let phase_start = self.reqs.get(&req).expect("live request").phase_start;
                self.record_task(Task::Extract, phase_start, now);
                if let Some(waiter) = self.extract.release(now) {
                    let ws = self.reqs.get(&waiter).expect("live waiter").phase_start;
                    self.record_task(Task::WaitExtract, ws, now);
                    self.start_extract(ctx, waiter);
                }
                self.start_process(ctx, req);
                self.resched_gpu(ctx);
                self.resched_cpu(ctx);
            }

            Ev::NetDone { req } => {
                self.link.end_flow();
                self.start_download_cpu(ctx, req);
            }

            Ev::Sample => self.sample_window(ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(config: PoolConfig, clients: usize) -> ExperimentSpec {
        ExperimentSpec {
            duration: SimTime::from_secs(60),
            warmup: SimTime::from_secs(10),
            ..ExperimentSpec::paper(config, clients)
        }
    }

    #[test]
    fn single_client_flows_through_pipeline() {
        let spec = tiny_spec(PoolConfig::baseline(), 1);
        let m = Experiment::run(spec, 1);
        assert!(m.completed > 10, "completed {}", m.completed);
        // One uncontended request: roughly the sum of service means.
        let resp = m.response.mean;
        assert!(
            (0.9..1.6).contains(&resp),
            "uncontended response {resp} out of expected band"
        );
        // Every pipeline task appears in the stats.
        for t in Task::ORDER {
            assert!(
                m.task_times.contains_key(t.label()),
                "missing task {}",
                t.label()
            );
        }
        // No waiting with a single client.
        assert!(m.task_mean("wait-extract") < 1e-6);
        assert!(m.task_mean("wait-simsearch") < 1e-6);
    }

    #[test]
    fn response_time_grows_with_load() {
        let cfg = PoolConfig::baseline();
        let r40 = Experiment::run(tiny_spec(cfg, 40), 2).response.mean;
        let r80 = Experiment::run(tiny_spec(cfg, 80), 2).response.mean;
        let r120 = Experiment::run(tiny_spec(cfg, 120), 2).response.mean;
        assert!(r40 < r80 && r80 < r120, "{r40} {r80} {r120}");
    }

    #[test]
    fn conservation_little_law_roughly_holds() {
        let spec = tiny_spec(PoolConfig::baseline(), 80);
        let m = Experiment::run(spec, 3);
        // N = X * R within ~15% (finite run, warm-up effects).
        let n = m.throughput * m.response.mean;
        assert!(
            (n - 80.0).abs() / 80.0 < 0.15,
            "Little's law: X*R = {n}, N = 80"
        );
    }

    #[test]
    fn baseline_is_admission_limited_with_hot_extract_pool() {
        // With the baseline's HTTP pool of 40, the engine is admission-
        // limited: the extract pool runs hot (but not pinned - the admitted
        // population can't quite keep it saturated) and simsearch retains
        // headroom. Raising HTTP to the optimum's 54 saturates extract.
        let m = Experiment::run(tiny_spec(PoolConfig::baseline(), 80), 4);
        let extract_busy = m.mean_busy(names::EXTRACT_BUSY);
        assert!(
            (0.70..0.999).contains(&extract_busy),
            "extract busy {extract_busy}"
        );
        let ss_busy = m.mean_busy(names::SIMSEARCH_BUSY);
        assert!(ss_busy < 0.95, "simsearch busy {ss_busy}");
        let opt = Experiment::run(tiny_spec(PoolConfig::preliminary_optimum(), 80), 4);
        assert!(
            opt.mean_busy(names::EXTRACT_BUSY) > extract_busy,
            "wider admission must push the extract pool harder"
        );
    }

    #[test]
    fn gpu_memory_reflects_extract_pool() {
        let mut cfg = PoolConfig::baseline();
        cfg.extract = 9;
        let m9 = Experiment::run(tiny_spec(cfg, 10), 5);
        cfg.extract = 5;
        let m5 = Experiment::run(tiny_spec(cfg, 10), 5);
        assert!(m9.gpu_mem_gb > m5.gpu_mem_gb);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = tiny_spec(PoolConfig::baseline(), 40);
        let a = Experiment::run(spec, 42);
        let b = Experiment::run(spec, 42);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.response.mean, b.response.mean);
        let c = Experiment::run(spec, 43);
        assert_ne!(a.completed, c.completed);
    }

    #[test]
    fn percentiles_are_ordered_and_bracket_the_mean() {
        let m = Experiment::run(tiny_spec(PoolConfig::baseline(), 80), 21);
        let (p50, p95, p99) = m.response_percentiles.expect("healthy run has data");
        assert!(p50 > 0.0);
        assert!(p50 <= p95 && p95 <= p99, "({p50}, {p95}, {p99})");
        // The mean of a right-skewed queueing distribution sits between
        // the median and the upper tail.
        assert!(
            p99 >= m.response.mean,
            "p99 {p99} < mean {}",
            m.response.mean
        );
    }

    #[test]
    fn repeated_runs_pool_windows() {
        let spec = tiny_spec(PoolConfig::baseline(), 40);
        let rep = Experiment::run_repeated(spec, 3, 7);
        assert_eq!(rep.runs.len(), 3);
        let per_run: u64 = rep.runs.iter().map(|r| r.response.n).sum();
        assert_eq!(rep.response.n, per_run);
        assert!(rep.response.std >= 0.0);
    }

    #[test]
    fn http_admission_queues_excess_clients() {
        // 80 clients on an HTTP pool of 40: mean in-service concurrency
        // equals the pool, so HTTP busy ≈ 100%.
        let spec = tiny_spec(PoolConfig::baseline(), 80);
        let m = Experiment::run(spec, 8);
        assert!(m.mean_busy(names::HTTP_BUSY) > 0.99);
    }

    #[test]
    #[should_panic(expected = "invalid pool configuration")]
    fn zero_pool_rejected() {
        let mut cfg = PoolConfig::baseline();
        cfg.download = 0;
        Experiment::new(ExperimentSpec::paper(cfg, 10));
    }

    #[test]
    fn crash_fault_yields_nan_response() {
        let mut spec = tiny_spec(PoolConfig::baseline(), 20);
        spec.fault = Some(ServiceFault {
            at: SimTime::from_secs(30),
            kind: ServiceFaultKind::Crash,
        });
        let m = Experiment::run(spec, 9);
        assert!(m.response.mean.is_nan(), "crash must report NaN");
        // Work stopped at the trigger: far fewer completions than the
        // fault-free run with the same seed.
        let healthy = Experiment::run(tiny_spec(PoolConfig::baseline(), 20), 9);
        assert!(
            m.completed < healthy.completed / 2 + 1,
            "crashed {} vs healthy {}",
            m.completed,
            healthy.completed
        );
    }

    #[test]
    fn queue_depths_are_sampled_every_window() {
        let m = Experiment::run(tiny_spec(PoolConfig::baseline(), 80), 6);
        for name in [
            names::HTTP_QUEUE,
            names::DOWNLOAD_QUEUE,
            names::EXTRACT_QUEUE,
            names::SIMSEARCH_QUEUE,
        ] {
            let series = m.registry.get(name).expect("queue series recorded");
            assert!(series.len() > 3, "{name}: {} windows", series.len());
        }
        // 80 clients on an HTTP pool of 40: admission must queue.
        assert!(
            m.registry.summary(names::HTTP_QUEUE).mean > 1.0,
            "expected admission queueing"
        );
    }

    #[test]
    fn early_crash_reports_no_percentiles() {
        // Crash before warm-up ends: zero post-warmup requests, so the
        // percentiles must read "no data", not (0.0, 0.0, 0.0).
        let mut spec = tiny_spec(PoolConfig::baseline(), 20);
        spec.fault = Some(ServiceFault {
            at: SimTime::from_secs(5),
            kind: ServiceFaultKind::Crash,
        });
        let m = Experiment::run(spec, 9);
        assert_eq!(m.response_percentiles, None);
    }

    #[test]
    fn traced_crash_run_completes_and_marks_the_crash() {
        let tracer = e2c_trace::Tracer::new();
        let mut spec = tiny_spec(PoolConfig::baseline(), 20);
        spec.fault = Some(ServiceFault {
            at: SimTime::from_secs(30),
            kind: ServiceFaultKind::Crash,
        });
        let m = Experiment::run_traced(spec, 9, Some(tracer.clone()));
        assert!(m.response.mean.is_nan());
        let events = tracer.snapshot();
        let crashes: Vec<_> = events
            .iter()
            .filter(|e| e.phase == "sim" && e.name == "crash")
            .collect();
        assert_eq!(crashes.len(), 1, "exactly one crash marker");
        assert_eq!(crashes[0].vt, SimTime::from_secs(30).as_micros());
        assert!(
            events
                .iter()
                .any(|e| e.phase == "sim" && e.name == "queues"),
            "queue-depth events recorded before the crash"
        );
    }

    #[test]
    fn traced_run_matches_untraced_metrics() {
        let spec = tiny_spec(PoolConfig::baseline(), 40);
        let plain = Experiment::run(spec, 42);
        let traced = Experiment::run_traced(spec, 42, Some(e2c_trace::Tracer::new()));
        assert_eq!(plain.completed, traced.completed);
        assert_eq!(plain.response.mean, traced.response.mean);
    }

    #[test]
    fn crash_poisons_repeated_runs() {
        let mut spec = tiny_spec(PoolConfig::baseline(), 10);
        spec.fault = Some(ServiceFault {
            at: SimTime::from_secs(30),
            kind: ServiceFaultKind::Crash,
        });
        let rep = Experiment::run_repeated(spec, 3, 7);
        assert!(rep.response.mean.is_nan());
    }

    #[test]
    fn slowdown_fault_inflates_response_times() {
        let base = tiny_spec(PoolConfig::baseline(), 20);
        let healthy = Experiment::run(base, 11).response.mean;
        let mut slowed = base;
        slowed.fault = Some(ServiceFault {
            at: SimTime::ZERO,
            kind: ServiceFaultKind::SlowDown { factor: 3.0 },
        });
        let degraded = Experiment::run(slowed, 11).response.mean;
        assert!(
            degraded > healthy * 1.5,
            "slow-down: degraded {degraded} vs healthy {healthy}"
        );
    }

    #[test]
    fn fault_after_the_run_changes_nothing() {
        let base = tiny_spec(PoolConfig::baseline(), 20);
        let mut inert = base;
        inert.fault = Some(ServiceFault {
            at: base.duration + SimTime::from_secs(1),
            kind: ServiceFaultKind::SlowDown { factor: 10.0 },
        });
        let a = Experiment::run(base, 13);
        let b = Experiment::run(inert, 13);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.response.mean, b.response.mean);
    }

    #[test]
    #[should_panic(expected = "slow-down factor")]
    fn nonpositive_slowdown_factor_rejected() {
        let mut spec = tiny_spec(PoolConfig::baseline(), 5);
        spec.fault = Some(ServiceFault {
            at: SimTime::ZERO,
            kind: ServiceFaultKind::SlowDown { factor: 0.0 },
        });
        Experiment::new(spec);
    }

    // ---- open-loop serving ----

    fn serving_bits(m: &EngineMetrics) -> (u64, u64, u64) {
        (
            m.completed,
            m.response.mean.to_bits(),
            m.throughput.to_bits(),
        )
    }

    #[test]
    fn light_serving_run_admits_everything() {
        let sched = RateSchedule::constant(5.0, SimTime::from_secs(120)).unwrap();
        let spec = ExperimentSpec::serving(PoolConfig::baseline(), sched.horizon());
        let policy = OverloadPolicy::paper_slo(100);
        let m = Experiment::run_serving(spec, &sched, Some(policy), 3);
        let o = m.overload.expect("serving run reports overload totals");
        assert!(o.offered > 300, "offered {}", o.offered);
        assert_eq!(o.rejected, 0);
        assert_eq!(o.shed, 0);
        assert_eq!(o.admitted + o.rejected + o.shed, o.offered);
        assert!(m.completed > 0);
    }

    #[test]
    fn saturating_serving_run_rejects_and_sheds() {
        // ~100 req/s against the baseline config (capacity well below
        // that): the bounded queue fills, rejections and sheds follow.
        let sched = RateSchedule::constant(100.0, SimTime::from_secs(120)).unwrap();
        let spec = ExperimentSpec::serving(PoolConfig::baseline(), sched.horizon());
        let policy = OverloadPolicy {
            queue_bound: 50,
            shed_after: Some(SimTime::from_secs(8)),
            slo: 4.0,
        };
        let m = Experiment::run_serving(spec, &sched, Some(policy), 3);
        let o = m.overload.unwrap();
        assert!(o.rejected > 0, "expected rejections: {o:?}");
        assert!(o.shed > 0, "expected sheds: {o:?}");
        assert!(o.slo_violations > 0, "expected SLO violations: {o:?}");
        assert_eq!(o.admitted + o.rejected + o.shed, o.offered);
        assert!(o.peak_queue_depth <= 50, "bound violated: {o:?}");
        // The window series rode the registry.
        assert!(m.registry.summary(names::REJECTED).mean > 0.0);
        assert!(m.registry.summary(names::SHED).mean >= 0.0);
    }

    #[test]
    fn no_op_policy_is_bitwise_identical_to_no_policy() {
        // A policy that never triggers must not perturb the run at all:
        // admission checks draw no randomness.
        let sched = RateSchedule::constant(60.0, SimTime::from_secs(120)).unwrap();
        let spec = ExperimentSpec::serving(PoolConfig::baseline(), sched.horizon());
        let inert = OverloadPolicy {
            queue_bound: usize::MAX,
            shed_after: None,
            slo: 4.0,
        };
        let a = Experiment::run_serving(spec, &sched, None, 11);
        let b = Experiment::run_serving(spec, &sched, Some(inert), 11);
        assert_eq!(serving_bits(&a), serving_bits(&b));
        let (oa, mut ob) = (a.overload.unwrap(), b.overload.unwrap());
        // SLO accounting is pure bookkeeping that needs a policy to
        // define the bound; everything else must match exactly.
        assert!(ob.slo_violations > 0, "saturated run must violate SLO");
        ob.slo_violations = oa.slo_violations;
        assert_eq!(oa, ob);
        assert_eq!(oa.rejected, 0);
        // Deadline sheds are impossible without a policy; any sheds
        // here are the end-of-run queue flush, identical in both runs.
        assert_eq!(oa.admitted + oa.shed, oa.offered);
    }

    #[test]
    fn serving_is_deterministic_per_seed() {
        let sched = RateSchedule::constant(80.0, SimTime::from_secs(90)).unwrap();
        let spec = ExperimentSpec::serving(PoolConfig::baseline(), sched.horizon());
        let policy = OverloadPolicy::paper_slo(30);
        let a = Experiment::run_serving(spec, &sched, Some(policy), 42);
        let b = Experiment::run_serving(spec, &sched, Some(policy), 42);
        assert_eq!(serving_bits(&a), serving_bits(&b));
        assert_eq!(a.overload, b.overload);
        let c = Experiment::run_serving(spec, &sched, Some(policy), 43);
        assert_ne!(a.overload.unwrap().offered, c.overload.unwrap().offered);
    }

    #[test]
    fn zero_rate_schedule_serves_nothing() {
        let sched = RateSchedule::constant(0.0, SimTime::from_secs(60)).unwrap();
        let spec = ExperimentSpec::serving(PoolConfig::baseline(), sched.horizon());
        let m = Experiment::run_serving(spec, &sched, None, 1);
        let o = m.overload.unwrap();
        assert_eq!(o.offered, 0);
        assert_eq!(m.completed, 0);
    }
}
