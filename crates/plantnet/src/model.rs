//! Calibrated engine constants.
//!
//! These constants define the synthetic engine. They were calibrated (see
//! EXPERIMENTS.md) against the paper's anchor points:
//!
//! * baseline (40/40/7/40) at 80 simultaneous requests ⇒ user response
//!   time around 2.6–2.7 s (Table III);
//! * baseline at 120 simultaneous requests ⇒ around 3.9 s (Fig. 3);
//! * CPU usage at the preliminary optimum: 85–100% with 5–7 extract
//!   threads, pinned at 100% with 8–9 (Fig. 9c);
//! * extract-pool busy ≈ 100% for sizes 5–7 (Fig. 9f), simsearch-pool
//!   busy ≈ 50–60% for sizes 5–7 at 53 threads (Fig. 9g).
//!
//! The load-bearing mechanism is the CPU budget: Simsearch work plus the
//! CPU-side GPU feeding (JPEG decode, tensor staging — `extract_cpu_weight`
//! per active inference) must brush against the 40-core capacity exactly
//! when the extract pool grows past ~7, so that extra GPU concurrency
//! *steals* CPU from Simsearch (the paper's central observation).

use e2c_des::Dist;

/// All tunable constants of the synthetic Identification Engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineModel {
    /// CPU cores of the engine node (the paper's sizing assumes 40).
    pub cores: f64,
    /// GPUs serving the extract pool (the chifflot nodes carry two V100s;
    /// the production engine uses one — §IV notes hardware changes
    /// require re-running the optimization, which `ext_second_gpu`
    /// demonstrates).
    pub gpus: u32,
    /// Query-parameter decoding time (`pre-process`).
    pub t_preprocess: Dist,
    /// CPU weight of an HTTP bookkeeping task.
    pub http_cpu_weight: f64,
    /// Mean uploaded-image size in bytes (drives the network transfer).
    pub image_bytes_mean: f64,
    /// Coefficient of variation of image sizes.
    pub image_bytes_cv: f64,
    /// End-to-end time to fetch one query image (user uplink / origin
    /// fetch — hundreds of milliseconds; this is why the HTTP pool must
    /// cover far more than the compute stages).
    pub t_download_net: Dist,
    /// CPU time to decode/stage a downloaded image.
    pub t_download_cpu: Dist,
    /// CPU weight of a download task.
    pub download_cpu_weight: f64,
    /// GPU inference time for a single inference with no concurrency.
    pub t_extract_gpu: Dist,
    /// GPU efficiency loss per extra concurrent inference (the Saturating
    /// discipline's alpha): per-inference time is
    /// `t · (1 + alpha·(c−1))` until the parallelism ceiling binds.
    pub gpu_alpha: f64,
    /// Hard ceiling on the GPU's effective parallelism, in job units: the
    /// device never sustains more than `cap / t_extract` inferences per
    /// second however many threads feed it.
    pub gpu_parallel_cap: f64,
    /// CPU cores consumed feeding one active GPU inference (decode,
    /// staging, inference-runtime threads). Feeding is latency-critical, so
    /// these cores are *reserved*: when the node saturates, feeding wins
    /// and Simsearch loses — the Fig. 9 mechanism.
    pub extract_cpu_weight: f64,
    /// GPU memory resident model footprint (GB).
    pub gpu_mem_base_gb: f64,
    /// GPU memory per extract thread (GB) — activations + staging buffers.
    pub gpu_mem_per_thread_gb: f64,
    /// Classification/similarity post-processing time (`process`).
    pub t_process: Dist,
    /// Similarity-search time on an uncontended core.
    pub t_simsearch: Dist,
    /// CPU weight of a similarity-search task.
    pub simsearch_cpu_weight: f64,
    /// Response formatting time (`post-process`).
    pub t_postprocess: Dist,
    /// Container base memory (GB).
    pub sys_mem_base_gb: f64,
    /// System memory per extract thread (GB).
    pub sys_mem_per_extract_gb: f64,
    /// System memory per HTTP thread (GB) — buffers per in-flight request.
    pub sys_mem_per_http_gb: f64,
}

impl Default for EngineModel {
    fn default() -> Self {
        EngineModel {
            cores: 40.0,
            gpus: 1,
            t_preprocess: Dist::LogNormal {
                mean: 0.010,
                cv: 0.3,
            },
            http_cpu_weight: 0.5,
            image_bytes_mean: 120_000.0,
            image_bytes_cv: 0.4,
            t_download_net: Dist::LogNormal {
                mean: 0.22,
                cv: 0.6,
            },
            t_download_cpu: Dist::LogNormal {
                mean: 0.030,
                cv: 0.3,
            },
            download_cpu_weight: 0.5,
            t_extract_gpu: Dist::LogNormal {
                mean: 0.0685,
                cv: 0.15,
            },
            gpu_alpha: 0.35,
            gpu_parallel_cap: 2.28,
            extract_cpu_weight: 2.0,
            gpu_mem_base_gb: 2.5,
            gpu_mem_per_thread_gb: 0.65,
            t_process: Dist::LogNormal {
                mean: 0.012,
                cv: 0.3,
            },
            t_simsearch: Dist::LogNormal {
                mean: 0.80,
                cv: 0.45,
            },
            simsearch_cpu_weight: 1.0,
            t_postprocess: Dist::LogNormal {
                mean: 0.008,
                cv: 0.3,
            },
            sys_mem_base_gb: 6.0,
            sys_mem_per_extract_gb: 0.5,
            sys_mem_per_http_gb: 0.05,
        }
    }
}

impl EngineModel {
    /// GPU memory footprint (GB) for a given extract pool size. Constant
    /// over a run (buffers are allocated at pool creation) — matching
    /// Fig. 9d's flat-over-time curves that step with the pool size.
    pub fn gpu_memory_gb(&self, extract_threads: u32) -> f64 {
        // Each active device holds a copy of the model weights; the
        // per-thread buffers split across devices.
        self.gpu_mem_base_gb * self.gpus.max(1) as f64
            + self.gpu_mem_per_thread_gb * extract_threads as f64
    }

    /// Container system memory (GB) for a configuration.
    pub fn sys_memory_gb(&self, extract_threads: u32, http_threads: u32) -> f64 {
        self.sys_mem_base_gb
            + self.sys_mem_per_extract_gb * extract_threads as f64
            + self.sys_mem_per_http_gb * http_threads as f64
    }

    /// Ideal GPU throughput (inferences/s) at concurrency `c` — the
    /// saturating curve `c / (t·(1+alpha(c−1)))`, clipped at the
    /// parallelism ceiling `cap / t`.
    pub fn gpu_throughput(&self, c: u32) -> f64 {
        if c == 0 {
            return 0.0;
        }
        let d = self.gpus.max(1) as f64;
        let per_device = (c as f64 / d).ceil();
        let t = self.t_extract_gpu.mean();
        let curve = c as f64 / (t * (1.0 + self.gpu_alpha * (per_device - 1.0)));
        curve.min(d * self.gpu_parallel_cap / t)
    }

    /// Maximum request rate the CPU sustains with `c` reserved feeding
    /// slots: `(cores − c·w_feed − overhead) / t_simsearch` — the
    /// capacity-split bound that caps throughput once feeding crowds the
    /// node (back-of-envelope; the simulation realizes it dynamically).
    pub fn cpu_capped_throughput(&self, c: u32) -> f64 {
        let misc = 1.0; // downloads + HTTP bookkeeping cores
        let left = self.cores - self.extract_cpu_weight * c as f64 - misc;
        (left / (self.t_simsearch.mean() * self.simsearch_cpu_weight)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_memory_scales_with_pool() {
        let m = EngineModel::default();
        let at6 = m.gpu_memory_gb(6);
        let at7 = m.gpu_memory_gb(7);
        let at9 = m.gpu_memory_gb(9);
        assert!(at6 < at7 && at7 < at9);
        // Around 7 GB at 7 threads (the paper's refined figure).
        assert!((5.5..8.5).contains(&at7), "{at7}");
    }

    #[test]
    fn sys_memory_scales_with_extract() {
        let m = EngineModel::default();
        assert!(m.sys_memory_gb(9, 54) > m.sys_memory_gb(5, 54));
        assert!(m.sys_memory_gb(7, 54) > m.sys_memory_gb(7, 40));
    }

    #[test]
    fn gpu_throughput_saturates() {
        let m = EngineModel::default();
        let mut last = 0.0;
        let mut gains = Vec::new();
        for c in 1..=9 {
            let x = m.gpu_throughput(c);
            assert!(x >= last, "throughput must not fall with concurrency");
            gains.push(x - last);
            last = x;
        }
        // Diminishing returns: each extra thread buys less, and the
        // parallelism ceiling flattens the curve entirely at the high end.
        for w in gains.windows(2) {
            assert!(w[1] < w[0] + 1e-9, "{gains:?}");
        }
        assert!(
            m.gpu_throughput(9) <= m.gpu_throughput(8) + 1e-9,
            "ceiling must bind by 9 threads"
        );
    }

    #[test]
    fn second_gpu_raises_throughput_but_cpu_still_caps() {
        let two = EngineModel {
            gpus: 2,
            ..EngineModel::default()
        };
        let one = EngineModel::default();
        // At matched concurrency the second device buys real throughput.
        assert!(two.gpu_throughput(8) > one.gpu_throughput(8) * 1.3);
        // But the CPU feeding budget is unchanged: past ~9 threads the
        // node runs out of cores before the GPUs run out of parallelism.
        for c in 10..=14 {
            assert!(
                two.cpu_capped_throughput(c) < two.gpu_throughput(c),
                "extract={c}: CPU must be the wall with two GPUs"
            );
        }
        // Second device also means a second copy of the weights.
        assert!(two.gpu_memory_gb(8) > one.gpu_memory_gb(8));
    }

    #[test]
    fn bottleneck_crosses_between_extract_7_and_8() {
        // The central calibration property (Fig. 9): with 5–7 extract
        // threads the GPU is the bottleneck (CPU bound above GPU curve);
        // with 8–9 the reserved feeding cores squeeze Simsearch below the
        // GPU's capability — the bottleneck flips to the CPU.
        let m = EngineModel::default();
        for c in 5..=6 {
            assert!(
                m.cpu_capped_throughput(c) >= m.gpu_throughput(c),
                "extract={c}: CPU cap {} should not sit below GPU {}",
                m.cpu_capped_throughput(c),
                m.gpu_throughput(c)
            );
        }
        // 7 is the knife edge: the two bounds within ~7% of each other.
        let gap = (m.cpu_capped_throughput(7) - m.gpu_throughput(7)).abs() / m.gpu_throughput(7);
        assert!(gap < 0.07, "extract=7 should be the crossover, gap {gap}");
        for c in 8..=9 {
            assert!(
                m.cpu_capped_throughput(c) < m.gpu_throughput(c) * 0.95,
                "extract={c}: CPU cap {} must bind below GPU {}",
                m.cpu_capped_throughput(c),
                m.gpu_throughput(c)
            );
        }
        // The system peak sits at 6 threads (the refined optimum), with 7
        // a close second; pushing to 9 loses real capacity.
        let sys = |c: u32| m.gpu_throughput(c).min(m.cpu_capped_throughput(c));
        assert!(sys(6) >= sys(7), "refined optimum must not lose to 7");
        assert!((sys(6) - sys(7)) / sys(7) < 0.06, "6 and 7 near-tie");
        assert!(sys(7) > sys(5), "7 must beat 5");
        assert!(sys(7) > sys(9), "7 must beat 9");
    }
}
