//! Metric collection for engine experiments.
//!
//! The paper samples metric values every 10 seconds over each 23-minute
//! run and reports the mean ± std over all windows of all repetitions
//! (138 × 7 = 966 measurements). [`EngineMetrics`] holds one run's series
//! and summaries; [`RepeatedMetrics`] merges repetitions the same way.

use crate::config::PoolConfig;
use e2c_metrics::{OnlineStats, Registry, Summary};
use std::collections::BTreeMap;

/// Metric names used in the registry (shared with the harness bins).
pub mod names {
    /// Mean user response time per window (seconds).
    pub const RESPONSE: &str = "user_resp_time";
    /// CPU utilization per window (0–1).
    pub const CPU: &str = "cpu_usage";
    /// GPU memory footprint (GB).
    pub const GPU_MEM: &str = "gpu_memory_gb";
    /// Container memory footprint (GB).
    pub const SYS_MEM: &str = "sys_memory_gb";
    /// Requests completed per second in the window.
    pub const THROUGHPUT: &str = "throughput";
    /// Busy fraction of the extract pool per window.
    pub const EXTRACT_BUSY: &str = "extract_pool_busy";
    /// Busy fraction of the simsearch pool per window.
    pub const SIMSEARCH_BUSY: &str = "simsearch_pool_busy";
    /// Busy fraction of the HTTP pool per window.
    pub const HTTP_BUSY: &str = "http_pool_busy";
    /// Busy fraction of the download pool per window.
    pub const DOWNLOAD_BUSY: &str = "download_pool_busy";
    /// Requests waiting on the HTTP admission pool at the window boundary.
    pub const HTTP_QUEUE: &str = "http_queue_depth";
    /// Requests waiting on the download pool at the window boundary.
    pub const DOWNLOAD_QUEUE: &str = "download_queue_depth";
    /// Requests waiting on the extract pool at the window boundary.
    pub const EXTRACT_QUEUE: &str = "extract_queue_depth";
    /// Requests waiting on the simsearch pool at the window boundary.
    pub const SIMSEARCH_QUEUE: &str = "simsearch_queue_depth";
    /// Open-loop arrivals offered in the window (serving mode).
    pub const OFFERED: &str = "offered_arrivals";
    /// Arrivals bounced by the admission bound in the window.
    pub const REJECTED: &str = "admission_rejected";
    /// Queued requests shed past their deadline in the window.
    pub const SHED: &str = "queue_shed";
    /// Completions above the SLO bound in the window.
    pub const SLO_VIOLATIONS: &str = "slo_violations";
}

/// Overload accounting for an open-loop serving run. Counts are event
/// counts in simulated time (never wall-clock), so they ride the
/// deterministic artifact formats unchanged.
///
/// Conservation holds exactly at the end of every run:
/// `admitted + rejected + shed == offered`, where `shed` includes
/// queued requests abandoned when the run ended (offered but never
/// served — they are not admissions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverloadTotals {
    /// Open-loop arrivals offered to the engine.
    pub offered: u64,
    /// Requests that entered service (acquired an HTTP slot).
    pub admitted: u64,
    /// Arrivals bounced because the admission queue was full.
    pub rejected: u64,
    /// Requests dropped from the admission queue without service
    /// (deadline sheds plus the end-of-run queue flush).
    pub shed: u64,
    /// Completions whose response time exceeded the SLO bound.
    pub slo_violations: u64,
    /// Deepest admission queue observed at any point in the run.
    pub peak_queue_depth: usize,
}

/// Everything measured in one engine run.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// The evaluated configuration.
    pub config: PoolConfig,
    /// Closed-loop client count.
    pub clients: usize,
    /// All sampled time series (10 s windows).
    pub registry: Registry,
    /// User response time over the window samples (after warm-up) —
    /// the paper's headline metric.
    pub response: Summary,
    /// Tail of the *per-request* response distribution after warm-up:
    /// (p50, p95, p99) in seconds, or `None` when no request finished
    /// after warm-up (crashed or starved run) — "no data" must stay
    /// distinguishable from a zero-latency engine. The paper's 4-second
    /// bound is a user tolerance, so tails matter as much as means.
    pub response_percentiles: Option<(f64, f64, f64)>,
    /// Mean duration of each pipeline task (seconds), keyed by the task
    /// label of [`crate::pipeline::Task::label`].
    pub task_times: BTreeMap<String, Summary>,
    /// Requests completed over the run.
    pub completed: u64,
    /// Mean completion rate (requests/second) after warm-up.
    pub throughput: f64,
    /// GPU memory footprint (constant per configuration).
    pub gpu_mem_gb: f64,
    /// Container memory footprint (constant per configuration).
    pub sys_mem_gb: f64,
    /// Overload accounting — `Some` for open-loop serving runs, `None`
    /// for the closed-loop protocol (which has no admission control).
    pub overload: Option<OverloadTotals>,
}

impl EngineMetrics {
    /// Mean busy fraction of a pool over the run (`names::*_BUSY` keys).
    pub fn mean_busy(&self, metric: &str) -> f64 {
        self.registry.summary(metric).mean
    }

    /// Mean CPU utilization over the run.
    pub fn mean_cpu(&self) -> f64 {
        self.registry.summary(names::CPU).mean
    }

    /// Mean duration of one task (0 when the label is unknown).
    pub fn task_mean(&self, label: &str) -> f64 {
        self.task_times.get(label).map(|s| s.mean).unwrap_or(0.0)
    }
}

/// Aggregation over repeated runs of the same configuration.
#[derive(Debug, Clone)]
pub struct RepeatedMetrics {
    /// The evaluated configuration.
    pub config: PoolConfig,
    /// Closed-loop client count.
    pub clients: usize,
    /// Per-repetition metrics.
    pub runs: Vec<EngineMetrics>,
    /// Response-time summary pooled over every window of every run (the
    /// paper's 966-measurement aggregate).
    pub response: Summary,
}

impl RepeatedMetrics {
    /// Merge repetitions.
    pub fn from_runs(runs: Vec<EngineMetrics>) -> RepeatedMetrics {
        assert!(!runs.is_empty(), "need at least one run");
        let config = runs[0].config;
        let clients = runs[0].clients;
        let mut pooled = OnlineStats::new();
        for run in &runs {
            if let Some(series) = run.registry.get(names::RESPONSE) {
                for (_, v) in series.iter() {
                    pooled.push(v);
                }
            }
        }
        // A crashed repetition (NaN response mean) poisons the pooled
        // summary: its pre-crash windows are not a valid measurement of
        // the configuration, so the whole evaluation must read as failed.
        let mut response = Summary::from(&pooled);
        if runs.iter().any(|r| !r.response.mean.is_finite()) {
            response.mean = f64::NAN;
        }
        RepeatedMetrics {
            config,
            clients,
            response,
            runs,
        }
    }

    /// Mean of a per-run scalar across repetitions.
    pub fn mean_of(&self, f: impl Fn(&EngineMetrics) -> f64) -> f64 {
        self.runs.iter().map(f).sum::<f64>() / self.runs.len() as f64
    }

    /// Pooled summary of one task's mean duration across repetitions.
    pub fn task_mean(&self, label: &str) -> f64 {
        self.mean_of(|r| r.task_mean(label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_metrics(resp_values: &[f64]) -> EngineMetrics {
        let mut registry = Registry::new();
        for (i, &v) in resp_values.iter().enumerate() {
            registry.record(names::RESPONSE, (i + 1) as f64 * 10.0, v);
        }
        EngineMetrics {
            config: PoolConfig::baseline(),
            clients: 80,
            response: registry.summary(names::RESPONSE),
            response_percentiles: Some((2.0, 2.5, 3.0)),
            registry,
            task_times: BTreeMap::new(),
            completed: 100,
            throughput: 30.0,
            gpu_mem_gb: 7.0,
            sys_mem_gb: 10.0,
            overload: None,
        }
    }

    #[test]
    fn repeated_metrics_pool_all_windows() {
        let r1 = dummy_metrics(&[2.0, 2.2]);
        let r2 = dummy_metrics(&[2.4, 2.6]);
        let rep = RepeatedMetrics::from_runs(vec![r1, r2]);
        assert_eq!(rep.response.n, 4);
        assert!((rep.response.mean - 2.3).abs() < 1e-12);
    }

    #[test]
    fn task_mean_defaults_to_zero() {
        let m = dummy_metrics(&[2.0]);
        assert_eq!(m.task_mean("simsearch"), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_runs_rejected() {
        RepeatedMetrics::from_runs(vec![]);
    }
}
