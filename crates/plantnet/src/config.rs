//! Thread-pool configurations (Table II / Table III / Table IV).

use e2c_optim::space::{Point, Space};
use std::fmt;

/// Sizes of the four thread pools of the Identification Engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolConfig {
    /// Simultaneous requests being processed (admission).
    pub http: u32,
    /// Simultaneous image downloads.
    pub download: u32,
    /// Simultaneous GPU inferences.
    pub extract: u32,
    /// Simultaneous similarity searches.
    pub simsearch: u32,
}

impl PoolConfig {
    /// The production configuration of Table II (the *baseline*):
    /// HTTP 40 / Download 40 / Extract 7 / Simsearch 40.
    pub fn baseline() -> Self {
        PoolConfig {
            http: 40,
            download: 40,
            extract: 7,
            simsearch: 40,
        }
    }

    /// The *preliminary optimum* of Table III, found by Bayesian
    /// optimization: HTTP 54 / Download 54 / Extract 7 / Simsearch 53.
    pub fn preliminary_optimum() -> Self {
        PoolConfig {
            http: 54,
            download: 54,
            extract: 7,
            simsearch: 53,
        }
    }

    /// The *refined optimum* of Table IV, found by OAT sensitivity
    /// analysis: HTTP 54 / Download 54 / Extract 6 / Simsearch 53.
    pub fn refined_optimum() -> Self {
        PoolConfig {
            extract: 6,
            ..PoolConfig::preliminary_optimum()
        }
    }

    /// Encode as a [`Point`] over [`Space::plantnet`] (order: http,
    /// download, simsearch, extract — Eq. 2 / Listing 1 order).
    pub fn to_point(self) -> Point {
        vec![
            self.http as f64,
            self.download as f64,
            self.simsearch as f64,
            self.extract as f64,
        ]
    }

    /// Decode from a [`Space::plantnet`] point (values are rounded).
    pub fn from_point(p: &[f64]) -> Self {
        assert_eq!(p.len(), 4, "plantnet point has 4 dimensions");
        PoolConfig {
            http: p[0].round() as u32,
            download: p[1].round() as u32,
            simsearch: p[2].round() as u32,
            extract: p[3].round() as u32,
        }
    }

    /// The Eq. 2 search space this configuration lives in.
    pub fn space() -> Space {
        Space::plantnet()
    }

    /// Sanity bounds: every pool must be non-empty.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("http", self.http),
            ("download", self.download),
            ("extract", self.extract),
            ("simsearch", self.simsearch),
        ] {
            if v == 0 {
                return Err(format!("{name} pool must have at least one thread"));
            }
        }
        Ok(())
    }
}

impl fmt::Display for PoolConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "http={} download={} extract={} simsearch={}",
            self.http, self.download, self.extract, self.simsearch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_baseline() {
        let b = PoolConfig::baseline();
        assert_eq!(
            (b.http, b.download, b.extract, b.simsearch),
            (40, 40, 7, 40)
        );
    }

    #[test]
    fn table_iii_preliminary() {
        let p = PoolConfig::preliminary_optimum();
        assert_eq!(
            (p.http, p.download, p.extract, p.simsearch),
            (54, 54, 7, 53)
        );
    }

    #[test]
    fn table_iv_refined_differs_only_in_extract() {
        let p = PoolConfig::preliminary_optimum();
        let r = PoolConfig::refined_optimum();
        assert_eq!(r.extract, 6);
        assert_eq!(
            (r.http, r.download, r.simsearch),
            (p.http, p.download, p.simsearch)
        );
    }

    #[test]
    fn point_roundtrip() {
        for cfg in [
            PoolConfig::baseline(),
            PoolConfig::preliminary_optimum(),
            PoolConfig::refined_optimum(),
        ] {
            let p = cfg.to_point();
            assert!(PoolConfig::space().contains(&p), "{cfg}");
            assert_eq!(PoolConfig::from_point(&p), cfg);
        }
    }

    #[test]
    fn validate_rejects_empty_pools() {
        let mut c = PoolConfig::baseline();
        assert!(c.validate().is_ok());
        c.extract = 0;
        assert!(c.validate().unwrap_err().contains("extract"));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            PoolConfig::baseline().to_string(),
            "http=40 download=40 extract=7 simsearch=40"
        );
    }
}
