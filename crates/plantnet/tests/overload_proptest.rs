//! Property-based coverage of the open-loop overload semantics.
//!
//! The serving mode's counters are the basis of the `e2clab serve`
//! objective and of the serving gate's saturation assertions, so the
//! invariants are checked over arbitrary (rate, bound, shedding, seed)
//! cells rather than a handful of hand-picked ones:
//!
//! * **conservation** — every offered arrival is admitted, rejected or
//!   shed, exactly once: `admitted + rejected + shed == offered`;
//! * **the admission queue respects its bound** — the peak observed
//!   depth never exceeds `queue_bound`;
//! * **SLO violations are monotone in offered load** — a saturating
//!   rate produces at least as many violations as a light one (same
//!   seed, same policy), and monotone in the SLO bound itself — a
//!   stricter bound never counts fewer violations on the *same* run;
//! * **an inert policy is bitwise-free** — a policy that can never
//!   reject or shed leaves the engine's dynamics bit-identical to the
//!   pre-overload path (`policy: None`): the admission check draws no
//!   randomness.

use e2c_des::SimTime;
use e2c_workload::RateSchedule;
use plantnet::sim::{Experiment, ExperimentSpec};
use plantnet::{OverloadPolicy, PoolConfig};
use proptest::prelude::*;

/// One serving run at a constant rate; panics only on schedule-building
/// bugs, which the constructors already unit-test.
fn run(rate: f64, secs: u64, policy: Option<OverloadPolicy>, seed: u64) -> plantnet::EngineMetrics {
    let schedule = RateSchedule::constant(rate, SimTime::from_secs(secs)).expect("valid rate");
    let spec = ExperimentSpec::serving(PoolConfig::baseline(), schedule.horizon());
    Experiment::run_serving(spec, &schedule, policy, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation and the queue bound, across light-to-saturating
    /// rates, tight-to-loose bounds, shedding on and off.
    #[test]
    fn counters_conserve_and_respect_the_bound(
        rate in 1.0f64..90.0,
        queue_bound in 1usize..64,
        shed_secs in prop_oneof![Just(None), (2u64..12).prop_map(Some)],
        seed in 0u64..1000,
    ) {
        let policy = OverloadPolicy {
            queue_bound,
            shed_after: shed_secs.map(SimTime::from_secs),
            slo: 4.0,
        };
        let m = run(rate, 60, Some(policy), seed);
        let o = m.overload.expect("serving run has overload totals");
        prop_assert_eq!(
            o.admitted + o.rejected + o.shed,
            o.offered,
            "conservation: {:?}",
            o
        );
        prop_assert!(
            o.peak_queue_depth <= queue_bound,
            "queue depth {} exceeded bound {}",
            o.peak_queue_depth,
            queue_bound
        );
        // Every completion was admitted first.
        prop_assert!(m.completed <= o.admitted);
    }

    /// More offered load never means fewer SLO violations: a clearly
    /// saturating rate (≥ 40 req/s against a ~27 req/s baseline engine)
    /// is compared against a light one under the same seed and policy.
    #[test]
    fn slo_violations_are_monotone_in_offered_load(
        light in 1.0f64..8.0,
        heavy in 40.0f64..90.0,
        seed in 0u64..1000,
    ) {
        let policy = OverloadPolicy::paper_slo(32);
        let lo = run(light, 60, Some(policy), seed).overload.expect("totals");
        let hi = run(heavy, 60, Some(policy), seed).overload.expect("totals");
        prop_assert!(hi.offered > lo.offered, "rates are well separated");
        prop_assert!(
            hi.slo_violations >= lo.slo_violations,
            "violations dropped under saturation: light {:?} heavy {:?}",
            lo,
            hi
        );
        // Overflow pressure is monotone too: a light run never rejects
        // or sheds more than a saturating one.
        prop_assert!(hi.rejected + hi.shed >= lo.rejected + lo.shed);
    }

    /// A stricter SLO never counts fewer violations on the same run —
    /// the bound is pure bookkeeping, so this holds exactly, not just
    /// statistically.
    #[test]
    fn slo_violations_are_monotone_in_the_bound(
        rate in 10.0f64..60.0,
        seed in 0u64..1000,
    ) {
        let mk = |slo: f64| OverloadPolicy {
            queue_bound: 32,
            shed_after: Some(SimTime::from_secs(8)),
            slo,
        };
        let strict = run(rate, 60, Some(mk(1.0)), seed).overload.expect("totals");
        let loose = run(rate, 60, Some(mk(4.0)), seed).overload.expect("totals");
        // Same dynamics (the bound affects no admission decision)…
        prop_assert_eq!(strict.offered, loose.offered);
        prop_assert_eq!(strict.admitted, loose.admitted);
        prop_assert_eq!(strict.rejected, loose.rejected);
        prop_assert_eq!(strict.shed, loose.shed);
        // …but at least as many violations under the stricter bound.
        prop_assert!(strict.slo_violations >= loose.slo_violations);
    }

    /// An inert policy (bound too deep to overflow, no deadline) leaves
    /// the engine bit-identical to the pre-overload serving path: the
    /// whole overload layer rides on zero extra RNG draws.
    #[test]
    fn inert_policy_is_bitwise_identical_to_no_policy(
        rate in 1.0f64..70.0,
        seed in 0u64..1000,
    ) {
        let inert = OverloadPolicy {
            queue_bound: usize::MAX,
            shed_after: None,
            slo: 4.0,
        };
        let a = run(rate, 45, None, seed);
        let b = run(rate, 45, Some(inert), seed);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.response.mean.to_bits(), b.response.mean.to_bits());
        prop_assert_eq!(a.response.std.to_bits(), b.response.std.to_bits());
        prop_assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        let o = b.overload.expect("totals");
        prop_assert_eq!(o.rejected, 0, "an unbounded queue never rejects");
        // No deadline: sheds can only be the end-of-run queue flush.
        prop_assert_eq!(o.admitted + o.shed, o.offered);
    }
}
