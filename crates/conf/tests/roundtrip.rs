//! Property tests: any value tree the emitter can produce must re-parse
//! to the identical tree (serializer/parser adjunction), and the parser
//! must never panic or hang on arbitrary input.

use e2c_conf::{parse, Value};
use proptest::prelude::*;

/// Strategy for scalar values (strings restricted to printable ASCII —
/// the emitter quotes everything risky, so this exercises the quoting
/// logic too).
fn scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite, non-NaN floats only; NaN breaks equality by definition.
        (-1e15f64..1e15).prop_map(Value::Float),
        "[ -~]{0,12}".prop_map(Value::Str),
    ]
}

/// Strategy for arbitrary (bounded) value trees rooted at a mapping.
fn value_tree() -> impl Strategy<Value = Value> {
    let leaf = scalar();
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Seq),
            prop::collection::vec(("[a-z][a-z0-9_]{0,8}", inner), 0..4).prop_map(|pairs| {
                // Deduplicate keys (the parser rejects duplicates).
                let mut seen = std::collections::BTreeSet::new();
                let pairs = pairs
                    .into_iter()
                    .filter(|(k, _)| seen.insert(k.clone()))
                    .collect();
                Value::Map(pairs)
            }),
        ]
    })
}

fn root_map() -> impl Strategy<Value = Value> {
    prop::collection::vec(("[a-z][a-z0-9_]{0,8}", value_tree()), 1..5).prop_map(|pairs| {
        let mut seen = std::collections::BTreeSet::new();
        let pairs = pairs
            .into_iter()
            .filter(|(k, _)| seen.insert(k.clone()))
            .collect();
        Value::Map(pairs)
    })
}

/// Normalize floats that serialize losslessly vs. value identity: the
/// emitter prints `2.0` for `Float(2.0)`, which re-parses as Float — fine.
/// But `Float(2.0)` vs `Int(2)` never collide because the emitter keeps a
/// `.0`. The only non-roundtrippable cases would be NaN/inf, excluded by
/// the strategy.
fn roundtrips(v: &Value) -> bool {
    match parse(&v.to_yaml()) {
        Ok(parsed) => parsed == *v || (v.is_empty_container() && parsed.is_null_like()),
        Err(_) => false,
    }
}

trait ValueTestExt {
    fn is_empty_container(&self) -> bool;
    fn is_null_like(&self) -> bool;
}

impl ValueTestExt for Value {
    fn is_empty_container(&self) -> bool {
        matches!(self, Value::Seq(s) if s.is_empty())
            || matches!(self, Value::Map(m) if m.is_empty())
    }
    fn is_null_like(&self) -> bool {
        self.is_null() || self.is_empty_container()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn emitted_documents_reparse_identically(v in root_map()) {
        let yaml = v.to_yaml();
        let parsed = parse(&yaml);
        prop_assert!(parsed.is_ok(), "emitted yaml failed to parse:\n{yaml}\nerr: {:?}", parsed.err());
        let parsed = parsed.unwrap();
        prop_assert_eq!(&parsed, &v, "roundtrip mismatch for:\n{}", yaml);
    }

    #[test]
    fn scalars_roundtrip(v in scalar()) {
        // Wrap in a map so the document is a mapping (root scalar docs are
        // not part of the supported subset).
        let doc = Value::Map(vec![("k".to_string(), v)]);
        prop_assert!(roundtrips(&doc), "failed:\n{}", doc.to_yaml());
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(s in "[ -~\n]{0,200}") {
        // Any outcome is fine except a panic or a hang.
        let _ = parse(&s);
    }

    #[test]
    fn parser_never_panics_on_indented_soup(
        lines in prop::collection::vec(("[ ]{0,6}", "[a-z:#\\- ]{0,16}"), 0..12)
    ) {
        let text: String = lines
            .into_iter()
            .map(|(indent, content)| format!("{indent}{content}\n"))
            .collect();
        let _ = parse(&text);
    }
}
