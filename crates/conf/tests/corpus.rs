//! Differential fixture corpus: every `tests/corpus/*.yaml` document has a
//! committed `*.tree` file holding the expected [`Value::to_tree`]
//! rendering. The test byte-compares the parse of each fixture against its
//! tree, so any behavioural drift in the parser shows up as a readable
//! fixture diff instead of a silent semantic change. The fuzz harness
//! (`e2clab fuzz --codec conf_yaml`) embeds the same pairs and re-checks
//! them as its differential preflight.
//!
//! To (re)generate trees after an *intentional* parser change:
//!
//! ```text
//! E2C_CORPUS_REGEN=1 cargo test -p e2c-conf --test corpus
//! ```
//!
//! then review the `.tree` diffs like any other code change.

use std::fs;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

#[test]
fn every_fixture_matches_its_committed_tree() {
    let regen = std::env::var_os("E2C_CORPUS_REGEN").is_some();
    let mut yaml_files: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "yaml"))
        .collect();
    yaml_files.sort();
    assert!(
        !yaml_files.is_empty(),
        "corpus is empty — fixtures were deleted?"
    );
    let mut mismatches = Vec::new();
    for yaml_path in &yaml_files {
        let name = yaml_path.file_stem().unwrap().to_string_lossy().to_string();
        let text = fs::read_to_string(yaml_path).unwrap();
        let value = e2c_conf::parse(&text)
            .unwrap_or_else(|e| panic!("fixture {name}.yaml no longer parses: {e}"));
        let tree = value.to_tree();
        let tree_path = yaml_path.with_extension("tree");
        if regen {
            fs::write(&tree_path, &tree).unwrap();
            continue;
        }
        let expected = fs::read_to_string(&tree_path).unwrap_or_else(|e| {
            panic!(
                "missing {}: {e} (run with E2C_CORPUS_REGEN=1)",
                tree_path.display()
            )
        });
        if tree != expected {
            mismatches.push(format!(
                "{name}: parsed tree differs from committed fixture\n--- expected\n{expected}--- got\n{tree}"
            ));
        }
    }
    assert!(mismatches.is_empty(), "{}", mismatches.join("\n"));
}

#[test]
fn every_fixture_reserializes_stably() {
    // encode → decode → encode must be byte-stable on corpus documents.
    for entry in fs::read_dir(corpus_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "yaml") {
            continue;
        }
        let text = fs::read_to_string(&path).unwrap();
        let v1 = e2c_conf::parse(&text).unwrap();
        let yaml1 = v1.to_yaml();
        let v2 = e2c_conf::parse(&yaml1).unwrap_or_else(|e| {
            panic!("{}: serialized form no longer parses: {e}", path.display())
        });
        assert_eq!(
            v2.to_yaml(),
            yaml1,
            "{} is not encode-stable",
            path.display()
        );
    }
}
