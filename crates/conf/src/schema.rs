//! Typed experiment configuration, validated from a parsed document.
//!
//! Mirrors E2Clab's configuration files: layers & services, network
//! constraints, and the optimization setup introduced by the paper
//! (Listing 1). [`ExperimentConf::from_value`] performs the validation the
//! framework's managers rely on.

use crate::value::Value;
use std::fmt;

/// Validation failure with a config path like `layers[0].services[1].name`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// Dotted path to the offending element.
    pub path: String,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

impl std::error::Error for SchemaError {}

fn err(path: &str, message: impl Into<String>) -> SchemaError {
    SchemaError {
        path: path.to_string(),
        message: message.into(),
    }
}

/// One service within a layer (e.g. the engine, or a group of clients).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConf {
    /// Service name, unique within the experiment.
    pub name: String,
    /// Testbed cluster hosting it.
    pub cluster: String,
    /// Number of nodes.
    pub quantity: usize,
}

/// A continuum layer (edge / fog / cloud) with its services.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerConf {
    /// Layer name.
    pub name: String,
    /// Services deployed on this layer.
    pub services: Vec<ServiceConf>,
}

/// A network constraint between two layers.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConf {
    /// Source layer/group.
    pub src: String,
    /// Destination layer/group.
    pub dst: String,
    /// One-way delay in milliseconds.
    pub delay_ms: f64,
    /// Rate in Mbps.
    pub rate_mbps: f64,
    /// Loss probability in `[0, 1)`.
    pub loss: f64,
}

/// Kind of an optimization variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Integer-valued, inclusive bounds (`tune.randint` style).
    Int,
    /// Real-valued, inclusive bounds.
    Real,
}

/// One optimization variable (a dimension of the search space).
#[derive(Debug, Clone, PartialEq)]
pub struct VariableConf {
    /// Variable name (e.g. `http`).
    pub name: String,
    /// Integer or real.
    pub kind: VarKind,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

/// Surrogate model family for Bayesian search. Parsed at the schema
/// boundary so an unknown name is a configuration error, not a silent
/// fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurrogateName {
    /// Extremely randomized trees (the paper's `ET`).
    ExtraTrees,
    /// Random forest (`RF`).
    RandomForest,
    /// Single CART tree.
    Cart,
    /// Gradient-boosted trees (`GBRT`).
    Gbrt,
    /// Gaussian process, RBF kernel (`GP`).
    Gp,
    /// Gaussian process, Matérn kernel.
    GpMatern,
    /// Kernel ridge regression / SVR-style surrogate.
    KernelRidge,
    /// Polynomial regression.
    Poly,
}

impl SurrogateName {
    /// Parse an skopt-style surrogate name (accepts the same aliases the
    /// optimizer does: `ET`, `rf`, `tree`, `kriging`, ...).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "extra_trees" | "ET" | "et" => Some(SurrogateName::ExtraTrees),
            "random_forest" | "RF" | "rf" => Some(SurrogateName::RandomForest),
            "cart" | "tree" | "DT" => Some(SurrogateName::Cart),
            "gbrt" | "GBRT" => Some(SurrogateName::Gbrt),
            "gp" | "GP" | "kriging" => Some(SurrogateName::Gp),
            "gp_matern" => Some(SurrogateName::GpMatern),
            "kernel_ridge" | "svr" | "SVR" => Some(SurrogateName::KernelRidge),
            "poly" | "polynomial" => Some(SurrogateName::Poly),
            _ => None,
        }
    }

    /// Canonical name (the one the archive serializes).
    pub fn name(&self) -> &'static str {
        match self {
            SurrogateName::ExtraTrees => "extra_trees",
            SurrogateName::RandomForest => "random_forest",
            SurrogateName::Cart => "cart",
            SurrogateName::Gbrt => "gbrt",
            SurrogateName::Gp => "gp",
            SurrogateName::GpMatern => "gp_matern",
            SurrogateName::KernelRidge => "kernel_ridge",
            SurrogateName::Poly => "poly",
        }
    }
}

/// The search algorithm driving the optimization cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchAlgo {
    /// Uniform random sampling.
    Random,
    /// Factorial grid over the space.
    Grid,
    /// Generational GA (§III-B2, short-running applications).
    Evolution,
    /// Bayesian optimization with the given surrogate.
    Surrogate(SurrogateName),
}

impl SearchAlgo {
    /// Parse a search algorithm name; surrogate names select Bayesian
    /// search with that model.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "random" => Some(SearchAlgo::Random),
            "grid" => Some(SearchAlgo::Grid),
            "genetic_algorithm" | "ga" | "evolution" => Some(SearchAlgo::Evolution),
            other => SurrogateName::from_name(other).map(SearchAlgo::Surrogate),
        }
    }

    /// Canonical name (the one the archive serializes).
    pub fn name(&self) -> &'static str {
        match self {
            SearchAlgo::Random => "random",
            SearchAlgo::Grid => "grid",
            SearchAlgo::Evolution => "genetic_algorithm",
            SearchAlgo::Surrogate(s) => s.name(),
        }
    }
}

/// Acquisition function for Bayesian search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcqFunc {
    /// Expected improvement.
    Ei,
    /// Probability of improvement.
    Pi,
    /// Lower confidence bound.
    Lcb,
    /// Probabilistic portfolio over EI/PI/LCB (skopt's default).
    GpHedge,
}

impl AcqFunc {
    /// Parse an acquisition function name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "ei" | "EI" => Some(AcqFunc::Ei),
            "pi" | "PI" => Some(AcqFunc::Pi),
            "lcb" | "LCB" => Some(AcqFunc::Lcb),
            "gp_hedge" => Some(AcqFunc::GpHedge),
            _ => None,
        }
    }

    /// Canonical name (the one the archive serializes).
    pub fn name(&self) -> &'static str {
        match self {
            AcqFunc::Ei => "ei",
            AcqFunc::Pi => "pi",
            AcqFunc::Lcb => "lcb",
            AcqFunc::GpHedge => "gp_hedge",
        }
    }
}

/// Generator of the initial (model-free) design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitialPointGenerator {
    /// Uniform random points.
    Random,
    /// Latin hypercube sampling (the paper's choice).
    Lhs,
    /// Halton low-discrepancy sequence.
    Halton,
    /// Sobol low-discrepancy sequence.
    Sobol,
    /// Regular grid.
    Grid,
}

impl InitialPointGenerator {
    /// Parse an initial-point-generator name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "random" => Some(InitialPointGenerator::Random),
            "lhs" => Some(InitialPointGenerator::Lhs),
            "halton" => Some(InitialPointGenerator::Halton),
            "sobol" => Some(InitialPointGenerator::Sobol),
            "grid" => Some(InitialPointGenerator::Grid),
            _ => None,
        }
    }

    /// Canonical name (the one the archive serializes).
    pub fn name(&self) -> &'static str {
        match self {
            InitialPointGenerator::Random => "random",
            InitialPointGenerator::Lhs => "lhs",
            InitialPointGenerator::Halton => "halton",
            InitialPointGenerator::Sobol => "sobol",
            InitialPointGenerator::Grid => "grid",
        }
    }
}

/// The `fault_tolerance:` block: how the trial runner treats failed and
/// overrunning evaluations (edge testbeds fail routinely).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultToleranceConf {
    /// Re-attempts after a failed evaluation (0 = fail immediately).
    pub max_retries: u32,
    /// Base backoff before the first re-attempt, in milliseconds.
    pub backoff_ms: u64,
    /// Multiplicative backoff growth per attempt (>= 1).
    pub backoff_factor: f64,
    /// Backoff ceiling, in milliseconds.
    pub max_backoff_ms: u64,
    /// Jitter fraction in `[0, 1]` applied to each backoff (seeded by the
    /// experiment seed, so replays are bit-exact).
    pub jitter: f64,
    /// Per-trial wall-clock budget in milliseconds (`None` = unlimited).
    pub time_budget_ms: Option<u64>,
}

impl Default for FaultToleranceConf {
    fn default() -> Self {
        FaultToleranceConf {
            max_retries: 0,
            backoff_ms: 100,
            backoff_factor: 2.0,
            max_backoff_ms: 10_000,
            jitter: 0.1,
            time_budget_ms: None,
        }
    }
}

/// The optimization section (the paper's Listing 1 / `optimizer_conf`).
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationConf {
    /// Metric to optimize (e.g. `user_resp_time`).
    pub metric: String,
    /// `min` or `max`.
    pub minimize: bool,
    /// Experiment name for the archive.
    pub name: String,
    /// Total evaluations budget.
    pub num_samples: usize,
    /// Parallel evaluation cap (the paper's `ConcurrencyLimiter`).
    pub max_concurrent: usize,
    /// Search algorithm (surrogate names select Bayesian search).
    pub algo: SearchAlgo,
    /// Initial random/LHS design size.
    pub n_initial_points: usize,
    /// Initial point generator.
    pub initial_point_generator: InitialPointGenerator,
    /// Acquisition function.
    pub acq_func: AcqFunc,
    /// The search space.
    pub variables: Vec<VariableConf>,
    /// Retry/deadline behaviour of the trial runner (optional block).
    pub fault_tolerance: Option<FaultToleranceConf>,
}

/// A full experiment description.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConf {
    /// Experiment name.
    pub name: String,
    /// Continuum layers with their services.
    pub layers: Vec<LayerConf>,
    /// Network constraints between layers.
    pub network: Vec<NetworkConf>,
    /// Optional optimization setup.
    pub optimization: Option<OptimizationConf>,
}

impl ExperimentConf {
    /// Validate a parsed document into a typed configuration.
    pub fn from_value(doc: &Value) -> Result<ExperimentConf, SchemaError> {
        let name = doc
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| err("name", "missing or not a string"))?
            .to_string();

        let mut layers = Vec::new();
        if let Some(layers_val) = doc.get("layers") {
            let seq = layers_val
                .as_seq()
                .ok_or_else(|| err("layers", "must be a sequence"))?;
            for (i, layer) in seq.iter().enumerate() {
                layers.push(parse_layer(layer, i)?);
            }
        }

        let mut network = Vec::new();
        if let Some(net_val) = doc.get("network") {
            let seq = net_val
                .as_seq()
                .ok_or_else(|| err("network", "must be a sequence"))?;
            for (i, rule) in seq.iter().enumerate() {
                network.push(parse_network(rule, i)?);
            }
        }

        let optimization = match doc.get("optimization") {
            Some(v) if !v.is_null() => Some(parse_optimization(v)?),
            _ => None,
        };

        // Cross-checks: network rules must reference declared layers.
        if !layers.is_empty() {
            for (i, rule) in network.iter().enumerate() {
                for end in [&rule.src, &rule.dst] {
                    if !layers.iter().any(|l| l.name == *end) {
                        return Err(err(
                            &format!("network[{i}]"),
                            format!("references undeclared layer `{end}`"),
                        ));
                    }
                }
            }
        }

        Ok(ExperimentConf {
            name,
            layers,
            network,
            optimization,
        })
    }
}

fn parse_layer(v: &Value, i: usize) -> Result<LayerConf, SchemaError> {
    let path = format!("layers[{i}]");
    let name = v
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| err(&format!("{path}.name"), "missing or not a string"))?
        .to_string();
    let mut services = Vec::new();
    if let Some(svc_val) = v.get("services") {
        let seq = svc_val
            .as_seq()
            .ok_or_else(|| err(&format!("{path}.services"), "must be a sequence"))?;
        for (j, svc) in seq.iter().enumerate() {
            let spath = format!("{path}.services[{j}]");
            let sname = svc
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| err(&format!("{spath}.name"), "missing or not a string"))?
                .to_string();
            let cluster = svc
                .get("cluster")
                .and_then(Value::as_str)
                .ok_or_else(|| err(&format!("{spath}.cluster"), "missing or not a string"))?
                .to_string();
            let quantity = svc
                .get("quantity")
                .map(|q| {
                    q.as_int().filter(|&n| n > 0).ok_or_else(|| {
                        err(&format!("{spath}.quantity"), "must be a positive integer")
                    })
                })
                .transpose()?
                .unwrap_or(1) as usize;
            services.push(ServiceConf {
                name: sname,
                cluster,
                quantity,
            });
        }
    }
    Ok(LayerConf { name, services })
}

fn parse_network(v: &Value, i: usize) -> Result<NetworkConf, SchemaError> {
    let path = format!("network[{i}]");
    let get_str = |key: &str| {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| err(&format!("{path}.{key}"), "missing or not a string"))
    };
    let get_num = |key: &str, default: f64| {
        v.get(key)
            .map(|x| {
                x.as_float()
                    .ok_or_else(|| err(&format!("{path}.{key}"), "must be a number"))
            })
            .transpose()
            .map(|o| o.unwrap_or(default))
    };
    let loss = get_num("loss", 0.0)?;
    if !(0.0..1.0).contains(&loss) {
        return Err(err(&format!("{path}.loss"), "must be in [0, 1)"));
    }
    Ok(NetworkConf {
        src: get_str("src")?,
        dst: get_str("dst")?,
        delay_ms: get_num("delay_ms", 0.0)?,
        rate_mbps: get_num("rate_mbps", 100_000.0)?,
        loss,
    })
}

fn parse_optimization(v: &Value) -> Result<OptimizationConf, SchemaError> {
    let path = "optimization";
    let metric = v
        .get("metric")
        .and_then(Value::as_str)
        .ok_or_else(|| err(&format!("{path}.metric"), "missing or not a string"))?
        .to_string();
    let mode = v.get("mode").and_then(Value::as_str).unwrap_or("min");
    let minimize = match mode {
        "min" => true,
        "max" => false,
        other => {
            return Err(err(
                &format!("{path}.mode"),
                format!("must be `min` or `max`, got `{other}`"),
            ))
        }
    };
    let name = v
        .get("name")
        .and_then(Value::as_str)
        .unwrap_or("optimization")
        .to_string();
    let num_samples = v
        .get("num_samples")
        .and_then(Value::as_int)
        .filter(|&n| n > 0)
        .ok_or_else(|| err(&format!("{path}.num_samples"), "must be a positive integer"))?
        as usize;
    let max_concurrent = v
        .get("max_concurrent")
        .and_then(Value::as_int)
        .filter(|&n| n > 0)
        .unwrap_or(1) as usize;

    let search = v.get("search").unwrap_or(&Value::Null);
    let algo_name = search
        .get("algo")
        .and_then(Value::as_str)
        .unwrap_or("extra_trees");
    let algo = SearchAlgo::from_name(algo_name).ok_or_else(|| {
        err(
            &format!("{path}.search.algo"),
            format!(
                "unknown search algorithm `{algo_name}` (expected `random`, `grid`, \
                 `genetic_algorithm`, or a surrogate: `extra_trees`, `random_forest`, \
                 `cart`, `gbrt`, `gp`, `gp_matern`, `kernel_ridge`, `poly`)"
            ),
        )
    })?;
    let n_initial_points = search
        .get("n_initial_points")
        .and_then(Value::as_int)
        .filter(|&n| n > 0)
        .unwrap_or(10) as usize;
    let ipg_name = search
        .get("initial_point_generator")
        .and_then(Value::as_str)
        .unwrap_or("lhs");
    let initial_point_generator = InitialPointGenerator::from_name(ipg_name).ok_or_else(|| {
        err(
            &format!("{path}.search.initial_point_generator"),
            format!(
                "unknown initial point generator `{ipg_name}` (expected `random`, \
                 `lhs`, `halton`, `sobol` or `grid`)"
            ),
        )
    })?;
    let acq_name = search
        .get("acq_func")
        .and_then(Value::as_str)
        .unwrap_or("gp_hedge");
    let acq_func = AcqFunc::from_name(acq_name).ok_or_else(|| {
        err(
            &format!("{path}.search.acq_func"),
            format!(
                "unknown acquisition function `{acq_name}` (expected `ei`, `pi`, \
                 `lcb` or `gp_hedge`)"
            ),
        )
    })?;

    let fault_tolerance = match v.get("fault_tolerance") {
        Some(ft) if !ft.is_null() => Some(parse_fault_tolerance(ft)?),
        _ => None,
    };

    let config = v
        .get("config")
        .and_then(Value::as_seq)
        .ok_or_else(|| err(&format!("{path}.config"), "missing variable sequence"))?;
    if config.is_empty() {
        return Err(err(
            &format!("{path}.config"),
            "needs at least one variable",
        ));
    }
    let mut variables = Vec::new();
    for (i, var) in config.iter().enumerate() {
        let vpath = format!("{path}.config[{i}]");
        let vname = var
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| err(&format!("{vpath}.name"), "missing or not a string"))?
            .to_string();
        if variables.iter().any(|x: &VariableConf| x.name == vname) {
            return Err(err(&vpath, format!("duplicate variable `{vname}`")));
        }
        let kind = match var.get("type").and_then(Value::as_str).unwrap_or("randint") {
            "randint" | "int" => VarKind::Int,
            "uniform" | "real" => VarKind::Real,
            other => {
                return Err(err(
                    &format!("{vpath}.type"),
                    format!("unknown variable type `{other}`"),
                ))
            }
        };
        let bounds = var
            .get("bounds")
            .and_then(Value::as_seq)
            .filter(|b| b.len() == 2)
            .ok_or_else(|| err(&format!("{vpath}.bounds"), "must be [lo, hi]"))?;
        let lo = bounds[0]
            .as_float()
            .ok_or_else(|| err(&format!("{vpath}.bounds"), "lo must be a number"))?;
        let hi = bounds[1]
            .as_float()
            .ok_or_else(|| err(&format!("{vpath}.bounds"), "hi must be a number"))?;
        if hi < lo {
            return Err(err(&format!("{vpath}.bounds"), "hi must be >= lo"));
        }
        variables.push(VariableConf {
            name: vname,
            kind,
            lo,
            hi,
        });
    }

    Ok(OptimizationConf {
        metric,
        minimize,
        name,
        num_samples,
        max_concurrent,
        algo,
        n_initial_points,
        initial_point_generator,
        acq_func,
        variables,
        fault_tolerance,
    })
}

fn parse_fault_tolerance(v: &Value) -> Result<FaultToleranceConf, SchemaError> {
    let path = "optimization.fault_tolerance";
    let defaults = FaultToleranceConf::default();
    let get_u64 = |key: &str, default: u64| {
        v.get(key)
            .map(|x| {
                x.as_int()
                    .filter(|&n| n >= 0)
                    .map(|n| n as u64)
                    .ok_or_else(|| err(&format!("{path}.{key}"), "must be a non-negative integer"))
            })
            .transpose()
            .map(|o| o.unwrap_or(default))
    };
    let max_retries = get_u64("max_retries", defaults.max_retries as u64)? as u32;
    let backoff_ms = get_u64("backoff_ms", defaults.backoff_ms)?;
    let max_backoff_ms = get_u64("max_backoff_ms", defaults.max_backoff_ms)?;
    let backoff_factor = v
        .get("backoff_factor")
        .map(|x| {
            x.as_float()
                .filter(|&f| f >= 1.0)
                .ok_or_else(|| err(&format!("{path}.backoff_factor"), "must be a number >= 1"))
        })
        .transpose()?
        .unwrap_or(defaults.backoff_factor);
    let jitter = v
        .get("jitter")
        .map(|x| {
            x.as_float()
                .filter(|&f| (0.0..=1.0).contains(&f))
                .ok_or_else(|| err(&format!("{path}.jitter"), "must be a number in [0, 1]"))
        })
        .transpose()?
        .unwrap_or(defaults.jitter);
    let time_budget_ms = v
        .get("time_budget_ms")
        .map(|x| {
            x.as_int()
                .filter(|&n| n > 0)
                .map(|n| n as u64)
                .ok_or_else(|| {
                    err(
                        &format!("{path}.time_budget_ms"),
                        "must be a positive integer (milliseconds)",
                    )
                })
        })
        .transpose()?;
    Ok(FaultToleranceConf {
        max_retries,
        backoff_ms,
        backoff_factor,
        max_backoff_ms,
        jitter,
        time_budget_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const FULL: &str = r#"
name: plantnet-optimization
layers:
  - name: cloud
    services:
      - name: engine
        cluster: chifflot
        quantity: 1
  - name: edge
    services:
      - name: clients
        cluster: gros
        quantity: 10
network:
  - src: edge
    dst: cloud
    delay_ms: 5.0
    rate_mbps: 10000
optimization:
  metric: user_resp_time
  mode: min
  name: plantnet_engine
  num_samples: 10
  max_concurrent: 2
  search:
    algo: extra_trees
    n_initial_points: 45
    initial_point_generator: lhs
    acq_func: gp_hedge
  config:
    - name: http
      type: randint
      bounds: [20, 60]
    - name: extract
      type: randint
      bounds: [3, 9]
"#;

    #[test]
    fn full_config_validates() {
        let conf = ExperimentConf::from_value(&parse(FULL).unwrap()).unwrap();
        assert_eq!(conf.name, "plantnet-optimization");
        assert_eq!(conf.layers.len(), 2);
        assert_eq!(conf.layers[0].services[0].cluster, "chifflot");
        assert_eq!(conf.layers[1].services[0].quantity, 10);
        assert_eq!(conf.network.len(), 1);
        assert_eq!(conf.network[0].delay_ms, 5.0);
        let opt = conf.optimization.unwrap();
        assert!(opt.minimize);
        assert_eq!(opt.algo, SearchAlgo::Surrogate(SurrogateName::ExtraTrees));
        assert_eq!(opt.n_initial_points, 45);
        assert!(opt.fault_tolerance.is_none());
        assert_eq!(opt.variables.len(), 2);
        assert_eq!(opt.variables[1].kind, VarKind::Int);
        assert_eq!(opt.variables[1].lo, 3.0);
    }

    #[test]
    fn missing_name_fails() {
        let doc = parse("layers: []").unwrap();
        let e = ExperimentConf::from_value(&doc).unwrap_err();
        assert_eq!(e.path, "name");
    }

    #[test]
    fn network_must_reference_layers() {
        let src = r#"
name: x
layers:
  - name: cloud
network:
  - src: cloud
    dst: mars
"#;
        let e = ExperimentConf::from_value(&parse(src).unwrap()).unwrap_err();
        assert!(e.message.contains("mars"));
    }

    #[test]
    fn bad_mode_fails() {
        let src = "name: x\noptimization:\n  metric: m\n  mode: sideways\n  num_samples: 5\n  config:\n    - name: a\n      bounds: [0, 1]\n";
        let e = ExperimentConf::from_value(&parse(src).unwrap()).unwrap_err();
        assert!(e.message.contains("sideways"));
    }

    #[test]
    fn inverted_bounds_fail() {
        let src = "name: x\noptimization:\n  metric: m\n  num_samples: 5\n  config:\n    - name: a\n      bounds: [9, 3]\n";
        let e = ExperimentConf::from_value(&parse(src).unwrap()).unwrap_err();
        assert!(e.message.contains("hi must be >= lo"));
    }

    #[test]
    fn duplicate_variable_fails() {
        let src = "name: x\noptimization:\n  metric: m\n  num_samples: 5\n  config:\n    - name: a\n      bounds: [0, 1]\n    - name: a\n      bounds: [0, 1]\n";
        let e = ExperimentConf::from_value(&parse(src).unwrap()).unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn defaults_applied() {
        let src = "name: x\noptimization:\n  metric: m\n  num_samples: 5\n  config:\n    - name: a\n      bounds: [0, 1]\n";
        let conf = ExperimentConf::from_value(&parse(src).unwrap()).unwrap();
        let opt = conf.optimization.unwrap();
        assert!(opt.minimize);
        assert_eq!(opt.max_concurrent, 1);
        assert_eq!(opt.algo, SearchAlgo::Surrogate(SurrogateName::ExtraTrees));
        assert_eq!(opt.acq_func, AcqFunc::GpHedge);
        assert_eq!(opt.initial_point_generator, InitialPointGenerator::Lhs);
        // default type is randint
        assert_eq!(opt.variables[0].kind, VarKind::Int);
    }

    #[test]
    fn unknown_search_algo_is_a_hard_error() {
        let src = "name: x\noptimization:\n  metric: m\n  num_samples: 5\n  search:\n    algo: simulated_annealing\n  config:\n    - name: a\n      bounds: [0, 1]\n";
        let e = ExperimentConf::from_value(&parse(src).unwrap()).unwrap_err();
        assert_eq!(e.path, "optimization.search.algo");
        assert!(e.message.contains("simulated_annealing"));
    }

    #[test]
    fn unknown_acq_func_and_generator_are_hard_errors() {
        let src = "name: x\noptimization:\n  metric: m\n  num_samples: 5\n  search:\n    acq_func: ucb\n  config:\n    - name: a\n      bounds: [0, 1]\n";
        let e = ExperimentConf::from_value(&parse(src).unwrap()).unwrap_err();
        assert_eq!(e.path, "optimization.search.acq_func");
        let src = "name: x\noptimization:\n  metric: m\n  num_samples: 5\n  search:\n    initial_point_generator: fibonacci\n  config:\n    - name: a\n      bounds: [0, 1]\n";
        let e = ExperimentConf::from_value(&parse(src).unwrap()).unwrap_err();
        assert_eq!(e.path, "optimization.search.initial_point_generator");
    }

    #[test]
    fn algo_aliases_resolve_to_canonical_names() {
        for (alias, canonical) in [
            ("ET", "extra_trees"),
            ("rf", "random_forest"),
            ("kriging", "gp"),
            ("ga", "genetic_algorithm"),
            ("random", "random"),
        ] {
            let algo = SearchAlgo::from_name(alias).unwrap();
            assert_eq!(algo.name(), canonical, "alias {alias}");
        }
        assert!(SearchAlgo::from_name("").is_none());
    }

    #[test]
    fn fault_tolerance_block_parses_with_defaults() {
        let src = "name: x\noptimization:\n  metric: m\n  num_samples: 5\n  fault_tolerance:\n    max_retries: 3\n    time_budget_ms: 2000\n  config:\n    - name: a\n      bounds: [0, 1]\n";
        let conf = ExperimentConf::from_value(&parse(src).unwrap()).unwrap();
        let ft = conf.optimization.unwrap().fault_tolerance.unwrap();
        assert_eq!(ft.max_retries, 3);
        assert_eq!(ft.time_budget_ms, Some(2000));
        // Unspecified knobs take the documented defaults.
        assert_eq!(ft.backoff_ms, 100);
        assert_eq!(ft.backoff_factor, 2.0);
        assert_eq!(ft.max_backoff_ms, 10_000);
        assert_eq!(ft.jitter, 0.1);
    }

    #[test]
    fn fault_tolerance_rejects_bad_knobs() {
        let bad_factor = "name: x\noptimization:\n  metric: m\n  num_samples: 5\n  fault_tolerance:\n    backoff_factor: 0.5\n  config:\n    - name: a\n      bounds: [0, 1]\n";
        let e = ExperimentConf::from_value(&parse(bad_factor).unwrap()).unwrap_err();
        assert_eq!(e.path, "optimization.fault_tolerance.backoff_factor");
        let bad_jitter = "name: x\noptimization:\n  metric: m\n  num_samples: 5\n  fault_tolerance:\n    jitter: 1.5\n  config:\n    - name: a\n      bounds: [0, 1]\n";
        let e = ExperimentConf::from_value(&parse(bad_jitter).unwrap()).unwrap_err();
        assert_eq!(e.path, "optimization.fault_tolerance.jitter");
        let bad_budget = "name: x\noptimization:\n  metric: m\n  num_samples: 5\n  fault_tolerance:\n    time_budget_ms: 0\n  config:\n    - name: a\n      bounds: [0, 1]\n";
        let e = ExperimentConf::from_value(&parse(bad_budget).unwrap()).unwrap_err();
        assert_eq!(e.path, "optimization.fault_tolerance.time_budget_ms");
    }

    #[test]
    fn experiment_without_optimization() {
        let src = "name: plain\nlayers:\n  - name: cloud\n";
        let conf = ExperimentConf::from_value(&parse(src).unwrap()).unwrap();
        assert!(conf.optimization.is_none());
        assert!(conf.network.is_empty());
    }
}
