//! Typed experiment configuration, validated from a parsed document.
//!
//! Mirrors E2Clab's configuration files: layers & services, network
//! constraints, and the optimization setup introduced by the paper
//! (Listing 1). [`ExperimentConf::from_value`] performs the validation the
//! framework's managers rely on.

use crate::value::Value;
use std::fmt;

/// Validation failure with a config path like `layers[0].services[1].name`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// Dotted path to the offending element.
    pub path: String,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

impl std::error::Error for SchemaError {}

fn err(path: &str, message: impl Into<String>) -> SchemaError {
    SchemaError {
        path: path.to_string(),
        message: message.into(),
    }
}

/// One service within a layer (e.g. the engine, or a group of clients).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConf {
    /// Service name, unique within the experiment.
    pub name: String,
    /// Testbed cluster hosting it.
    pub cluster: String,
    /// Number of nodes.
    pub quantity: usize,
}

/// A continuum layer (edge / fog / cloud) with its services.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerConf {
    /// Layer name.
    pub name: String,
    /// Services deployed on this layer.
    pub services: Vec<ServiceConf>,
}

/// A network constraint between two layers.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConf {
    /// Source layer/group.
    pub src: String,
    /// Destination layer/group.
    pub dst: String,
    /// One-way delay in milliseconds.
    pub delay_ms: f64,
    /// Rate in Mbps.
    pub rate_mbps: f64,
    /// Loss probability in `[0, 1)`.
    pub loss: f64,
}

/// Kind of an optimization variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Integer-valued, inclusive bounds (`tune.randint` style).
    Int,
    /// Real-valued, inclusive bounds.
    Real,
}

/// One optimization variable (a dimension of the search space).
#[derive(Debug, Clone, PartialEq)]
pub struct VariableConf {
    /// Variable name (e.g. `http`).
    pub name: String,
    /// Integer or real.
    pub kind: VarKind,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

/// The optimization section (the paper's Listing 1 / `optimizer_conf`).
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationConf {
    /// Metric to optimize (e.g. `user_resp_time`).
    pub metric: String,
    /// `min` or `max`.
    pub minimize: bool,
    /// Experiment name for the archive.
    pub name: String,
    /// Total evaluations budget.
    pub num_samples: usize,
    /// Parallel evaluation cap (the paper's `ConcurrencyLimiter`).
    pub max_concurrent: usize,
    /// Surrogate / search algorithm name (e.g. `extra_trees`).
    pub algo: String,
    /// Initial random/LHS design size.
    pub n_initial_points: usize,
    /// Initial point generator (`lhs`, `halton`, `sobol`, `random`).
    pub initial_point_generator: String,
    /// Acquisition function (`ei`, `pi`, `lcb`, `gp_hedge`).
    pub acq_func: String,
    /// The search space.
    pub variables: Vec<VariableConf>,
}

/// A full experiment description.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConf {
    /// Experiment name.
    pub name: String,
    /// Continuum layers with their services.
    pub layers: Vec<LayerConf>,
    /// Network constraints between layers.
    pub network: Vec<NetworkConf>,
    /// Optional optimization setup.
    pub optimization: Option<OptimizationConf>,
}

impl ExperimentConf {
    /// Validate a parsed document into a typed configuration.
    pub fn from_value(doc: &Value) -> Result<ExperimentConf, SchemaError> {
        let name = doc
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| err("name", "missing or not a string"))?
            .to_string();

        let mut layers = Vec::new();
        if let Some(layers_val) = doc.get("layers") {
            let seq = layers_val
                .as_seq()
                .ok_or_else(|| err("layers", "must be a sequence"))?;
            for (i, layer) in seq.iter().enumerate() {
                layers.push(parse_layer(layer, i)?);
            }
        }

        let mut network = Vec::new();
        if let Some(net_val) = doc.get("network") {
            let seq = net_val
                .as_seq()
                .ok_or_else(|| err("network", "must be a sequence"))?;
            for (i, rule) in seq.iter().enumerate() {
                network.push(parse_network(rule, i)?);
            }
        }

        let optimization = match doc.get("optimization") {
            Some(v) if !v.is_null() => Some(parse_optimization(v)?),
            _ => None,
        };

        // Cross-checks: network rules must reference declared layers.
        if !layers.is_empty() {
            for (i, rule) in network.iter().enumerate() {
                for end in [&rule.src, &rule.dst] {
                    if !layers.iter().any(|l| l.name == *end) {
                        return Err(err(
                            &format!("network[{i}]"),
                            format!("references undeclared layer `{end}`"),
                        ));
                    }
                }
            }
        }

        Ok(ExperimentConf {
            name,
            layers,
            network,
            optimization,
        })
    }
}

fn parse_layer(v: &Value, i: usize) -> Result<LayerConf, SchemaError> {
    let path = format!("layers[{i}]");
    let name = v
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| err(&format!("{path}.name"), "missing or not a string"))?
        .to_string();
    let mut services = Vec::new();
    if let Some(svc_val) = v.get("services") {
        let seq = svc_val
            .as_seq()
            .ok_or_else(|| err(&format!("{path}.services"), "must be a sequence"))?;
        for (j, svc) in seq.iter().enumerate() {
            let spath = format!("{path}.services[{j}]");
            let sname = svc
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| err(&format!("{spath}.name"), "missing or not a string"))?
                .to_string();
            let cluster = svc
                .get("cluster")
                .and_then(Value::as_str)
                .ok_or_else(|| err(&format!("{spath}.cluster"), "missing or not a string"))?
                .to_string();
            let quantity = svc
                .get("quantity")
                .map(|q| {
                    q.as_int()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| err(&format!("{spath}.quantity"), "must be a positive integer"))
                })
                .transpose()?
                .unwrap_or(1) as usize;
            services.push(ServiceConf {
                name: sname,
                cluster,
                quantity,
            });
        }
    }
    Ok(LayerConf { name, services })
}

fn parse_network(v: &Value, i: usize) -> Result<NetworkConf, SchemaError> {
    let path = format!("network[{i}]");
    let get_str = |key: &str| {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| err(&format!("{path}.{key}"), "missing or not a string"))
    };
    let get_num = |key: &str, default: f64| {
        v.get(key)
            .map(|x| {
                x.as_float()
                    .ok_or_else(|| err(&format!("{path}.{key}"), "must be a number"))
            })
            .transpose()
            .map(|o| o.unwrap_or(default))
    };
    let loss = get_num("loss", 0.0)?;
    if !(0.0..1.0).contains(&loss) {
        return Err(err(&format!("{path}.loss"), "must be in [0, 1)"));
    }
    Ok(NetworkConf {
        src: get_str("src")?,
        dst: get_str("dst")?,
        delay_ms: get_num("delay_ms", 0.0)?,
        rate_mbps: get_num("rate_mbps", 100_000.0)?,
        loss,
    })
}

fn parse_optimization(v: &Value) -> Result<OptimizationConf, SchemaError> {
    let path = "optimization";
    let metric = v
        .get("metric")
        .and_then(Value::as_str)
        .ok_or_else(|| err(&format!("{path}.metric"), "missing or not a string"))?
        .to_string();
    let mode = v.get("mode").and_then(Value::as_str).unwrap_or("min");
    let minimize = match mode {
        "min" => true,
        "max" => false,
        other => {
            return Err(err(
                &format!("{path}.mode"),
                format!("must be `min` or `max`, got `{other}`"),
            ))
        }
    };
    let name = v
        .get("name")
        .and_then(Value::as_str)
        .unwrap_or("optimization")
        .to_string();
    let num_samples = v
        .get("num_samples")
        .and_then(Value::as_int)
        .filter(|&n| n > 0)
        .ok_or_else(|| err(&format!("{path}.num_samples"), "must be a positive integer"))?
        as usize;
    let max_concurrent = v
        .get("max_concurrent")
        .and_then(Value::as_int)
        .filter(|&n| n > 0)
        .unwrap_or(1) as usize;

    let search = v.get("search").unwrap_or(&Value::Null);
    let algo = search
        .get("algo")
        .and_then(Value::as_str)
        .unwrap_or("extra_trees")
        .to_string();
    let n_initial_points = search
        .get("n_initial_points")
        .and_then(Value::as_int)
        .filter(|&n| n > 0)
        .unwrap_or(10) as usize;
    let initial_point_generator = search
        .get("initial_point_generator")
        .and_then(Value::as_str)
        .unwrap_or("lhs")
        .to_string();
    let acq_func = search
        .get("acq_func")
        .and_then(Value::as_str)
        .unwrap_or("gp_hedge")
        .to_string();

    let config = v
        .get("config")
        .and_then(Value::as_seq)
        .ok_or_else(|| err(&format!("{path}.config"), "missing variable sequence"))?;
    if config.is_empty() {
        return Err(err(&format!("{path}.config"), "needs at least one variable"));
    }
    let mut variables = Vec::new();
    for (i, var) in config.iter().enumerate() {
        let vpath = format!("{path}.config[{i}]");
        let vname = var
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| err(&format!("{vpath}.name"), "missing or not a string"))?
            .to_string();
        if variables.iter().any(|x: &VariableConf| x.name == vname) {
            return Err(err(&vpath, format!("duplicate variable `{vname}`")));
        }
        let kind = match var.get("type").and_then(Value::as_str).unwrap_or("randint") {
            "randint" | "int" => VarKind::Int,
            "uniform" | "real" => VarKind::Real,
            other => {
                return Err(err(
                    &format!("{vpath}.type"),
                    format!("unknown variable type `{other}`"),
                ))
            }
        };
        let bounds = var
            .get("bounds")
            .and_then(Value::as_seq)
            .filter(|b| b.len() == 2)
            .ok_or_else(|| err(&format!("{vpath}.bounds"), "must be [lo, hi]"))?;
        let lo = bounds[0]
            .as_float()
            .ok_or_else(|| err(&format!("{vpath}.bounds"), "lo must be a number"))?;
        let hi = bounds[1]
            .as_float()
            .ok_or_else(|| err(&format!("{vpath}.bounds"), "hi must be a number"))?;
        if hi < lo {
            return Err(err(&format!("{vpath}.bounds"), "hi must be >= lo"));
        }
        variables.push(VariableConf {
            name: vname,
            kind,
            lo,
            hi,
        });
    }

    Ok(OptimizationConf {
        metric,
        minimize,
        name,
        num_samples,
        max_concurrent,
        algo,
        n_initial_points,
        initial_point_generator,
        acq_func,
        variables,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const FULL: &str = r#"
name: plantnet-optimization
layers:
  - name: cloud
    services:
      - name: engine
        cluster: chifflot
        quantity: 1
  - name: edge
    services:
      - name: clients
        cluster: gros
        quantity: 10
network:
  - src: edge
    dst: cloud
    delay_ms: 5.0
    rate_mbps: 10000
optimization:
  metric: user_resp_time
  mode: min
  name: plantnet_engine
  num_samples: 10
  max_concurrent: 2
  search:
    algo: extra_trees
    n_initial_points: 45
    initial_point_generator: lhs
    acq_func: gp_hedge
  config:
    - name: http
      type: randint
      bounds: [20, 60]
    - name: extract
      type: randint
      bounds: [3, 9]
"#;

    #[test]
    fn full_config_validates() {
        let conf = ExperimentConf::from_value(&parse(FULL).unwrap()).unwrap();
        assert_eq!(conf.name, "plantnet-optimization");
        assert_eq!(conf.layers.len(), 2);
        assert_eq!(conf.layers[0].services[0].cluster, "chifflot");
        assert_eq!(conf.layers[1].services[0].quantity, 10);
        assert_eq!(conf.network.len(), 1);
        assert_eq!(conf.network[0].delay_ms, 5.0);
        let opt = conf.optimization.unwrap();
        assert!(opt.minimize);
        assert_eq!(opt.algo, "extra_trees");
        assert_eq!(opt.n_initial_points, 45);
        assert_eq!(opt.variables.len(), 2);
        assert_eq!(opt.variables[1].kind, VarKind::Int);
        assert_eq!(opt.variables[1].lo, 3.0);
    }

    #[test]
    fn missing_name_fails() {
        let doc = parse("layers: []").unwrap();
        let e = ExperimentConf::from_value(&doc).unwrap_err();
        assert_eq!(e.path, "name");
    }

    #[test]
    fn network_must_reference_layers() {
        let src = r#"
name: x
layers:
  - name: cloud
network:
  - src: cloud
    dst: mars
"#;
        let e = ExperimentConf::from_value(&parse(src).unwrap()).unwrap_err();
        assert!(e.message.contains("mars"));
    }

    #[test]
    fn bad_mode_fails() {
        let src = "name: x\noptimization:\n  metric: m\n  mode: sideways\n  num_samples: 5\n  config:\n    - name: a\n      bounds: [0, 1]\n";
        let e = ExperimentConf::from_value(&parse(src).unwrap()).unwrap_err();
        assert!(e.message.contains("sideways"));
    }

    #[test]
    fn inverted_bounds_fail() {
        let src = "name: x\noptimization:\n  metric: m\n  num_samples: 5\n  config:\n    - name: a\n      bounds: [9, 3]\n";
        let e = ExperimentConf::from_value(&parse(src).unwrap()).unwrap_err();
        assert!(e.message.contains("hi must be >= lo"));
    }

    #[test]
    fn duplicate_variable_fails() {
        let src = "name: x\noptimization:\n  metric: m\n  num_samples: 5\n  config:\n    - name: a\n      bounds: [0, 1]\n    - name: a\n      bounds: [0, 1]\n";
        let e = ExperimentConf::from_value(&parse(src).unwrap()).unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn defaults_applied() {
        let src = "name: x\noptimization:\n  metric: m\n  num_samples: 5\n  config:\n    - name: a\n      bounds: [0, 1]\n";
        let conf = ExperimentConf::from_value(&parse(src).unwrap()).unwrap();
        let opt = conf.optimization.unwrap();
        assert!(opt.minimize);
        assert_eq!(opt.max_concurrent, 1);
        assert_eq!(opt.acq_func, "gp_hedge");
        assert_eq!(opt.initial_point_generator, "lhs");
        // default type is randint
        assert_eq!(opt.variables[0].kind, VarKind::Int);
    }

    #[test]
    fn experiment_without_optimization() {
        let src = "name: plain\nlayers:\n  - name: cloud\n";
        let conf = ExperimentConf::from_value(&parse(src).unwrap()).unwrap();
        assert!(conf.optimization.is_none());
        assert!(conf.network.is_empty());
    }
}
