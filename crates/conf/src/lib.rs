//! # e2c-conf — configuration substrate
//!
//! E2Clab is configuration-file driven: `layers_services.yaml`,
//! `network.yaml`, `workflow.yaml` and (new in the paper) `optimizer_conf`
//! describe an experiment. This crate keeps that user experience with zero
//! external parser dependencies:
//!
//! * [`parse`] — a from-scratch parser for a YAML subset (block mappings,
//!   block sequences, flow sequences, scalars, comments);
//! * [`Value`] — the parsed document tree with typed accessors;
//! * [`schema`] — the typed experiment description ([`schema::ExperimentConf`])
//!   built by validating a parsed document, covering layers/services,
//!   network constraints and the optimization setup of the paper's
//!   Listing 1.
//!
//! The supported subset is documented on [`parse`]; anchors, multi-line
//! scalars and flow mappings are intentionally out of scope.

pub mod parser;
pub mod schema;
pub mod value;

pub use parser::{parse, ParseError};
pub use value::Value;
