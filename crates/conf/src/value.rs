//! The parsed configuration tree.

use std::fmt;

/// A node in a parsed configuration document.
///
/// Mappings preserve insertion order (they are stored as pairs), so
/// re-serializing a document is deterministic — which matters for the
/// reproducibility archive.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` / `~` / empty.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer scalar.
    Int(i64),
    /// Float scalar.
    Float(f64),
    /// String scalar (quoted or bare).
    Str(String),
    /// Block or flow sequence.
    Seq(Vec<Value>),
    /// Block mapping with preserved key order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Mapping lookup; `None` for non-maps or absent keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Sequence element; `None` for non-sequences or out of range.
    pub fn idx(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Seq(items) => items.get(i),
            _ => None,
        }
    }

    /// String view of a string scalar.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view (exact ints only).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float view; integers widen to floats.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Sequence view.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Mapping view.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Render the value as a canonical, line-oriented tree — one node per
    /// line, two-space indent, scalars tagged with their type. This is the
    /// *differential-testing* form: the fixture corpus under
    /// `crates/conf/tests/corpus/` commits the expected `.tree` rendering
    /// of each `.yaml` fixture, and both the corpus test and `e2clab fuzz
    /// --codec conf_yaml` byte-compare against it. Unlike `to_yaml` it is
    /// total (floats render via `{:?}`, so NaN/inf are representable) and
    /// unambiguous (Int(2) vs Float(2.0) vs Str("2") all render apart).
    pub fn to_tree(&self) -> String {
        let mut out = String::new();
        self.write_tree(&mut out, 0);
        out
    }

    fn write_tree(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Value::Null => out.push_str(&format!("{pad}null\n")),
            Value::Bool(b) => out.push_str(&format!("{pad}bool {b}\n")),
            Value::Int(i) => out.push_str(&format!("{pad}int {i}\n")),
            Value::Float(f) => out.push_str(&format!("{pad}float {f:?}\n")),
            Value::Str(s) => out.push_str(&format!("{pad}str {s:?}\n")),
            Value::Seq(items) => {
                out.push_str(&format!("{pad}seq[{}]\n", items.len()));
                for item in items {
                    item.write_tree(out, indent + 1);
                }
            }
            Value::Map(pairs) => {
                out.push_str(&format!("{pad}map[{}]\n", pairs.len()));
                for (k, v) in pairs {
                    out.push_str(&format!("{pad}  key {k:?}\n"));
                    v.write_tree(out, indent + 2);
                }
            }
        }
    }

    /// Serialize back to the YAML subset (block style, two-space indent).
    pub fn to_yaml(&self) -> String {
        let mut out = String::new();
        match self {
            // Empty collections have no block form — an empty document
            // re-parses as Null — so they get their flow spelling.
            Value::Seq(items) if items.is_empty() => out.push_str("[]"),
            Value::Map(pairs) if pairs.is_empty() => out.push_str("{}"),
            Value::Seq(_) | Value::Map(_) => self.write_block(&mut out, 0),
            scalar => out.push_str(&scalar.scalar_repr()),
        }
        out
    }

    fn scalar_repr(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                // Keep floats recognizable as floats on re-parse.
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{f:.1}")
                } else {
                    format!("{f}")
                }
            }
            Value::Str(s) => {
                // `s.trim() != s` (not just edge *spaces*): the parser
                // trims any whitespace off bare scalars, so a tab-edged
                // string emitted bare would re-parse differently.
                let needs_quotes = s.is_empty()
                    || s.trim() != s
                    || s.contains(':')
                    || s.contains('#')
                    || s.starts_with(['-', '[', ']', '{', '}', '\'', '"'])
                    || parses_as_non_string(s);
                if needs_quotes {
                    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
                } else {
                    s.clone()
                }
            }
            _ => unreachable!("scalar_repr on collection"),
        }
    }

    fn write_block(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Value::Map(pairs) => {
                for (k, v) in pairs {
                    let k = key_repr(k);
                    match v {
                        Value::Map(m) if !m.is_empty() => {
                            out.push_str(&format!("{pad}{k}:\n"));
                            v.write_block(out, indent + 1);
                        }
                        Value::Seq(s) if !s.is_empty() => {
                            out.push_str(&format!("{pad}{k}:\n"));
                            v.write_block(out, indent + 1);
                        }
                        Value::Map(_) => out.push_str(&format!("{pad}{k}: {{}}\n")),
                        Value::Seq(_) => out.push_str(&format!("{pad}{k}: []\n")),
                        scalar => out.push_str(&format!("{pad}{k}: {}\n", scalar.scalar_repr())),
                    }
                }
            }
            Value::Seq(items) => {
                for item in items {
                    match item {
                        Value::Map(pairs) if pairs.is_empty() => {
                            out.push_str(&format!("{pad}- {{}}\n"));
                        }
                        Value::Seq(s) if s.is_empty() => {
                            out.push_str(&format!("{pad}- []\n"));
                        }
                        Value::Map(pairs) => {
                            // `- key: value` with the rest indented.
                            let (k0, v0) = &pairs[0];
                            let k0 = key_repr(k0);
                            match v0 {
                                Value::Map(m) if m.is_empty() => {
                                    out.push_str(&format!("{pad}- {k0}: {{}}\n"))
                                }
                                Value::Seq(s) if s.is_empty() => {
                                    out.push_str(&format!("{pad}- {k0}: []\n"))
                                }
                                Value::Map(_) | Value::Seq(_) => {
                                    out.push_str(&format!("{pad}- {k0}:\n"));
                                    v0.write_block(out, indent + 2);
                                }
                                scalar => out
                                    .push_str(&format!("{pad}- {k0}: {}\n", scalar.scalar_repr())),
                            }
                            for (k, v) in &pairs[1..] {
                                let k = key_repr(k);
                                match v {
                                    Value::Map(m) if m.is_empty() => {
                                        out.push_str(&format!("{pad}  {k}: {{}}\n"))
                                    }
                                    Value::Seq(s) if s.is_empty() => {
                                        out.push_str(&format!("{pad}  {k}: []\n"))
                                    }
                                    Value::Map(_) | Value::Seq(_) => {
                                        out.push_str(&format!("{pad}  {k}:\n"));
                                        v.write_block(out, indent + 2);
                                    }
                                    scalar => out.push_str(&format!(
                                        "{pad}  {k}: {}\n",
                                        scalar.scalar_repr()
                                    )),
                                }
                            }
                        }
                        Value::Seq(_) => {
                            out.push_str(&format!("{pad}-\n"));
                            item.write_block(out, indent + 1);
                        }
                        scalar => out.push_str(&format!("{pad}- {}\n", scalar.scalar_repr())),
                    }
                }
            }
            _ => unreachable!("write_block on scalar"),
        }
    }
}

/// Render a mapping key so it re-parses to the same key. Bare keys must
/// survive comment stripping, `split_key` and `trim` unchanged; anything
/// else (embedded colons, `#`, quotes, edge whitespace, sequence-looking
/// prefixes) is double-quoted with the escape set `unquote` reverses.
/// Emitting such keys bare used to *misparse* on reload: `"a: b": 1`
/// round-tripped to `a: b: 1`, which reads back as `a: "b: 1"`.
fn key_repr(k: &str) -> String {
    let bare_is_safe = !k.is_empty()
        && k == k.trim()
        && !k.contains([':', '#', '"', '\''])
        && !k.starts_with("- ")
        && k != "-";
    if bare_is_safe {
        k.to_string()
    } else {
        format!("\"{}\"", k.replace('\\', "\\\\").replace('"', "\\\""))
    }
}

/// Would this bare string re-parse as something other than a string?
fn parses_as_non_string(s: &str) -> bool {
    matches!(s, "null" | "~" | "true" | "false")
        || s.parse::<i64>().is_ok()
        || s.parse::<f64>().is_ok()
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_yaml())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::Map(vec![
            ("name".into(), Value::Str("plantnet".into())),
            (
                "pools".into(),
                Value::Map(vec![
                    ("http".into(), Value::Int(40)),
                    ("extract".into(), Value::Int(7)),
                ]),
            ),
            (
                "workloads".into(),
                Value::Seq(vec![Value::Int(80), Value::Int(120), Value::Int(140)]),
            ),
        ])
    }

    #[test]
    fn get_and_idx() {
        let v = sample();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("plantnet"));
        assert_eq!(
            v.get("pools")
                .and_then(|p| p.get("http"))
                .and_then(Value::as_int),
            Some(40)
        );
        assert_eq!(
            v.get("workloads")
                .and_then(|w| w.idx(1))
                .and_then(Value::as_int),
            Some(120)
        );
        assert!(v.get("absent").is_none());
        assert!(v.idx(0).is_none());
    }

    #[test]
    fn as_float_widens_ints() {
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_float(), None);
    }

    #[test]
    fn yaml_roundtrip_shape() {
        let v = sample();
        let text = v.to_yaml();
        assert!(text.contains("name: plantnet"));
        assert!(text.contains("  http: 40"));
        assert!(text.contains("- 80"));
    }

    #[test]
    fn strings_that_look_like_numbers_are_quoted() {
        let v = Value::Map(vec![("version".into(), Value::Str("42".into()))]);
        assert_eq!(v.to_yaml(), "version: \"42\"\n");
    }

    #[test]
    fn float_serialization_keeps_floatness() {
        assert_eq!(Value::Float(2.0).to_yaml(), "2.0");
        assert_eq!(Value::Float(2.5).to_yaml(), "2.5");
    }

    #[test]
    fn hostile_keys_are_quoted() {
        let v = Value::Map(vec![
            ("a: b".into(), Value::Int(1)),
            ("a #c".into(), Value::Int(2)),
            ("he said \"hi\"".into(), Value::Int(3)),
            (" padded ".into(), Value::Int(4)),
            ("".into(), Value::Int(5)),
            ("plain".into(), Value::Int(6)),
        ]);
        let yaml = v.to_yaml();
        assert!(yaml.contains("\"a: b\": 1"), "{yaml}");
        assert!(yaml.contains("\"a #c\": 2"), "{yaml}");
        assert!(yaml.contains("\"he said \\\"hi\\\"\": 3"), "{yaml}");
        assert!(yaml.contains("\" padded \": 4"), "{yaml}");
        assert!(yaml.contains("\"\": 5"), "{yaml}");
        assert!(yaml.contains("plain: 6"), "{yaml}");
    }

    #[test]
    fn empty_root_collections_round_trip() {
        // Fuzz find: an empty Seq at the root serialized to an empty
        // document, which re-parses as Null. Flow form survives.
        for (v, want) in [(Value::Seq(vec![]), "[]"), (Value::Map(vec![]), "{}")] {
            let yaml = v.to_yaml();
            assert_eq!(yaml, want);
            assert_eq!(crate::parse(&yaml).unwrap(), v);
        }
    }

    #[test]
    fn tree_rendering_is_canonical() {
        let v = Value::Map(vec![
            ("f".into(), Value::Float(f64::NAN)),
            ("s".into(), Value::Seq(vec![Value::Int(2), Value::Null])),
        ]);
        assert_eq!(
            v.to_tree(),
            "map[2]\n  key \"f\"\n    float NaN\n  key \"s\"\n    seq[2]\n      int 2\n      null\n"
        );
    }
}
