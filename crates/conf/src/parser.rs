//! Recursive-descent parser for the YAML subset.
//!
//! Supported constructs:
//!
//! * block mappings — `key: value`, nested by indentation;
//! * block sequences — `- item`, including `- key: value` compact maps;
//! * flow sequences — `[1, 2, three]` (scalars only, no nesting);
//! * scalars — `null`/`~`, booleans, integers, floats, bare strings,
//!   single/double-quoted strings;
//! * comments — `# ...` full-line or trailing;
//! * a leading `---` document marker.
//!
//! Not supported (by design): anchors/aliases, multi-line scalars, flow
//! mappings, tabs for indentation, multiple documents.

use crate::value::Value;
use std::fmt;

/// Maximum nesting depth, counting block levels and flow-sequence levels
/// together. Real configurations are a handful of levels deep; the bound
/// exists so a pathological document (`[[[[…`, or ten thousand lines each
/// indented one step deeper) is a typed [`ParseError`] instead of a stack
/// overflow — the parser feeds on hand-edited files and must never abort.
const MAX_DEPTH: usize = 64;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the problem was detected.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Line {
    number: usize,
    indent: usize,
    content: String,
}

/// Parse a document into a [`Value`]. An empty (or comment-only) document
/// parses to [`Value::Null`].
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let lines = preprocess(input)?;
    if lines.is_empty() {
        return Ok(Value::Null);
    }
    let mut pos = 0;
    // `lines` was checked non-empty above, but use the non-panicking
    // accessor anyway: this is the entry point for arbitrary user bytes.
    let root_indent = lines.first().map_or(0, |l| l.indent);
    let value = parse_block(&lines, &mut pos, root_indent, 0)?;
    if pos < lines.len() {
        return Err(ParseError {
            line: lines[pos].number,
            message: format!(
                "unexpected indentation {} (expected at most {})",
                lines[pos].indent, root_indent
            ),
        });
    }
    Ok(value)
}

fn preprocess(input: &str) -> Result<Vec<Line>, ParseError> {
    let mut out = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let number = i + 1;
        let without_comment = strip_comment(raw);
        let trimmed = without_comment.trim_end();
        let content = trimmed.trim_start();
        if content.is_empty() {
            continue;
        }
        if number == 1 && content == "---" {
            continue;
        }
        // Indentation must be plain spaces. Checking the leading run
        // directly (rather than `starts_with('\t')`) also catches tabs
        // *mixed into* the run (`"  \tkey:"`), which `trim_start`-based
        // checks silently accept as indentation.
        if trimmed[..trimmed.len() - content.len()]
            .chars()
            .any(|c| c != ' ')
        {
            return Err(ParseError {
                line: number,
                message: "only spaces are allowed for indentation (no tabs or other whitespace)"
                    .into(),
            });
        }
        let indent = trimmed.len() - content.len();
        out.push(Line {
            number,
            indent,
            content: content.to_string(),
        });
    }
    Ok(out)
}

/// Remove a trailing comment, respecting quotes.
fn strip_comment(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_single = false;
    let mut in_double = false;
    let mut escaped = false;
    for c in line.chars() {
        match c {
            '\\' if in_double && !escaped => {
                escaped = true;
                out.push(c);
                continue;
            }
            '"' if !in_single && !escaped => in_double = !in_double,
            '\'' if !in_double => in_single = !in_single,
            '#' if !in_single && !in_double
                // `#` begins a comment at line start or after whitespace.
                && (out.is_empty() || out.ends_with(' ')) =>
            {
                break;
            }
            _ => {}
        }
        escaped = false;
        out.push(c);
    }
    out
}

fn parse_block(
    lines: &[Line],
    pos: &mut usize,
    indent: usize,
    depth: usize,
) -> Result<Value, ParseError> {
    let Some(line) = lines.get(*pos) else {
        return Ok(Value::Null);
    };
    if depth >= MAX_DEPTH {
        return Err(ParseError {
            line: line.number,
            message: format!("nesting deeper than {MAX_DEPTH} levels"),
        });
    }
    if line.content.starts_with("- ") || line.content == "-" {
        parse_sequence(lines, pos, indent, depth)
    } else if split_key(&line.content).is_none()
        && lines.get(*pos + 1).is_none_or(|l| l.indent < indent)
    {
        // A lone keyless line is a scalar document (or scalar block
        // value): `null`, `42`, a bare string. Without this case a
        // serialized scalar root could not be read back.
        let number = line.number;
        let content = line.content.clone();
        *pos += 1;
        parse_scalar(&content, number, depth)
    } else {
        parse_mapping(lines, pos, indent, depth)
    }
}

fn parse_sequence(
    lines: &[Line],
    pos: &mut usize,
    indent: usize,
    depth: usize,
) -> Result<Value, ParseError> {
    if depth >= MAX_DEPTH {
        return Err(too_deep(lines.get(*pos).map_or(0, |l| l.number)));
    }
    let mut items = Vec::new();
    while *pos < lines.len() {
        let line = &lines[*pos];
        if line.indent != indent {
            if line.indent > indent {
                return Err(ParseError {
                    line: line.number,
                    message: "unexpected deeper indentation in sequence".into(),
                });
            }
            break;
        }
        if !(line.content.starts_with("- ") || line.content == "-") {
            break;
        }
        let number = line.number;
        if line.content == "-" {
            // Nested block on the following, deeper-indented lines.
            *pos += 1;
            if *pos < lines.len() && lines[*pos].indent > indent {
                let child_indent = lines[*pos].indent;
                items.push(parse_block(lines, pos, child_indent, depth + 1)?);
            } else {
                items.push(Value::Null);
            }
            continue;
        }
        let rest = line.content[2..].trim_start().to_string();
        if let Some((key, inline)) = split_key(&rest) {
            // `- key: ...` — a compact mapping item. Re-interpret this line
            // as the first key of a mapping indented at `indent + 2`.
            let virtual_indent = indent + 2;
            let mut map_pairs = Vec::new();
            *pos += 1; // consume the `- key: ...` line itself
            let first_val =
                parse_mapping_value(lines, pos, virtual_indent, &inline, number, depth + 1)?;
            map_pairs.push((key, first_val));
            // Continue the mapping on subsequent lines at the same virtual
            // indent.
            while *pos < lines.len() && lines[*pos].indent == virtual_indent {
                let l = &lines[*pos];
                if l.content.starts_with("- ") || l.content == "-" {
                    break;
                }
                let Some((k, inline)) = split_key(&l.content) else {
                    return Err(ParseError {
                        line: l.number,
                        message: format!("expected `key:` in mapping, got `{}`", l.content),
                    });
                };
                let num = l.number;
                *pos += 1;
                let v = parse_mapping_value(lines, pos, virtual_indent, &inline, num, depth + 1)?;
                map_pairs.push((k, v));
            }
            items.push(Value::Map(map_pairs));
        } else {
            *pos += 1;
            items.push(parse_scalar(&rest, number, depth + 1)?);
        }
    }
    Ok(Value::Seq(items))
}

fn parse_mapping(
    lines: &[Line],
    pos: &mut usize,
    indent: usize,
    depth: usize,
) -> Result<Value, ParseError> {
    if depth >= MAX_DEPTH {
        return Err(too_deep(lines.get(*pos).map_or(0, |l| l.number)));
    }
    let mut pairs: Vec<(String, Value)> = Vec::new();
    while *pos < lines.len() {
        let line = &lines[*pos];
        if line.indent != indent {
            if line.indent > indent {
                return Err(ParseError {
                    line: line.number,
                    message: "unexpected deeper indentation in mapping".into(),
                });
            }
            break;
        }
        if line.content.starts_with("- ") || line.content == "-" {
            break;
        }
        let Some((key, inline)) = split_key(&line.content) else {
            return Err(ParseError {
                line: line.number,
                message: format!("expected `key: value`, got `{}`", line.content),
            });
        };
        if pairs.iter().any(|(k, _)| *k == key) {
            return Err(ParseError {
                line: line.number,
                message: format!("duplicate key `{key}`"),
            });
        }
        let number = line.number;
        *pos += 1;
        let value = parse_mapping_value(lines, pos, indent, &inline, number, depth)?;
        pairs.push((key, value));
    }
    Ok(Value::Map(pairs))
}

/// Parse the value of `key:` — inline scalar/flow-seq if present, otherwise
/// a nested block on the following deeper-indented lines. As in YAML, a
/// block sequence may sit at the *same* indent as its key (`- ` lines are
/// unambiguous there, since mapping entries never start with a dash).
fn parse_mapping_value(
    lines: &[Line],
    pos: &mut usize,
    indent: usize,
    inline: &str,
    line_number: usize,
    depth: usize,
) -> Result<Value, ParseError> {
    if !inline.is_empty() {
        return parse_scalar(inline, line_number, depth);
    }
    if *pos < lines.len() {
        let next = &lines[*pos];
        if next.indent > indent {
            let child_indent = next.indent;
            return parse_block(lines, pos, child_indent, depth + 1);
        }
        if next.indent == indent && (next.content.starts_with("- ") || next.content == "-") {
            return parse_sequence(lines, pos, indent, depth + 1);
        }
    }
    Ok(Value::Null)
}

/// Split `key: rest` respecting quoted keys. Returns `None` when the line
/// has no top-level `:` separator.
fn split_key(content: &str) -> Option<(String, String)> {
    let mut in_single = false;
    let mut in_double = false;
    let mut escaped = false;
    for (i, c) in content.char_indices() {
        match c {
            '\\' if in_double && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !in_single && !escaped => in_double = !in_double,
            '\'' if !in_double => in_single = !in_single,
            ':' if !in_single && !in_double => {
                let after = &content[i + 1..];
                if after.is_empty() || after.starts_with(' ') {
                    let raw_key = content[..i].trim();
                    let key = unquote(raw_key);
                    return Some((key, after.trim().to_string()));
                }
            }
            _ => {}
        }
        escaped = false;
    }
    None
}

fn unquote(s: &str) -> String {
    if s.len() >= 2
        && ((s.starts_with('"') && s.ends_with('"')) || (s.starts_with('\'') && s.ends_with('\'')))
    {
        let inner = &s[1..s.len() - 1];
        if s.starts_with('"') {
            inner.replace("\\\"", "\"").replace("\\\\", "\\")
        } else {
            inner.replace("''", "'")
        }
    } else {
        s.to_string()
    }
}

/// The typed error for a document that nests past [`MAX_DEPTH`].
fn too_deep(line: usize) -> ParseError {
    ParseError {
        line,
        message: format!("nesting deeper than {MAX_DEPTH} levels"),
    }
}

fn parse_scalar(text: &str, line: usize, depth: usize) -> Result<Value, ParseError> {
    let t = text.trim();
    if t.is_empty() {
        return Ok(Value::Null);
    }
    if depth >= MAX_DEPTH {
        return Err(too_deep(line));
    }
    // Empty flow containers (the emitter's spelling for empty collections).
    if t == "{}" {
        return Ok(Value::Map(Vec::new()));
    }
    // Flow sequence of scalars.
    if t.starts_with('[') {
        if !t.ends_with(']') {
            return Err(ParseError {
                line,
                message: "unterminated flow sequence".into(),
            });
        }
        let inner = &t[1..t.len() - 1];
        let mut items = Vec::new();
        if !inner.trim().is_empty() {
            for part in split_flow_items(inner) {
                items.push(parse_scalar(part.trim(), line, depth + 1)?);
            }
        }
        return Ok(Value::Seq(items));
    }
    // A quoted scalar. Matching on the first char (instead of indexing
    // into it) keeps this arm free of panic-reachable `expect`s.
    if let Some(quote @ ('"' | '\'')) = t.chars().next() {
        if t.len() < 2 || !t.ends_with(quote) {
            return Err(ParseError {
                line,
                message: "unterminated quoted string".into(),
            });
        }
        return Ok(Value::Str(unquote(t)));
    }
    Ok(match t {
        "null" | "~" => Value::Null,
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => {
            if let Ok(i) = t.parse::<i64>() {
                Value::Int(i)
            } else if let Ok(f) = t.parse::<f64>() {
                Value::Float(f)
            } else {
                Value::Str(t.to_string())
            }
        }
    })
}

/// Split flow-sequence items on commas outside quotes.
fn split_flow_items(inner: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_single = false;
    let mut in_double = false;
    for (i, c) in inner.char_indices() {
        match c {
            '"' if !in_single => in_double = !in_double,
            '\'' if !in_double => in_single = !in_single,
            ',' if !in_single && !in_double => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(&inner[start..]);
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("x: 42").unwrap().get("x"), Some(&Value::Int(42)));
        assert_eq!(parse("x: 2.5").unwrap().get("x"), Some(&Value::Float(2.5)));
        assert_eq!(parse("x: true").unwrap().get("x"), Some(&Value::Bool(true)));
        assert_eq!(parse("x: null").unwrap().get("x"), Some(&Value::Null));
        assert_eq!(parse("x: ~").unwrap().get("x"), Some(&Value::Null));
        assert_eq!(
            parse("x: hello world").unwrap().get("x"),
            Some(&Value::Str("hello world".into()))
        );
        assert_eq!(
            parse("x: \"42\"").unwrap().get("x"),
            Some(&Value::Str("42".into()))
        );
        assert_eq!(
            parse("x: 'it''s'").unwrap().get("x"),
            Some(&Value::Str("it's".into()))
        );
    }

    #[test]
    fn nested_mapping() {
        let doc = parse("engine:\n  pools:\n    http: 40\n    extract: 7\n  gpu: true\n").unwrap();
        let pools = doc.get("engine").unwrap().get("pools").unwrap();
        assert_eq!(pools.get("http").unwrap().as_int(), Some(40));
        assert_eq!(pools.get("extract").unwrap().as_int(), Some(7));
        assert_eq!(
            doc.get("engine").unwrap().get("gpu").unwrap().as_bool(),
            Some(true)
        );
    }

    #[test]
    fn block_sequence_of_scalars() {
        let doc = parse("workloads:\n  - 80\n  - 120\n  - 140\n").unwrap();
        let w = doc.get("workloads").unwrap().as_seq().unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w[1].as_int(), Some(120));
    }

    #[test]
    fn sequence_of_mappings() {
        let doc = parse(
            "services:\n- name: engine\n  cluster: chifflot\n  quantity: 1\n- name: clients\n  cluster: gros\n",
        )
        .unwrap();
        let services = doc.get("services").unwrap().as_seq().unwrap();
        assert_eq!(services.len(), 2);
        assert_eq!(
            services[0].get("cluster").unwrap().as_str(),
            Some("chifflot")
        );
        assert_eq!(services[0].get("quantity").unwrap().as_int(), Some(1));
        assert_eq!(services[1].get("name").unwrap().as_str(), Some("clients"));
    }

    #[test]
    fn sequence_item_with_nested_block() {
        let doc = parse("layers:\n- name: cloud\n  services:\n    - engine\n    - db\n").unwrap();
        let layer = &doc.get("layers").unwrap().as_seq().unwrap()[0];
        assert_eq!(layer.get("name").unwrap().as_str(), Some("cloud"));
        let svcs = layer.get("services").unwrap().as_seq().unwrap();
        assert_eq!(svcs.len(), 2);
        assert_eq!(svcs[1].as_str(), Some("db"));
    }

    #[test]
    fn flow_sequence() {
        let doc = parse("bounds: [20, 60]\nnames: [http, \"download, q\"]").unwrap();
        assert_eq!(
            doc.get("bounds").unwrap().as_seq().unwrap()[1].as_int(),
            Some(60)
        );
        let names = doc.get("names").unwrap().as_seq().unwrap();
        assert_eq!(names[1].as_str(), Some("download, q"));
    }

    #[test]
    fn comments_stripped() {
        let doc = parse("# experiment definition\nhttp: 40   # pool size\nurl: \"http://x#y\"\n")
            .unwrap();
        assert_eq!(doc.get("http").unwrap().as_int(), Some(40));
        assert_eq!(doc.get("url").unwrap().as_str(), Some("http://x#y"));
    }

    #[test]
    fn document_marker_and_empty() {
        assert_eq!(parse("").unwrap(), Value::Null);
        assert_eq!(parse("# only comments\n\n").unwrap(), Value::Null);
        let doc = parse("---\nkey: v\n").unwrap();
        assert_eq!(doc.get("key").unwrap().as_str(), Some("v"));
    }

    #[test]
    fn null_values_from_empty() {
        let doc = parse("a:\nb: 1\n").unwrap();
        assert!(doc.get("a").unwrap().is_null());
        assert_eq!(doc.get("b").unwrap().as_int(), Some(1));
    }

    #[test]
    fn duplicate_key_rejected() {
        let err = parse("a: 1\na: 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn tabs_rejected() {
        let err = parse("a:\n\tb: 1\n").unwrap_err();
        assert!(err.message.contains("tabs"));
    }

    #[test]
    fn bad_indent_rejected() {
        assert!(parse("a: 1\n   b: 2\n").is_err());
    }

    /// Minimized fuzz regression: a tab (or any non-space whitespace)
    /// *mixed into* the leading run used to slip past the tab check and
    /// count as indentation bytes, silently misparsing the document.
    #[test]
    fn tab_mixed_into_indentation_rejected() {
        let err = parse("a:\n \tb: 1\n").unwrap_err();
        assert!(err.message.contains("spaces"), "{}", err.message);
        assert_eq!(err.line, 2);
        // Unicode whitespace (NBSP here) is not indentation either.
        assert!(parse("a:\n\u{00A0}b: 1\n").is_err());
    }

    /// Minimized fuzz regression: `k: [[[[…` recursed once per bracket
    /// and overflowed the stack. Nesting past MAX_DEPTH is a ParseError.
    #[test]
    fn deep_flow_nesting_is_a_typed_error() {
        let doc = format!("k: {}{}", "[".repeat(2000), "]".repeat(2000));
        let err = parse(&doc).unwrap_err();
        assert!(err.message.contains("nesting"), "{}", err.message);
    }

    /// Minimized fuzz regression: one-level-deeper indentation per line
    /// recursed once per line; thousands of lines overflowed the stack.
    #[test]
    fn deep_block_nesting_is_a_typed_error() {
        let mut doc = String::new();
        for i in 0..2000 {
            doc.push_str(&" ".repeat(i));
            doc.push_str("a:\n");
        }
        let err = parse(&doc).unwrap_err();
        assert!(err.message.contains("nesting"), "{}", err.message);
    }

    /// The depth bound is far above anything a real configuration uses.
    #[test]
    fn realistic_nesting_depth_stays_accepted() {
        let mut doc = String::new();
        for i in 0..20 {
            doc.push_str(&" ".repeat(2 * i));
            doc.push_str(if i == 19 { "leaf: 1\n" } else { "a:\n" });
        }
        let parsed = parse(&doc).unwrap();
        let mut v = &parsed;
        for _ in 0..19 {
            v = v.get("a").unwrap();
        }
        assert_eq!(v.get("leaf").unwrap().as_int(), Some(1));
        // A few levels of comma-free flow nesting stay accepted (flow
        // items containing commas are "scalars only" by design).
        let flow = parse("k: [[[3]]]").unwrap();
        assert_eq!(
            flow.get("k")
                .unwrap()
                .idx(0)
                .unwrap()
                .idx(0)
                .unwrap()
                .idx(0),
            Some(&Value::Int(3))
        );
    }

    /// A document that is a single scalar (what `to_yaml` writes for a
    /// scalar root) must read back — found by the fuzz harness: `parse`
    /// of the empty document yields `Null`, whose serialized form `null`
    /// then failed to parse.
    #[test]
    fn scalar_root_documents_parse() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("hello").unwrap(), Value::Str("hello".into()));
        assert_eq!(
            parse("[1, 2]").unwrap(),
            Value::Seq(vec![Value::Int(1), Value::Int(2)])
        );
        // A scalar block value under a key reads back too.
        let v = parse("k:\n  just a string\n").unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("just a string"));
        // Multi-line keyless content is still an error, not a scalar.
        assert!(parse("foo\nbar: 1\n").is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        let err = parse("a: \"oops\n").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn roundtrip_through_to_yaml() {
        let src = "name: plantnet\npools:\n  http: 40\n  extract: 7\nworkloads:\n  - 80\n  - 120\nservices:\n  - name: engine\n    gpu: true\n";
        let doc = parse(src).unwrap();
        let emitted = doc.to_yaml();
        let reparsed = parse(&emitted).unwrap();
        assert_eq!(doc, reparsed, "emitted:\n{emitted}");
    }

    #[test]
    fn listing1_style_config_parses() {
        // The optimizer_conf analog of the paper's Listing 1.
        let src = r#"
optimization:
  metric: user_resp_time
  mode: min
  name: plantnet_engine
  num_samples: 10
  max_concurrent: 2
  search:
    algo: extra_trees
    n_initial_points: 45
    initial_point_generator: lhs
    acq_func: gp_hedge
  config:
    - name: http
      type: randint
      bounds: [20, 60]
    - name: download
      type: randint
      bounds: [20, 60]
    - name: simsearch
      type: randint
      bounds: [20, 60]
    - name: extract
      type: randint
      bounds: [3, 9]
"#;
        let doc = parse(src).unwrap();
        let opt = doc.get("optimization").unwrap();
        assert_eq!(opt.get("metric").unwrap().as_str(), Some("user_resp_time"));
        assert_eq!(
            opt.get("search").unwrap().get("acq_func").unwrap().as_str(),
            Some("gp_hedge")
        );
        let config = opt.get("config").unwrap().as_seq().unwrap();
        assert_eq!(config.len(), 4);
        assert_eq!(
            config[3].get("bounds").unwrap().as_seq().unwrap()[1].as_int(),
            Some(9)
        );
    }
}
