//! # e2c-workload — workload generators
//!
//! The paper drives the Pl@ntNet engine with *closed-loop* workloads of
//! 80/120/140 simultaneous requests, motivates the work with the seasonal
//! growth of the user base (Fig. 2), and downloads user images whose size
//! varies around a preprocessed target. This crate generates all three:
//!
//! * [`ClosedLoop`] — N clients, each holding exactly one outstanding
//!   request (the paper's "simultaneous requests");
//! * [`OpenLoop`] — Poisson arrivals, for open-system experiments;
//! * [`trace`] — piecewise-rate open-loop replay of the seasonal trace
//!   (deterministic thinning), the serving mode's arrival source;
//! * [`seasonal`] — a synthetic new-users-per-month trace with exponential
//!   year-over-year growth and May–June peaks (Fig. 2's shape);
//! * [`ImageMix`] — the size distribution of uploaded plant images;
//! * [`Diurnal`] — day/night load modulation to compose with the
//!   seasonal envelope.

pub mod arrivals;
pub mod diurnal;
pub mod images;
pub mod seasonal;
pub mod trace;

pub use arrivals::{ClosedLoop, OpenLoop, RateError};
pub use diurnal::Diurnal;
pub use images::ImageMix;
pub use trace::{serving_schedule, RateEpoch, RateSchedule};
