//! Synthetic Pl@ntNet user-growth trace (the shape of the paper's Fig. 2).
//!
//! The figure shows new users per month from 2017 to 2021 with exponential
//! year-over-year growth and sharp peaks every May–June (the Northern
//! spring, when people photograph plants). We generate a deterministic
//! trace with exactly those two components; the harness bin prints it as
//! the Fig. 2 series.

/// One month of the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonthSample {
    /// Calendar year.
    pub year: u32,
    /// Month 1–12.
    pub month: u32,
    /// Synthetic new-user count.
    pub new_users: f64,
}

/// Parameters of the synthetic growth model.
#[derive(Debug, Clone, Copy)]
pub struct GrowthModel {
    /// New users in January of the first year.
    pub base: f64,
    /// Year-over-year multiplicative growth.
    pub yearly_growth: f64,
    /// Peak amplification at the May–June maximum (e.g. 3.0 = 3× base).
    pub spring_peak: f64,
}

impl Default for GrowthModel {
    fn default() -> Self {
        // Calibrated to the figure's reading: ~100K new users in spring
        // 2017 rising to ~500K by spring 2021.
        GrowthModel {
            base: 40_000.0,
            yearly_growth: 1.5,
            spring_peak: 3.0,
        }
    }
}

impl GrowthModel {
    /// Seasonal multiplier for a month (1.0 off-season, `spring_peak` at
    /// the May–June center). A raised-cosine bump spanning April–July.
    pub fn seasonal_factor(&self, month: u32) -> f64 {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        // Bump centered between May (5) and June (6), half-width 1.5 months.
        let center = 5.5;
        let half_width = 1.5;
        let d = (month as f64 - center).abs();
        if d >= half_width {
            1.0
        } else {
            let bump = 0.5 * (1.0 + (std::f64::consts::PI * d / half_width).cos());
            1.0 + (self.spring_peak - 1.0) * bump
        }
    }

    /// New users in a given month.
    pub fn new_users(&self, first_year: u32, year: u32, month: u32) -> f64 {
        assert!(year >= first_year, "year precedes trace start");
        let years = (year - first_year) as f64 + (month as f64 - 1.0) / 12.0;
        self.base * self.yearly_growth.powf(years) * self.seasonal_factor(month)
    }

    /// The full monthly trace over `[first_year, last_year]`.
    pub fn trace(&self, first_year: u32, last_year: u32) -> Vec<MonthSample> {
        assert!(last_year >= first_year);
        let mut out = Vec::new();
        for year in first_year..=last_year {
            for month in 1..=12 {
                out.push(MonthSample {
                    year,
                    month,
                    new_users: self.new_users(first_year, year, month),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_fall_in_may_june() {
        let m = GrowthModel::default();
        let trace = m.trace(2020, 2020);
        let peak = trace
            .iter()
            .max_by(|a, b| a.new_users.partial_cmp(&b.new_users).unwrap())
            .unwrap();
        assert!(peak.month == 5 || peak.month == 6, "peak at {}", peak.month);
    }

    #[test]
    fn growth_is_exponential_across_years() {
        let m = GrowthModel::default();
        let y0 = m.new_users(2017, 2017, 1);
        let y1 = m.new_users(2017, 2018, 1);
        let y2 = m.new_users(2017, 2019, 1);
        assert!((y1 / y0 - 1.5).abs() < 1e-9);
        assert!((y2 / y1 - 1.5).abs() < 1e-9);
    }

    #[test]
    fn off_season_has_no_bump() {
        let m = GrowthModel::default();
        assert_eq!(m.seasonal_factor(1), 1.0);
        assert_eq!(m.seasonal_factor(11), 1.0);
        assert!(m.seasonal_factor(5) > 2.0);
        assert!(m.seasonal_factor(6) > 2.0);
    }

    #[test]
    fn trace_covers_every_month() {
        let trace = GrowthModel::default().trace(2017, 2021);
        assert_eq!(trace.len(), 60);
        assert_eq!(trace[0].year, 2017);
        assert_eq!(trace[0].month, 1);
        assert_eq!(trace[59].year, 2021);
        assert_eq!(trace[59].month, 12);
    }

    #[test]
    fn each_spring_peak_exceeds_previous() {
        let trace = GrowthModel::default().trace(2017, 2021);
        let peaks: Vec<f64> = (0..5)
            .map(|y| {
                trace
                    .iter()
                    .filter(|s| s.year == 2017 + y)
                    .map(|s| s.new_users)
                    .fold(0.0, f64::max)
            })
            .collect();
        for pair in peaks.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }

    #[test]
    #[should_panic(expected = "month out of range")]
    fn bad_month_panics() {
        GrowthModel::default().seasonal_factor(13);
    }
}
