//! Diurnal (time-of-day) load modulation.
//!
//! Pl@ntNet's traffic follows its users' daylight: people photograph
//! plants during the day. Composing the Fig. 2 seasonal envelope with a
//! day/night cycle yields the request-rate trace an operator actually
//! provisions against; the capacity extensions use it to place the
//! "spring peak day" the paper's introduction worries about.

/// A smooth day/night modulation of a base rate.
#[derive(Debug, Clone, Copy)]
pub struct Diurnal {
    /// Rate multiplier at the daily peak.
    pub peak: f64,
    /// Rate multiplier in the middle of the night.
    pub trough: f64,
    /// Hour of the daily maximum (0–24).
    pub peak_hour: f64,
}

impl Default for Diurnal {
    /// Peak at 14:00 at 1.6×, nights at 0.15× — a photo-app shape.
    fn default() -> Self {
        Diurnal {
            peak: 1.6,
            trough: 0.15,
            peak_hour: 14.0,
        }
    }
}

impl Diurnal {
    /// Multiplier at an hour of day (fractional hours accepted; wraps).
    pub fn factor(&self, hour: f64) -> f64 {
        let phase = (hour - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        let wave = 0.5 * (1.0 + phase.cos()); // 1 at peak hour, 0 opposite
        self.trough + (self.peak - self.trough) * wave
    }

    /// Request rate over a day given a daily mean rate, sampled hourly.
    pub fn hourly_rates(&self, daily_mean: f64) -> Vec<f64> {
        // Normalize so the mean of the 24 samples equals `daily_mean`.
        let raw: Vec<f64> = (0..24).map(|h| self.factor(h as f64)).collect();
        let mean: f64 = raw.iter().sum::<f64>() / 24.0;
        raw.into_iter().map(|f| daily_mean * f / mean).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_and_trough_land_where_configured() {
        let d = Diurnal::default();
        assert!((d.factor(14.0) - 1.6).abs() < 1e-9);
        assert!((d.factor(2.0) - 0.15).abs() < 1e-9); // 12h opposite
                                                      // Monotone rise through the morning.
        assert!(d.factor(8.0) < d.factor(11.0));
        assert!(d.factor(11.0) < d.factor(14.0));
    }

    #[test]
    fn wraps_around_midnight() {
        let d = Diurnal::default();
        assert!((d.factor(25.0) - d.factor(1.0)).abs() < 1e-9);
        assert!((d.factor(-1.0) - d.factor(23.0)).abs() < 1e-9);
    }

    #[test]
    fn hourly_rates_preserve_the_daily_mean() {
        let d = Diurnal::default();
        let rates = d.hourly_rates(100.0);
        assert_eq!(rates.len(), 24);
        let mean: f64 = rates.iter().sum::<f64>() / 24.0;
        assert!((mean - 100.0).abs() < 1e-9);
        // Daytime above the mean, night below.
        assert!(rates[14] > 120.0);
        assert!(rates[2] < 40.0);
    }
}
