//! Closed-loop and open-loop request generation.

use e2c_des::{Dist, SimTime};
use rand::Rng;

/// A closed-loop workload: `clients` users, each submitting its next
/// request `think` seconds after receiving the previous response.
///
/// With `think = Dist::Constant(0.0)` this is exactly the paper's "N
/// simultaneous requests ... during the whole experiment execution": the
/// number of outstanding requests is pinned at `clients`.
#[derive(Debug, Clone, Copy)]
pub struct ClosedLoop {
    /// Number of concurrent clients.
    pub clients: usize,
    /// Think time between response and next request.
    pub think: Dist,
}

impl ClosedLoop {
    /// `clients` users with zero think time (saturating closed loop).
    pub fn saturating(clients: usize) -> Self {
        ClosedLoop {
            clients,
            think: Dist::Constant(0.0),
        }
    }

    /// Same workload with a think-time distribution.
    pub fn with_think(mut self, think: Dist) -> Self {
        self.think = think;
        self
    }

    /// Sample the delay before a client's next request.
    pub fn next_think<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        SimTime::from_secs_f64(self.think.sample(rng))
    }

    /// Initial request times: clients do not stampede in the same
    /// microsecond but ramp up over `ramp` (deterministic spacing keeps
    /// runs comparable across configurations).
    pub fn initial_arrivals(&self, ramp: SimTime) -> Vec<SimTime> {
        let n = self.clients.max(1) as u64;
        (0..self.clients as u64)
            .map(|i| SimTime(ramp.0 * i / n))
            .collect()
    }
}

/// An open-loop (Poisson) workload with a fixed arrival rate.
pub struct OpenLoop {
    /// Mean arrivals per second.
    pub rate: f64,
}

impl OpenLoop {
    /// A Poisson source with `rate` arrivals per second.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        OpenLoop { rate }
    }

    /// Sample the gap to the next arrival.
    pub fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        let d = Dist::Exp {
            mean: 1.0 / self.rate,
        };
        SimTime::from_secs_f64(d.sample(rng))
    }

    /// Generate all arrival instants up to `horizon`.
    pub fn arrivals_until<R: Rng + ?Sized>(&self, horizon: SimTime, rng: &mut R) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            t += self.next_gap(rng);
            if t > horizon {
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn saturating_closed_loop_has_zero_think() {
        let w = ClosedLoop::saturating(80);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(w.clients, 80);
        assert_eq!(w.next_think(&mut rng), SimTime::ZERO);
    }

    #[test]
    fn initial_arrivals_ramp_monotonically() {
        let w = ClosedLoop::saturating(10);
        let arr = w.initial_arrivals(SimTime::from_secs(1));
        assert_eq!(arr.len(), 10);
        assert_eq!(arr[0], SimTime::ZERO);
        for pair in arr.windows(2) {
            assert!(pair[1] > pair[0]);
        }
        assert!(*arr.last().unwrap() < SimTime::from_secs(1));
    }

    #[test]
    fn think_time_distribution_respected() {
        let w = ClosedLoop::saturating(5).with_think(Dist::Constant(2.0));
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(w.next_think(&mut rng), SimTime::from_secs(2));
    }

    #[test]
    fn poisson_rate_approximately_holds() {
        let src = OpenLoop::new(50.0);
        let mut rng = StdRng::seed_from_u64(42);
        let arrivals = src.arrivals_until(SimTime::from_secs(100), &mut rng);
        let rate = arrivals.len() as f64 / 100.0;
        assert!((rate - 50.0).abs() < 3.0, "rate {rate}");
        // Arrivals sorted by construction.
        for pair in arrivals.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn open_loop_rejects_zero_rate() {
        OpenLoop::new(0.0);
    }
}
