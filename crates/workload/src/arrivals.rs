//! Closed-loop and open-loop request generation.

use e2c_des::{Dist, SimTime};
use rand::Rng;
use std::fmt;

/// A workload rate that cannot describe an arrival process.
///
/// Zero is *not* an error: a trace epoch with zero demand (e.g. a dark
/// deployment month) is a valid open-loop source that simply generates
/// no arrivals. Only negative and non-finite rates are rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateError {
    /// The rate was negative.
    Negative(f64),
    /// The rate was NaN or infinite.
    NonFinite(f64),
}

impl fmt::Display for RateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RateError::Negative(r) => write!(f, "arrival rate must be >= 0, got {r}"),
            RateError::NonFinite(r) => write!(f, "arrival rate must be finite, got {r}"),
        }
    }
}

impl std::error::Error for RateError {}

/// A closed-loop workload: `clients` users, each submitting its next
/// request `think` seconds after receiving the previous response.
///
/// With `think = Dist::Constant(0.0)` this is exactly the paper's "N
/// simultaneous requests ... during the whole experiment execution": the
/// number of outstanding requests is pinned at `clients`.
#[derive(Debug, Clone, Copy)]
pub struct ClosedLoop {
    /// Number of concurrent clients.
    pub clients: usize,
    /// Think time between response and next request.
    pub think: Dist,
}

impl ClosedLoop {
    /// `clients` users with zero think time (saturating closed loop).
    pub fn saturating(clients: usize) -> Self {
        ClosedLoop {
            clients,
            think: Dist::Constant(0.0),
        }
    }

    /// Same workload with a think-time distribution.
    pub fn with_think(mut self, think: Dist) -> Self {
        self.think = think;
        self
    }

    /// Sample the delay before a client's next request.
    pub fn next_think<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        SimTime::from_secs_f64(self.think.sample(rng))
    }

    /// Initial request times: clients do not stampede in the same
    /// microsecond but ramp up over `ramp` (deterministic spacing keeps
    /// runs comparable across configurations).
    pub fn initial_arrivals(&self, ramp: SimTime) -> Vec<SimTime> {
        let n = self.clients.max(1) as u64;
        (0..self.clients as u64)
            .map(|i| SimTime(ramp.0 * i / n))
            .collect()
    }
}

/// An open-loop (Poisson) workload with a fixed arrival rate.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoop {
    /// Mean arrivals per second.
    pub rate: f64,
}

impl OpenLoop {
    /// A Poisson source with `rate` arrivals per second. Zero is allowed
    /// (a source that never fires); negative or non-finite rates are a
    /// typed error so trace-driven callers can surface them.
    pub fn new(rate: f64) -> Result<Self, RateError> {
        if !rate.is_finite() {
            return Err(RateError::NonFinite(rate));
        }
        if rate < 0.0 {
            return Err(RateError::Negative(rate));
        }
        Ok(OpenLoop { rate })
    }

    /// Sample the gap to the next arrival. A zero-rate source never
    /// fires; the gap saturates past any horizon.
    pub fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        if self.rate == 0.0 {
            return SimTime(u64::MAX);
        }
        let d = Dist::Exp {
            mean: 1.0 / self.rate,
        };
        SimTime::from_secs_f64(d.sample(rng))
    }

    /// Generate all arrival instants up to `horizon`.
    pub fn arrivals_until<R: Rng + ?Sized>(&self, horizon: SimTime, rng: &mut R) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            let gap = self.next_gap(rng);
            t = SimTime(t.0.saturating_add(gap.0));
            if t > horizon {
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn saturating_closed_loop_has_zero_think() {
        let w = ClosedLoop::saturating(80);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(w.clients, 80);
        assert_eq!(w.next_think(&mut rng), SimTime::ZERO);
    }

    #[test]
    fn initial_arrivals_ramp_monotonically() {
        let w = ClosedLoop::saturating(10);
        let arr = w.initial_arrivals(SimTime::from_secs(1));
        assert_eq!(arr.len(), 10);
        assert_eq!(arr[0], SimTime::ZERO);
        for pair in arr.windows(2) {
            assert!(pair[1] > pair[0]);
        }
        assert!(*arr.last().unwrap() < SimTime::from_secs(1));
    }

    #[test]
    fn think_time_distribution_respected() {
        let w = ClosedLoop::saturating(5).with_think(Dist::Constant(2.0));
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(w.next_think(&mut rng), SimTime::from_secs(2));
    }

    #[test]
    fn poisson_rate_approximately_holds() {
        let src = OpenLoop::new(50.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let arrivals = src.arrivals_until(SimTime::from_secs(100), &mut rng);
        let rate = arrivals.len() as f64 / 100.0;
        assert!((rate - 50.0).abs() < 3.0, "rate {rate}");
        // Arrivals sorted by construction.
        for pair in arrivals.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
    }

    #[test]
    fn open_loop_accepts_zero_rate_and_generates_nothing() {
        // Regression: a zero-demand trace epoch must be representable
        // (this used to panic with "rate must be positive").
        let src = OpenLoop::new(0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        assert!(src
            .arrivals_until(SimTime::from_secs(1000), &mut rng)
            .is_empty());
    }

    #[test]
    fn open_loop_rejects_bad_rates_with_typed_errors() {
        assert_eq!(OpenLoop::new(-1.0).unwrap_err(), RateError::Negative(-1.0));
        assert!(matches!(
            OpenLoop::new(f64::NAN).unwrap_err(),
            RateError::NonFinite(_)
        ));
        assert!(matches!(
            OpenLoop::new(f64::INFINITY).unwrap_err(),
            RateError::NonFinite(f64::INFINITY)
        ));
        // The error renders a useful message for conf-layer surfacing.
        let msg = RateError::Negative(-1.0).to_string();
        assert!(msg.contains(">= 0"), "{msg}");
    }
}
