//! Uploaded-image size model.
//!
//! Pl@ntNet's mobile app preprocesses photos before upload to reduce their
//! size (paper §II-A); the engine then downloads each query image. We model
//! the post-preprocessing size as a log-normal around a configurable
//! target — heavy-ish right tail, never negative, matching observed photo
//! upload mixes.

use e2c_des::Dist;
use rand::Rng;

/// Distribution of uploaded image sizes in bytes.
#[derive(Debug, Clone, Copy)]
pub struct ImageMix {
    dist: Dist,
}

impl Default for ImageMix {
    /// ~120 KB mean with coefficient of variation 0.4 — a phone photo
    /// after client-side resizing.
    fn default() -> Self {
        ImageMix::new(120_000.0, 0.4)
    }
}

impl ImageMix {
    /// Log-normal image sizes with the given mean (bytes) and coefficient
    /// of variation.
    pub fn new(mean_bytes: f64, cv: f64) -> Self {
        assert!(mean_bytes > 0.0, "mean must be positive");
        ImageMix {
            dist: Dist::LogNormal {
                mean: mean_bytes,
                cv,
            },
        }
    }

    /// Sample one image size in bytes (at least 1 KB — the app never sends
    /// empty uploads).
    pub fn sample_bytes<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.dist.sample(rng).max(1024.0) as u64
    }

    /// Mean image size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        self.dist.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_tracks_parameter() {
        let mix = ImageMix::new(200_000.0, 0.3);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| mix.sample_bytes(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 200_000.0).abs() / 200_000.0 < 0.02, "mean {mean}");
    }

    #[test]
    fn sizes_have_floor() {
        let mix = ImageMix::new(2_000.0, 2.0); // wide spread
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(mix.sample_bytes(&mut rng) >= 1024);
        }
    }

    #[test]
    fn default_is_about_120kb() {
        assert!((ImageMix::default().mean_bytes() - 120_000.0).abs() < 1e-9);
    }
}
