//! Trace-driven open-loop arrivals: a piecewise-constant rate schedule
//! replayed as a non-homogeneous Poisson process by deterministic
//! thinning over the [`OpenLoop`] machinery.
//!
//! The serving mode builds its schedule from the Fig. 2 seasonal curve
//! ([`crate::seasonal::GrowthModel`]) scaled to a target users/day, one
//! epoch per trace month compressed to a configurable simulated
//! duration. Given a seed the arrival instants are a pure function of
//! the schedule — the property every serving determinism gate leans on.

use crate::arrivals::{OpenLoop, RateError};
use crate::seasonal::GrowthModel;
use e2c_des::SimTime;
use rand::Rng;

/// One piecewise-constant segment of the rate schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct RateEpoch {
    /// Human-readable label (e.g. `2017-05` for a trace month).
    pub label: String,
    /// Mean arrival rate over the epoch, in requests per second.
    pub rate: f64,
    /// Epoch length in simulated time.
    pub duration: SimTime,
}

/// A piecewise-constant arrival-rate schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct RateSchedule {
    epochs: Vec<RateEpoch>,
}

impl RateSchedule {
    /// Build a schedule, validating every epoch rate. Zero-rate epochs
    /// are allowed (zero demand is representable); negative or
    /// non-finite rates and zero-length epochs are rejected.
    pub fn new(epochs: Vec<RateEpoch>) -> Result<RateSchedule, RateError> {
        for e in &epochs {
            // Reuse the OpenLoop constructor as the single source of
            // truth for what a valid rate is.
            OpenLoop::new(e.rate)?;
            if e.duration == SimTime::ZERO {
                return Err(RateError::NonFinite(e.rate));
            }
        }
        Ok(RateSchedule { epochs })
    }

    /// A single-epoch schedule (constant rate for `duration`).
    pub fn constant(rate: f64, duration: SimTime) -> Result<RateSchedule, RateError> {
        RateSchedule::new(vec![RateEpoch {
            label: "const".to_string(),
            rate,
            duration,
        }])
    }

    /// The epochs in schedule order.
    pub fn epochs(&self) -> &[RateEpoch] {
        &self.epochs
    }

    /// Total schedule length.
    pub fn horizon(&self) -> SimTime {
        SimTime(self.epochs.iter().map(|e| e.duration.0).sum())
    }

    /// The maximum epoch rate (the thinning envelope).
    pub fn peak_rate(&self) -> f64 {
        self.epochs.iter().map(|e| e.rate).fold(0.0, f64::max)
    }

    /// The rate in force at simulated time `t` (0 past the horizon).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let mut start = SimTime::ZERO;
        for e in &self.epochs {
            let end = SimTime(start.0 + e.duration.0);
            if t < end {
                return e.rate;
            }
            start = end;
        }
        0.0
    }

    /// Index of the epoch containing `t`, if within the horizon.
    pub fn epoch_index_at(&self, t: SimTime) -> Option<usize> {
        let mut start = SimTime::ZERO;
        for (i, e) in self.epochs.iter().enumerate() {
            let end = SimTime(start.0 + e.duration.0);
            if t < end {
                return Some(i);
            }
            start = end;
        }
        None
    }

    /// Expected arrival count in epoch `i` (closed form: rate × length).
    pub fn expected_arrivals(&self, i: usize) -> f64 {
        let e = &self.epochs[i];
        e.rate * e.duration.as_secs_f64()
    }

    /// Generate the full arrival stream by thinning: candidates come
    /// from a homogeneous [`OpenLoop`] at the peak rate, and each is
    /// accepted with probability `rate(t) / peak` drawn from the same
    /// seeded RNG. Deterministic per (schedule, RNG-state); nested
    /// across proportionally scaled schedules thinned from a shared
    /// envelope (see [`RateSchedule::arrivals_under_envelope`]).
    pub fn arrivals<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<SimTime> {
        self.arrivals_under_envelope(self.peak_rate(), rng)
    }

    /// Thinning with an explicit envelope rate `>= peak_rate()`. Two
    /// schedules that differ only by a factor `<= 1` in every epoch,
    /// thinned from the *same* envelope and seed, produce nested
    /// arrival sets — the coupling the overload monotonicity tests use.
    pub fn arrivals_under_envelope<R: Rng + ?Sized>(
        &self,
        envelope: f64,
        rng: &mut R,
    ) -> Vec<SimTime> {
        let peak = self.peak_rate();
        assert!(
            envelope >= peak,
            "envelope {envelope} below schedule peak {peak}"
        );
        if envelope == 0.0 {
            return Vec::new();
        }
        let candidates = match OpenLoop::new(envelope) {
            Ok(src) => src.arrivals_until(self.horizon(), rng),
            // Unreachable: envelope >= peak >= 0 and finite by
            // construction of a validated schedule.
            Err(_) => return Vec::new(),
        };
        let mut out = Vec::new();
        for t in candidates {
            let accept = self.rate_at(t) / envelope;
            // One uniform draw per candidate keeps the stream aligned
            // across schedules sharing the envelope.
            let u: f64 = rng.gen();
            if u < accept {
                out.push(t);
            }
        }
        out
    }
}

/// Build the serving-mode schedule from the Fig. 2 growth model.
///
/// Takes `epochs` consecutive trace months starting January of
/// `first_year`, compresses each month to `epoch_duration` of simulated
/// time, and scales rates so the *mean* epoch serves `users_per_day`
/// requests per day (1 request per user visit). Month-to-month shape —
/// exponential growth plus the May–June bump — is preserved, so peak
/// epochs run at roughly `spring_peak ×` the yearly mean.
pub fn serving_schedule(
    model: &GrowthModel,
    first_year: u32,
    epochs: usize,
    epoch_duration: SimTime,
    users_per_day: f64,
) -> Result<RateSchedule, RateError> {
    if !users_per_day.is_finite() {
        return Err(RateError::NonFinite(users_per_day));
    }
    if users_per_day < 0.0 {
        return Err(RateError::Negative(users_per_day));
    }
    let last_year = first_year + (epochs.max(1) as u32 - 1) / 12;
    let months = model.trace(first_year, last_year);
    let selected = &months[..epochs];
    let mean_w = selected.iter().map(|m| m.new_users).sum::<f64>() / epochs.max(1) as f64;
    let mean_rate = users_per_day / 86_400.0;
    let out = selected
        .iter()
        .map(|m| RateEpoch {
            label: format!("{:04}-{:02}", m.year, m.month),
            rate: mean_rate * m.new_users / mean_w,
            duration: epoch_duration,
        })
        .collect();
    RateSchedule::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sched(rates: &[f64], secs: u64) -> RateSchedule {
        RateSchedule::new(
            rates
                .iter()
                .enumerate()
                .map(|(i, &rate)| RateEpoch {
                    label: format!("e{i}"),
                    rate,
                    duration: SimTime::from_secs(secs),
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn schedule_geometry() {
        let s = sched(&[10.0, 50.0, 5.0], 100);
        assert_eq!(s.horizon(), SimTime::from_secs(300));
        assert_eq!(s.peak_rate(), 50.0);
        assert_eq!(s.rate_at(SimTime::from_secs(0)), 10.0);
        assert_eq!(s.rate_at(SimTime::from_secs(150)), 50.0);
        assert_eq!(s.rate_at(SimTime::from_secs(299)), 5.0);
        assert_eq!(s.rate_at(SimTime::from_secs(300)), 0.0);
        assert_eq!(s.epoch_index_at(SimTime::from_secs(150)), Some(1));
        assert_eq!(s.epoch_index_at(SimTime::from_secs(300)), None);
        assert_eq!(s.expected_arrivals(1), 5000.0);
    }

    #[test]
    fn schedule_rejects_bad_rates_and_zero_epochs() {
        assert!(RateSchedule::constant(-1.0, SimTime::from_secs(1)).is_err());
        assert!(RateSchedule::constant(f64::NAN, SimTime::from_secs(1)).is_err());
        assert!(RateSchedule::constant(1.0, SimTime::ZERO).is_err());
        // Zero demand is representable.
        let s = RateSchedule::constant(0.0, SimTime::from_secs(60)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(s.arrivals(&mut rng).is_empty());
    }

    /// Per-epoch counts for fixed seeds sit within deterministic bounds
    /// of the closed-form expectation λT (±5 σ, σ = sqrt(λT)).
    #[test]
    fn thinning_matches_closed_form_per_epoch_counts() {
        let s = sched(&[10.0, 50.0, 5.0], 100);
        for seed in [1u64, 7, 42] {
            let mut rng = StdRng::seed_from_u64(seed);
            let arrivals = s.arrivals(&mut rng);
            let mut counts = [0u64; 3];
            for t in &arrivals {
                counts[s.epoch_index_at(*t).unwrap()] += 1;
            }
            for (i, &count) in counts.iter().enumerate() {
                let lambda_t = s.expected_arrivals(i);
                let sigma = lambda_t.sqrt();
                let delta = (count as f64 - lambda_t).abs();
                assert!(
                    delta <= 5.0 * sigma,
                    "seed {seed} epoch {i}: count {count} vs λT {lambda_t}"
                );
            }
        }
    }

    #[test]
    fn thinning_is_deterministic_per_seed() {
        let s = sched(&[20.0, 80.0], 60);
        let a: Vec<SimTime> = s.arrivals(&mut StdRng::seed_from_u64(9));
        let b: Vec<SimTime> = s.arrivals(&mut StdRng::seed_from_u64(9));
        let c: Vec<SimTime> = s.arrivals(&mut StdRng::seed_from_u64(10));
        assert_eq!(a, b);
        assert_ne!(a, c);
        for pair in a.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
    }

    /// Scaling every epoch down and thinning from the shared envelope
    /// yields a subset of the arrivals — the coupling behind the SLO
    /// monotonicity property.
    #[test]
    fn shared_envelope_thinning_nests_scaled_schedules() {
        let hi = sched(&[40.0, 80.0], 120);
        let lo = sched(&[10.0, 20.0], 120);
        let env = hi.peak_rate();
        let a_hi = hi.arrivals_under_envelope(env, &mut StdRng::seed_from_u64(3));
        let a_lo = lo.arrivals_under_envelope(env, &mut StdRng::seed_from_u64(3));
        assert!(a_lo.len() < a_hi.len());
        let hi_set: std::collections::BTreeSet<_> = a_hi.iter().collect();
        assert!(a_lo.iter().all(|t| hi_set.contains(t)), "not nested");
    }

    #[test]
    fn serving_schedule_scales_to_users_per_day() {
        let m = GrowthModel::default();
        let s = serving_schedule(&m, 2017, 12, SimTime::from_secs(600), 2_500_000.0).unwrap();
        assert_eq!(s.epochs().len(), 12);
        assert_eq!(s.epochs()[0].label, "2017-01");
        assert_eq!(s.epochs()[4].label, "2017-05");
        // Mean epoch rate equals the nominal users/day converted to /s.
        let mean = s.epochs().iter().map(|e| e.rate).sum::<f64>() / 12.0;
        let nominal = 2_500_000.0 / 86_400.0;
        assert!((mean - nominal).abs() < 1e-9 * nominal, "mean {mean}");
        // Spring peak well above the mean, and the envelope saturates a
        // paper-scale engine (≳ 50 req/s).
        assert!(s.peak_rate() > 1.5 * mean);
        assert!(s.peak_rate() > 50.0);
    }

    #[test]
    fn serving_schedule_rejects_bad_scale() {
        let m = GrowthModel::default();
        let d = SimTime::from_secs(60);
        assert!(serving_schedule(&m, 2017, 3, d, -5.0).is_err());
        assert!(serving_schedule(&m, 2017, 3, d, f64::NAN).is_err());
        // Zero scale is a valid (dark) schedule.
        let s = serving_schedule(&m, 2017, 3, d, 0.0).unwrap();
        assert_eq!(s.peak_rate(), 0.0);
    }
}
