//! Integration-level reproducibility for the workload generators: two
//! instantiations driven by equally seeded RNGs must emit identical
//! streams (the property the optimization cycle's replay story depends
//! on), different seeds must actually diversify the stochastic
//! generators, and the deterministic envelopes (seasonal, diurnal) must
//! be seed-free by construction.

use e2c_des::{Dist, SimTime};
use e2c_workload::seasonal::GrowthModel;
use e2c_workload::{ClosedLoop, Diurnal, ImageMix, OpenLoop};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Drive every stochastic generator once and collect its stream.
fn streams(seed: u64) -> (Vec<SimTime>, Vec<SimTime>, Vec<SimTime>, Vec<u64>) {
    let closed = ClosedLoop::saturating(80).with_think(Dist::Exp { mean: 1.5 });
    let mut rng = StdRng::seed_from_u64(seed);
    let thinks: Vec<SimTime> = (0..200).map(|_| closed.next_think(&mut rng)).collect();
    let ramp = closed.initial_arrivals(SimTime::from_secs(10));

    let open = OpenLoop::new(40.0).expect("positive rate");
    let mut rng = StdRng::seed_from_u64(seed);
    let arrivals = open.arrivals_until(SimTime::from_secs(30), &mut rng);

    let mix = ImageMix::new(180_000.0, 0.6);
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes: Vec<u64> = (0..200).map(|_| mix.sample_bytes(&mut rng)).collect();

    (thinks, ramp, arrivals, sizes)
}

#[test]
fn equal_seeds_reproduce_every_stream_exactly() {
    let a = streams(42);
    let b = streams(42);
    assert_eq!(a.0, b.0, "closed-loop think times diverge");
    assert_eq!(a.1, b.1, "closed-loop ramp arrivals diverge");
    assert_eq!(a.2, b.2, "open-loop arrivals diverge");
    assert_eq!(a.3, b.3, "image sizes diverge");
}

#[test]
fn different_seeds_actually_diversify_the_stochastic_streams() {
    let a = streams(42);
    let b = streams(43);
    assert_ne!(a.0, b.0, "think times ignore the seed");
    assert_ne!(a.2, b.2, "open-loop arrivals ignore the seed");
    assert_ne!(a.3, b.3, "image sizes ignore the seed");
    // The ramp is a deterministic fan-out, not a sampled stream: it must
    // be identical whatever the seed.
    assert_eq!(a.1, b.1, "ramp arrivals are seed-free by design");
}

#[test]
fn envelopes_are_deterministic_across_instantiations() {
    // Seasonal trace (Fig. 2's shape) and diurnal modulation take no RNG
    // at all; independent instantiations agree bit-for-bit.
    let t1 = GrowthModel::default().trace(2017, 2021);
    let t2 = GrowthModel::default().trace(2017, 2021);
    assert_eq!(t1.len(), 60);
    for (a, b) in t1.iter().zip(&t2) {
        assert_eq!((a.year, a.month), (b.year, b.month));
        assert_eq!(a.new_users.to_bits(), b.new_users.to_bits());
    }

    let d1 = Diurnal::default().hourly_rates(1000.0);
    let d2 = Diurnal::default().hourly_rates(1000.0);
    assert_eq!(d1.len(), 24);
    for (a, b) in d1.iter().zip(&d2) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
