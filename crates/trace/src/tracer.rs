//! The [`Tracer`] — a cheap-to-clone handle onto an append-only event log.
//!
//! Determinism contract: a tracer never reads the wall clock.  Virtual time
//! comes from a per-tracer [`VirtualClock`] that ticks once per recorded
//! event (plus explicit [`Tracer::advance`] calls), or is supplied
//! explicitly by simulation layers via the `*_at` methods.  Two runs that
//! perform the same sequence of traced operations therefore produce
//! byte-identical `trace.jsonl` files — which `--replay-check` exploits.
//!
//! The event buffer lives behind a single `std::sync::Mutex`; `seq` and
//! `vt` are assigned under that lock so the (seq, vt) ordering is total
//! even when several worker threads trace concurrently.

use crate::event::{EventKind, TraceEvent, Value};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic virtual clock.  Fresh per [`Tracer`], so two in-process runs
/// (as `--replay-check` performs) start from zero and stay comparable.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ticks: AtomicU64,
}

impl VirtualClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time without advancing it.
    pub fn now(&self) -> u64 {
        self.ticks.load(Ordering::SeqCst)
    }

    /// Advance by one tick and return the *new* time.
    pub fn tick(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Advance by `delta` ticks (e.g. a simulated delay) and return the
    /// new time.
    pub fn advance(&self, delta: u64) -> u64 {
        self.ticks.fetch_add(delta, Ordering::SeqCst) + delta
    }

    /// Set the clock to an absolute tick — crash-resume restores the
    /// virtual time recorded at the journal's last settled trial so
    /// re-executed events land on the same timestamps.
    pub fn restore(&self, ticks: u64) {
        self.ticks.store(ticks, Ordering::SeqCst);
    }
}

/// Convenience alias for building event field maps.
pub type Fields = BTreeMap<String, Value>;

/// Build a field map from `(key, value)` pairs.
pub fn fields<const N: usize>(pairs: [(&str, Value); N]) -> Fields {
    pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
}

/// Event log plus, per event, whether its `vt` came from this tracer's
/// own clock (a tick or an `advance`) rather than an explicit `*_at`
/// stamp — the bit [`Tracer::splice`] needs to relocate events captured
/// on a detached per-trial buffer onto the main trace.
#[derive(Default)]
struct Buf {
    events: Vec<TraceEvent>,
    ticked: Vec<bool>,
}

struct Inner {
    events: Mutex<Buf>,
    clock: VirtualClock,
    /// Incremental sink for crash-safe runs: every pushed event is also
    /// written (and flushed) to this file while the events lock is held,
    /// so the stream order equals the buffer order. Flushing without
    /// fsync survives a process kill (the kernel owns the bytes); a
    /// whole-machine crash may lose the tail, which resume absorbs by
    /// truncating to the journal's last trace mark.
    stream: Mutex<Option<std::fs::File>>,
}

/// Handle onto a shared, append-only trace.  Clone freely; all clones
/// append to the same log.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    pub fn new() -> Self {
        Tracer {
            inner: Arc::new(Inner {
                events: Mutex::new(Buf::default()),
                clock: VirtualClock::new(),
                stream: Mutex::new(None),
            }),
        }
    }

    /// Mirror every subsequent event to `path` (append + create), one
    /// JSONL line per event, flushed per line. Crash-safe runs stream so
    /// the trace survives a kill; [`Tracer::save`] still writes the
    /// canonical snapshot at the end.
    pub fn stream_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        *self.inner.stream.lock().unwrap() = Some(file);
        Ok(())
    }

    /// Preload a recovered event prefix and restore the virtual clock —
    /// the crash-resume path. The tracer must not have recorded anything
    /// yet; subsequent events continue the `seq` numbering and virtual
    /// time exactly where the prefix stops.
    pub fn restore(&self, events: Vec<TraceEvent>, vt: u64) {
        let mut buf = self.inner.events.lock().unwrap();
        assert!(
            buf.events.is_empty(),
            "restore into a tracer that already recorded"
        );
        buf.ticked = vec![true; events.len()];
        buf.events = events;
        self.inner.clock.restore(vt);
    }

    /// Current virtual time (does not advance the clock).
    pub fn now(&self) -> u64 {
        self.inner.clock.now()
    }

    /// Advance the virtual clock by `delta` ticks without emitting an
    /// event — used to account for simulated delays such as retry backoff.
    pub fn advance(&self, delta: u64) {
        self.inner.clock.advance(delta);
    }

    // One parameter per wire-format slot; only called through the typed
    // point/begin/end wrappers.
    #[allow(clippy::too_many_arguments)]
    fn push(
        &self,
        vt: Option<u64>,
        phase: &str,
        name: &str,
        kind: EventKind,
        trial: Option<u64>,
        span: Option<u64>,
        fields: Fields,
    ) -> u64 {
        let mut buf = self.inner.events.lock().unwrap();
        // seq and vt are assigned under the same lock so their order agrees.
        let seq = buf.events.len() as u64;
        let ticked = vt.is_none();
        let vt = vt.unwrap_or_else(|| self.inner.clock.tick());
        let event = TraceEvent {
            seq,
            vt,
            phase: phase.to_string(),
            name: name.to_string(),
            kind,
            trial,
            span,
            fields,
        };
        self.write_stream(&event);
        buf.events.push(event);
        buf.ticked.push(ticked);
        seq
    }

    /// Mirror one event to the stream sink, if any. Must be called with
    /// the events lock held so stream order equals buffer order.
    fn write_stream(&self, event: &TraceEvent) {
        if let Some(stream) = self.inner.stream.lock().unwrap().as_mut() {
            // A run that cannot persist its trace stream has lost its
            // crash-safety story; abort rather than resume from a lie.
            let write = writeln!(stream, "{}", event.to_json()).and_then(|()| stream.flush());
            if let Err(e) = write {
                eprintln!("trace: streaming event failed: {e}");
                std::process::exit(1);
            }
        }
    }

    /// Drain a detached (per-trial) tracer for relocation onto the main
    /// trace via [`Tracer::splice`]: every event paired with its tick
    /// bit, plus the buffer clock's final value (which can exceed the
    /// last event's stamp after a trailing [`Tracer::advance`]).
    pub fn drain_for_splice(&self) -> (Vec<(TraceEvent, bool)>, u64) {
        let mut buf = self.inner.events.lock().unwrap();
        let events = std::mem::take(&mut buf.events);
        let ticked = std::mem::take(&mut buf.ticked);
        (
            events.into_iter().zip(ticked).collect(),
            self.inner.clock.now(),
        )
    }

    /// Splice a drained per-trial buffer onto this tracer as one atomic
    /// block: sequence numbers are reassigned, tick-stamped events
    /// replay their clock *deltas* against this tracer's clock (so
    /// inter-event `advance` gaps such as retry backoff carry over),
    /// explicitly stamped events (sim time) keep their `vt`, and span
    /// references — which must be buffer-local — are remapped to the new
    /// sequence numbers. `end_clock` is the buffer clock's final value;
    /// any advance past the last tick-stamped event is re-applied so the
    /// main clock ends where a live-traced execution would have left it.
    /// Returns the local-seq → spliced-seq map so the caller can close
    /// spans opened inside the buffer.
    pub fn splice(&self, buffered: &[(TraceEvent, bool)], end_clock: u64) -> Vec<u64> {
        let mut buf = self.inner.events.lock().unwrap();
        let mut seq_map: Vec<u64> = Vec::with_capacity(buffered.len());
        let mut local_clock = 0u64;
        for (ev, ticked) in buffered {
            let seq = buf.events.len() as u64;
            let vt = if *ticked {
                let delta = ev.vt.saturating_sub(local_clock);
                local_clock = ev.vt;
                self.inner.clock.advance(delta)
            } else {
                ev.vt
            };
            let span = ev.span.map(|s| seq_map[s as usize]);
            let mut event = ev.clone();
            event.seq = seq;
            event.vt = vt;
            event.span = span;
            self.write_stream(&event);
            seq_map.push(seq);
            buf.events.push(event);
            buf.ticked.push(*ticked);
        }
        if end_clock > local_clock {
            self.inner.clock.advance(end_clock - local_clock);
        }
        seq_map
    }

    /// Record a standalone event, ticking the virtual clock.
    pub fn point(&self, phase: &str, name: &str, trial: Option<u64>, fields: Fields) {
        self.push(None, phase, name, EventKind::Point, trial, None, fields);
    }

    /// Record a standalone event at an explicit virtual time (e.g. sim
    /// microseconds).  Does not tick the tracer clock.
    pub fn point_at(&self, vt: u64, phase: &str, name: &str, trial: Option<u64>, fields: Fields) {
        self.push(Some(vt), phase, name, EventKind::Point, trial, None, fields);
    }

    /// Open a span; returns the begin event's `seq` to pass to [`Tracer::end`].
    pub fn begin(&self, phase: &str, name: &str, trial: Option<u64>, fields: Fields) -> u64 {
        self.push(None, phase, name, EventKind::Begin, trial, None, fields)
    }

    /// Close the span opened by `begin_seq`.
    pub fn end(&self, phase: &str, name: &str, trial: Option<u64>, begin_seq: u64, fields: Fields) {
        self.push(
            None,
            phase,
            name,
            EventKind::End,
            trial,
            Some(begin_seq),
            fields,
        );
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.events.lock().unwrap().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the event log in append order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.events.lock().unwrap().events.clone()
    }

    /// Serialize the log as JSONL (one event per line, trailing newline).
    pub fn to_jsonl(&self) -> String {
        let buf = self.inner.events.lock().unwrap();
        let events = &buf.events;
        let mut out = String::with_capacity(events.len() * 96);
        for e in events.iter() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Write the log to `path` as JSONL (atomically, via tmp + rename).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        e2c_journal::write_atomic(path, self.to_jsonl().as_bytes())
    }
}

/// Load a `trace.jsonl` file back into events (for `trace summarize`).
pub fn load_jsonl(path: &Path) -> Result<Vec<TraceEvent>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = TraceEvent::from_json(line)
            .map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        events.push(ev);
    }
    Ok(events)
}

/// Load a streamed trace, tolerating a torn *final* line (a crash can
/// interrupt the unsynced tail mid-write). Returns the parsed events and
/// whether a torn tail was dropped; a parse error anywhere but the last
/// line is still a hard error.
pub fn load_jsonl_tolerant(path: &Path) -> Result<(Vec<TraceEvent>, bool), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut events = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match TraceEvent::from_json(line) {
            Ok(ev) => events.push(ev),
            Err(_) if i + 1 == lines.len() => return Ok((events, true)),
            Err(e) => return Err(format!("{}:{}: {e}", path.display(), i + 1)),
        }
    }
    Ok((events, false))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_and_vt_are_monotonic() {
        let t = Tracer::new();
        t.point("a", "x", None, Fields::new());
        let b = t.begin("a", "y", Some(1), Fields::new());
        t.end("a", "y", Some(1), b, Fields::new());
        let evs = t.snapshot();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(evs.iter().map(|e| e.vt).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(evs[2].span, Some(b));
    }

    #[test]
    fn point_at_does_not_tick_the_clock() {
        let t = Tracer::new();
        t.point_at(500_000, "sim", "queues", None, Fields::new());
        assert_eq!(t.now(), 0);
        t.point("tuner", "ask", Some(0), Fields::new());
        let evs = t.snapshot();
        assert_eq!(evs[0].vt, 500_000);
        assert_eq!(evs[1].vt, 1);
    }

    #[test]
    fn advance_accounts_for_simulated_delay() {
        let t = Tracer::new();
        t.point("tuner", "retry", Some(0), Fields::new());
        t.advance(250);
        t.point("tuner", "attempt", Some(0), Fields::new());
        let evs = t.snapshot();
        assert_eq!(evs[0].vt, 1);
        assert_eq!(evs[1].vt, 252);
    }

    #[test]
    fn fresh_tracers_replay_identically() {
        let run = || {
            let t = Tracer::new();
            t.point(
                "searcher",
                "ask",
                Some(0),
                fields([("config", "a=1".into())]),
            );
            let b = t.begin("tuner", "execute", Some(0), Fields::new());
            t.end(
                "tuner",
                "execute",
                Some(0),
                b,
                fields([("value", 2.5.into())]),
            );
            t.to_jsonl()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn streamed_trace_matches_the_snapshot_and_survives_restore() {
        let dir = std::env::temp_dir().join(format!("e2c-trace-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("trace.stream.jsonl");
        let t = Tracer::new();
        t.stream_to(&path).unwrap();
        t.point("a", "one", None, Fields::new());
        t.point("a", "two", Some(3), fields([("v", 1.5.into())]));
        // The stream mirrors the buffer line for line.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), t.to_jsonl());

        // Restore the prefix into a fresh tracer and continue: seq and vt
        // carry on exactly where the original left off.
        let (events, torn) = load_jsonl_tolerant(&path).unwrap();
        assert!(!torn);
        let resumed = Tracer::new();
        resumed.restore(events, t.now());
        resumed.point("a", "three", None, Fields::new());
        t.point("a", "three", None, Fields::new());
        assert_eq!(resumed.to_jsonl(), t.to_jsonl());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tolerant_load_drops_only_a_torn_tail() {
        let dir = std::env::temp_dir().join(format!("e2c-trace-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let t = Tracer::new();
        t.point("a", "x", None, Fields::new());
        t.point("a", "y", None, Fields::new());
        let mut text = t.to_jsonl();
        // Chop the final line mid-object: only the tail may be dropped.
        text.truncate(text.len() - 10);
        let path = dir.join("torn.jsonl");
        std::fs::write(&path, &text).unwrap();
        let (events, torn) = load_jsonl_tolerant(&path).unwrap();
        assert!(torn);
        assert_eq!(events.len(), 1);
        // Corruption *before* the tail stays a hard error.
        let bad = format!("not json\n{}", t.to_jsonl());
        std::fs::write(&path, &bad).unwrap();
        assert!(load_jsonl_tolerant(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tolerant_load_survives_truncation_at_every_byte() {
        // A crash can cut the unsynced tail anywhere — including inside a
        // string, an escape sequence, or a `\u` hex run. Every cut must
        // recover exactly the complete-line prefix, never error or panic.
        let dir = std::env::temp_dir().join(format!("e2c-trace-cut-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let t = Tracer::new();
        let mut fields = Fields::new();
        fields.insert("note".into(), Value::Str("esc \"\\\t\u{1}\" end".into()));
        t.point("a", "x", None, fields);
        t.point("a", "y", None, Fields::new());
        let full = t.snapshot();
        let text = t.to_jsonl();
        // A line's event is recoverable once all its content bytes are on
        // disk — the trailing newline itself is not required.
        let line_ends: Vec<usize> = text.match_indices('\n').map(|(i, _)| i).collect();
        let path = dir.join("cut.jsonl");
        for cut in 0..=text.len() {
            std::fs::write(&path, &text.as_bytes()[..cut]).unwrap();
            let (events, _) = load_jsonl_tolerant(&path)
                .unwrap_or_else(|e| panic!("cut at {cut} was a hard error: {e}"));
            let expect = line_ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(events, full[..expect], "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn splice_relocates_a_detached_buffer() {
        // Main trace already has one event (clock at 1).
        let main = Tracer::new();
        main.point("searcher", "ask", Some(0), Fields::new());

        // Per-trial buffer: a span, a sim-time event, a retry gap.
        let buf = Tracer::new();
        let b = buf.begin("tuner", "execute", Some(0), Fields::new()); // local vt 1
        buf.point_at(500_000, "sim", "queues", None, Fields::new()); // explicit
        buf.advance(250); // retry backoff
        buf.point("tuner", "attempt", Some(0), Fields::new()); // local vt 252
        buf.end("tuner", "execute", Some(0), b, Fields::new()); // local vt 253

        let (events, end_clock) = buf.drain_for_splice();
        assert_eq!(end_clock, 253);
        let map = main.splice(&events, end_clock);
        assert_eq!(map, vec![1, 2, 3, 4]);

        let evs = main.snapshot();
        assert_eq!(evs.len(), 5);
        // Tick-stamped events replay their deltas on the main clock
        // (1 + 1 = 2, then +251, +1); the sim event keeps its stamp.
        assert_eq!(evs[1].vt, 2);
        assert_eq!(evs[2].vt, 500_000);
        assert_eq!(evs[3].vt, 253);
        assert_eq!(evs[4].vt, 254);
        assert_eq!(main.now(), 254);
        // Span reference remapped from local seq 0 to spliced seq 1.
        assert_eq!(evs[4].span, Some(1));
        // Sequence numbers stay dense.
        assert_eq!(
            evs.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn spliced_events_reach_the_stream_in_order() {
        let dir = std::env::temp_dir().join(format!("e2c-trace-splice-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let main = Tracer::new();
        main.stream_to(&dir.join("s.jsonl")).unwrap();
        main.point("a", "before", None, Fields::new());
        let buf = Tracer::new();
        buf.point("b", "inside", Some(2), Fields::new());
        let (events, end_clock) = buf.drain_for_splice();
        main.splice(&events, end_clock);
        main.point("a", "after", None, Fields::new());
        assert_eq!(
            std::fs::read_to_string(dir.join("s.jsonl")).unwrap(),
            main.to_jsonl()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn jsonl_round_trips_through_file() {
        let t = Tracer::new();
        t.point("cycle", "start", None, fields([("n", 6u64.into())]));
        t.point(
            "cycle",
            "objective",
            Some(0),
            fields([("value", f64::NAN.into())]),
        );
        let dir = std::env::temp_dir().join(format!("e2c-trace-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("trace.jsonl");
        t.save(&path).unwrap();
        let back = load_jsonl(&path).unwrap();
        // NaN breaks direct equality; compare the canonical wire form.
        let reserialized: String = back.iter().map(|e| e.to_json() + "\n").collect();
        assert_eq!(reserialized, t.to_jsonl());
        assert!(back[1].fields["value"].as_f64().unwrap().is_nan());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
