//! # e2c-trace — deterministic tracing for the optimization cycle
//!
//! A std-only, append-only structured event log.  Spans and events are
//! keyed by *virtual time* (tuner event ticks, or discrete-event sim
//! microseconds) — never the wall clock — so a seeded run writes a
//! byte-identical `trace.jsonl` every time it replays.  This is the
//! measurement substrate behind `e2clab optimize --trace <dir>` and
//! `e2clab trace summarize`.
//!
//! * [`Tracer`] / [`VirtualClock`] — recording (cheap to clone, thread-safe);
//! * [`TraceEvent`] / [`Value`] — the event model and JSONL wire form;
//! * [`TraceSummary`] — per-phase breakdowns and per-trial critical paths.

pub mod event;
pub mod summary;
pub mod tracer;

pub use event::{EventKind, TraceEvent, Value};
pub use summary::{PhaseStats, TraceSummary, TrialPath};
pub use tracer::{fields, load_jsonl, load_jsonl_tolerant, Fields, Tracer, VirtualClock};
