//! The trace event model and its deterministic JSONL wire form.
//!
//! Every event carries two clocks:
//!
//! * `seq` — a per-tracer append counter, unique and gapless;
//! * `vt`  — virtual time.  Tuner-side events tick a [`crate::VirtualClock`]
//!   (one tick per event plus explicit advances); simulation-side events
//!   carry their discrete-event sim time in microseconds.  No wall clock
//!   ever reaches an event, which is what makes `trace.jsonl` byte-stable
//!   under `--replay-check`.
//!
//! Events serialize one-per-line as JSON with keys in a fixed order and
//! `fields` in BTreeMap (sorted) order, so equal event streams produce
//! byte-identical files.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Whether an event opens a span, closes one, or stands alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    Begin,
    End,
    Point,
}

impl EventKind {
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::End => "end",
            EventKind::Point => "point",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "begin" => Some(EventKind::Begin),
            "end" => Some(EventKind::End),
            "point" => Some(EventKind::Point),
            _ => None,
        }
    }
}

/// A structured field value.  Unsigned integers keep their exact textual
/// form (no float round-trip); non-finite floats are serialized as quoted
/// strings because bare `NaN` is not JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            Value::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            Value::Bool(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else if v.is_nan() {
                    out.push_str("\"NaN\"");
                } else if *v > 0.0 {
                    out.push_str("\"inf\"");
                } else {
                    out.push_str("\"-inf\"");
                }
            }
            Value::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

/// One record in the append-only log.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Append sequence number, gapless per tracer.
    pub seq: u64,
    /// Virtual time (event ticks or sim microseconds — see module docs).
    pub vt: u64,
    /// Subsystem the event belongs to (`tuner`, `searcher`, `scheduler`,
    /// `des`, `sim`, `cycle`, ...).
    pub phase: String,
    /// Event name within the phase (`ask`, `execute`, `report`, ...).
    pub name: String,
    pub kind: EventKind,
    /// Trial the event belongs to, when applicable.
    pub trial: Option<u64>,
    /// For `End` events: the `seq` of the matching `Begin`.
    pub span: Option<u64>,
    pub fields: BTreeMap<String, Value>,
}

impl TraceEvent {
    /// Serialize as a single JSON line (no trailing newline).  Key order is
    /// fixed; optional keys are omitted rather than null so the byte stream
    /// has one canonical form.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"seq\":{},\"vt\":{},\"phase\":\"{}\",\"name\":\"{}\",\"kind\":\"{}\"",
            self.seq,
            self.vt,
            json_escape(&self.phase),
            json_escape(&self.name),
            self.kind.as_str()
        );
        if let Some(t) = self.trial {
            let _ = write!(s, ",\"trial\":{t}");
        }
        if let Some(b) = self.span {
            let _ = write!(s, ",\"span\":{b}");
        }
        if !self.fields.is_empty() {
            s.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push('"');
                s.push_str(&json_escape(k));
                s.push_str("\":");
                v.write_json(&mut s);
            }
            s.push('}');
        }
        s.push('}');
        s
    }

    /// Parse one JSONL line produced by [`TraceEvent::to_json`].
    pub fn from_json(line: &str) -> Result<TraceEvent, String> {
        let json = parse::parse(line)?;
        let obj = match json {
            parse::Json::Obj(m) => m,
            _ => return Err("trace line is not a JSON object".into()),
        };
        let need_u64 = |key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(parse::Json::as_u64)
                .ok_or_else(|| format!("missing/invalid `{key}`"))
        };
        let need_str = |key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(parse::Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing/invalid `{key}`"))
        };
        let kind_s = need_str("kind")?;
        let kind = EventKind::parse(&kind_s).ok_or_else(|| format!("bad kind `{kind_s}`"))?;
        let mut fields = BTreeMap::new();
        if let Some(parse::Json::Obj(m)) = obj.get("fields") {
            for (k, v) in m {
                fields.insert(k.clone(), v.to_value());
            }
        }
        Ok(TraceEvent {
            seq: need_u64("seq")?,
            vt: need_u64("vt")?,
            phase: need_str("phase")?,
            name: need_str("name")?,
            kind,
            trial: obj.get("trial").and_then(parse::Json::as_u64),
            span: obj.get("span").and_then(parse::Json::as_u64),
            fields,
        })
    }
}

/// Escape a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

pub use parse::Json;

/// Minimal recursive-descent JSON parser — just enough to read back the
/// lines this crate writes (and reject anything malformed with a useful
/// message).  Numbers keep their raw text so u64 sequence numbers never
/// round-trip through f64.  Public so the fuzz harness can drive the
/// parser directly ([`Json::parse`]) with arbitrary byte soup.
pub mod parse {
    use super::Value;
    use std::collections::BTreeMap;

    /// Maximum object/array nesting. The writer emits at most two levels
    /// (the event object and its `fields`); the bound turns `[[[[…` —
    /// which used to recurse once per bracket and overflow the stack —
    /// into a typed error.
    const MAX_DEPTH: usize = 64;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        Obj(BTreeMap<String, Json>),
        Arr(Vec<Json>),
        Str(String),
        Num(String),
        Bool(bool),
        Null,
    }

    impl Json {
        /// Parse a complete JSON document (no trailing bytes). This is
        /// [`parse`] as an associated function — the entry point the fuzz
        /// harness and external tests use.
        pub fn parse(input: &str) -> Result<Json, String> {
            parse(input)
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Json::Num(raw) => raw.parse().ok(),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Lossy conversion into a trace field [`Value`].
        pub fn to_value(&self) -> Value {
            match self {
                Json::Num(raw) => {
                    if let Ok(u) = raw.parse::<u64>() {
                        Value::U64(u)
                    } else if raw.starts_with('-') && raw.parse::<i64>() == Ok(0) {
                        // `-0` is integer-parseable but would re-encode as
                        // `0`; keep the sign by staying in float space.
                        Value::F64(-0.0)
                    } else if let Ok(i) = raw.parse::<i64>() {
                        Value::I64(i)
                    } else {
                        Value::F64(raw.parse().unwrap_or(f64::NAN))
                    }
                }
                Json::Str(s) => Value::Str(s.clone()),
                Json::Bool(b) => Value::Bool(*b),
                Json::Obj(_) | Json::Arr(_) | Json::Null => Value::Str(String::new()),
            }
        }
    }

    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let v = value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
        skip_ws(b, pos);
        if depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at offset {pos}"
            ));
        }
        match b.get(*pos) {
            Some(b'{') => object(b, pos, depth),
            Some(b'[') => array(b, pos, depth),
            Some(b'"') => Ok(Json::Str(string(b, pos)?)),
            Some(b't') => literal(b, pos, "true", Json::Bool(true)),
            Some(b'f') => literal(b, pos, "false", Json::Bool(false)),
            Some(b'n') => literal(b, pos, "null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
            _ => Err(format!("unexpected byte at offset {pos}")),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {pos}"))
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        }
        let raw = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
        raw.parse::<f64>()
            .map_err(|_| format!("bad number `{raw}` at offset {start}"))?;
        Ok(Json::Num(raw.to_string()))
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        // Callers dispatch here on a leading quote; verify rather than
        // assert so no call path can turn a logic slip into a panic.
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at offset {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                    let Some(c) = rest.chars().next() else {
                        return Err("unterminated string".into());
                    };
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
        *pos += 1; // {
        let mut map = BTreeMap::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b'"') {
                return Err(format!("expected object key at offset {pos}"));
            }
            let key = string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected `:` at offset {pos}"));
            }
            *pos += 1;
            let v = value(b, pos, depth + 1)?;
            map.insert(key, v);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
        *pos += 1; // [
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(value(b, pos, depth + 1)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_json() {
        let mut fields = BTreeMap::new();
        fields.insert("value".to_string(), Value::F64(2.5));
        fields.insert("attempt".to_string(), Value::U64(3));
        fields.insert("error".to_string(), Value::Str("dead \"quote\"".into()));
        fields.insert("ok".to_string(), Value::Bool(false));
        let ev = TraceEvent {
            seq: 7,
            vt: 41,
            phase: "tuner".into(),
            name: "attempt".into(),
            kind: EventKind::Point,
            trial: Some(2),
            span: None,
            fields,
        };
        let line = ev.to_json();
        let back = TraceEvent::from_json(&line).unwrap();
        assert_eq!(ev, back);
    }

    #[test]
    fn nonfinite_floats_survive_serialization() {
        let mut fields = BTreeMap::new();
        fields.insert("value".to_string(), Value::F64(f64::NAN));
        let ev = TraceEvent {
            seq: 0,
            vt: 0,
            phase: "cycle".into(),
            name: "objective".into(),
            kind: EventKind::Point,
            trial: Some(0),
            span: None,
            fields,
        };
        let line = ev.to_json();
        assert!(line.contains("\"value\":\"NaN\""), "{line}");
        let back = TraceEvent::from_json(&line).unwrap();
        assert!(back.fields["value"].as_f64().unwrap().is_nan());
    }

    #[test]
    fn optional_keys_are_omitted() {
        let ev = TraceEvent {
            seq: 1,
            vt: 2,
            phase: "des".into(),
            name: "run".into(),
            kind: EventKind::Point,
            trial: None,
            span: None,
            fields: BTreeMap::new(),
        };
        let line = ev.to_json();
        assert!(!line.contains("trial"));
        assert!(!line.contains("span"));
        assert!(!line.contains("fields"));
        assert_eq!(TraceEvent::from_json(&line).unwrap(), ev);
    }

    #[test]
    fn span_reference_round_trips() {
        let ev = TraceEvent {
            seq: 9,
            vt: 12,
            phase: "tuner".into(),
            name: "execute".into(),
            kind: EventKind::End,
            trial: Some(4),
            span: Some(5),
            fields: BTreeMap::new(),
        };
        assert_eq!(TraceEvent::from_json(&ev.to_json()).unwrap(), ev);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(TraceEvent::from_json("{not json").is_err());
        assert!(TraceEvent::from_json("[1,2]").is_err());
        assert!(TraceEvent::from_json("{\"seq\":1}").is_err());
    }

    #[test]
    fn deep_nesting_is_a_typed_error_not_a_stack_overflow() {
        // 100k opening brackets used to recurse once per bracket.
        let bomb = "[".repeat(100_000);
        let err = Json::parse(&bomb).unwrap_err();
        assert!(err.contains("nesting deeper than"), "{err}");

        let obj_bomb = "{\"k\":".repeat(100_000);
        let err = Json::parse(&obj_bomb).unwrap_err();
        assert!(err.contains("nesting deeper than"), "{err}");

        // Realistic depth stays accepted (writer emits ≤ 2 levels).
        let nested = format!("{}1{}", "[".repeat(20), "]".repeat(20));
        assert!(Json::parse(&nested).is_ok());
    }

    #[test]
    fn json_parse_never_panics_on_malformed_input() {
        for s in [
            "",
            "\"",
            "\"\\",
            "\"\\u12",
            "\"\\u12zz\"",
            "{\"a\"",
            "{\"a\":",
            "[1,",
            "-",
            "1e",
            "truf",
            "nul",
            "\u{fffd}",
            "{\"a\":1}x",
        ] {
            assert!(Json::parse(s).is_err(), "accepted {s:?}");
        }
    }

    #[test]
    fn encode_decode_encode_is_byte_stable() {
        let mut fields = BTreeMap::new();
        fields.insert("value".to_string(), Value::F64(f64::INFINITY));
        fields.insert("note".to_string(), Value::Str("tab\there".into()));
        let ev = TraceEvent {
            seq: 3,
            vt: 8,
            phase: "tuner".into(),
            name: "objective".into(),
            kind: EventKind::Begin,
            trial: Some(1),
            span: Some(2),
            fields,
        };
        let once = ev.to_json();
        let twice = TraceEvent::from_json(&once).unwrap().to_json();
        assert_eq!(once, twice);
    }

    #[test]
    fn negative_zero_field_keeps_its_sign() {
        // Fuzz find: `-0` parses as i64 zero, which re-encoded as `0` and
        // broke the encode fixpoint. It must stay a (negative) float.
        let line = r#"{"seq":1,"vt":2,"phase":"p","name":"n","kind":"point","fields":{"x":-0}}"#;
        let ev = TraceEvent::from_json(line).unwrap();
        match ev.fields["x"] {
            Value::F64(f) => assert!(f == 0.0 && f.is_sign_negative()),
            ref other => panic!("expected F64(-0.0), got {other:?}"),
        }
        let once = ev.to_json();
        let twice = TraceEvent::from_json(&once).unwrap().to_json();
        assert_eq!(once, twice);
        assert!(once.contains("\"x\":-0"), "sign lost in {once}");
    }
}
