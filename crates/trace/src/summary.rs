//! Post-hoc analysis of a trace: per-phase time breakdowns and per-trial
//! critical paths, rendered as fixed-width text tables for
//! `e2clab trace summarize`.

use crate::event::{EventKind, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate statistics for one phase (subsystem).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct PhaseStats {
    /// Total events attributed to the phase.
    pub events: u64,
    /// Completed begin/end span pairs.
    pub spans: u64,
    /// Sum of span durations in virtual-time units.
    pub span_vt: u64,
}

/// The critical path of a single trial: ask → execute span → tell.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TrialPath {
    pub trial: u64,
    pub ask_vt: Option<u64>,
    pub exec_begin_vt: Option<u64>,
    pub exec_end_vt: Option<u64>,
    pub attempts: u64,
    pub retries: u64,
    pub faults: u64,
    pub tell_vt: Option<u64>,
    /// Objective value reported to the searcher, if any.
    pub value: Option<f64>,
    /// Scheduler decision that stopped the trial early, if any.
    pub stopped: bool,
}

impl TrialPath {
    /// End-to-end virtual-time distance from ask to tell (the "latency"
    /// the issue asks for — measured in deterministic virtual ticks).
    pub fn ask_tell_vt(&self) -> Option<u64> {
        match (self.ask_vt, self.tell_vt) {
            (Some(a), Some(t)) => Some(t.saturating_sub(a)),
            _ => None,
        }
    }
}

/// Full summary of a trace.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TraceSummary {
    pub phases: BTreeMap<String, PhaseStats>,
    pub trials: BTreeMap<u64, TrialPath>,
    pub total_events: u64,
    /// Highest virtual time seen on any tuner-clock event.
    pub vt_end: u64,
}

impl TraceSummary {
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut s = TraceSummary::default();
        // seq -> vt of still-open begin events, for span durations.
        let mut open: BTreeMap<u64, u64> = BTreeMap::new();
        for e in events {
            s.total_events += 1;
            let ph = s.phases.entry(e.phase.clone()).or_default();
            ph.events += 1;
            match e.kind {
                EventKind::Begin => {
                    open.insert(e.seq, e.vt);
                }
                EventKind::End => {
                    if let Some(begin_vt) = e.span.and_then(|b| open.remove(&b)) {
                        ph.spans += 1;
                        ph.span_vt += e.vt.saturating_sub(begin_vt);
                    }
                }
                EventKind::Point => {}
            }
            // Sim-side events carry microsecond timestamps on their own
            // axis; only tuner-clock phases advance the global vt line.
            if e.phase != "sim" && e.phase != "des" {
                s.vt_end = s.vt_end.max(e.vt);
            }
            let Some(trial) = e.trial else { continue };
            let path = s.trials.entry(trial).or_insert_with(|| TrialPath {
                trial,
                ..TrialPath::default()
            });
            match (e.phase.as_str(), e.name.as_str(), e.kind) {
                ("searcher", "ask", _) => path.ask_vt = Some(e.vt),
                ("searcher", "tell", _) => {
                    path.tell_vt = Some(e.vt);
                    if let Some(v) = e.fields.get("value").and_then(|v| v.as_f64()) {
                        path.value = Some(v);
                    }
                }
                ("tuner", "execute", EventKind::Begin) => path.exec_begin_vt = Some(e.vt),
                ("tuner", "execute", EventKind::End) => path.exec_end_vt = Some(e.vt),
                ("tuner", "attempt", _) => {
                    path.attempts += 1;
                    if e.fields.contains_key("fault") {
                        path.faults += 1;
                    }
                }
                ("tuner", "retry", _) => path.retries += 1,
                ("scheduler", "report", _)
                    if e.fields.get("decision").and_then(|v| v.as_str()) == Some("stop") =>
                {
                    path.stopped = true;
                }
                _ => {}
            }
        }
        s
    }

    /// Render both tables as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("per-phase breakdown (vt = virtual-time units)\n");
        out.push_str(&render_table(
            &["phase", "events", "spans", "span-vt"],
            &self
                .phases
                .iter()
                .map(|(name, p)| {
                    vec![
                        name.clone(),
                        p.events.to_string(),
                        p.spans.to_string(),
                        p.span_vt.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        let _ = writeln!(
            out,
            "total events: {}   vt end: {}",
            self.total_events, self.vt_end
        );
        out.push('\n');
        out.push_str("per-trial critical path (ask -> execute -> tell)\n");
        let fmt_vt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |x| x.to_string());
        let rows: Vec<Vec<String>> = self
            .trials
            .values()
            .map(|t| {
                let exec = match (t.exec_begin_vt, t.exec_end_vt) {
                    (Some(b), Some(e)) => format!("{b}..{e}"),
                    (Some(b), None) => format!("{b}.."),
                    _ => "-".to_string(),
                };
                let value = match t.value {
                    Some(v) if v.is_finite() => format!("{v:.4}"),
                    Some(_) => "NaN".to_string(),
                    None => "-".to_string(),
                };
                vec![
                    t.trial.to_string(),
                    fmt_vt(t.ask_vt),
                    exec,
                    t.attempts.to_string(),
                    t.retries.to_string(),
                    t.faults.to_string(),
                    fmt_vt(t.tell_vt),
                    fmt_vt(t.ask_tell_vt()),
                    value,
                    if t.stopped { "stopped" } else { "" }.to_string(),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &[
                "trial", "ask@vt", "execute", "att", "retry", "fault", "tell@vt", "lat-vt",
                "value", "note",
            ],
            &rows,
        ));
        out
    }
}

/// Left-aligned fixed-width text table.
fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let emit_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:<width$}", width = widths[i]);
        }
        // Trim trailing padding so the byte stream is canonical.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    emit_row(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    emit_row(&mut out, &rule);
    for row in rows {
        emit_row(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{fields, Fields, Tracer};

    fn sample_tracer() -> Tracer {
        let t = Tracer::new();
        t.point("cycle", "start", None, Fields::new());
        t.point(
            "searcher",
            "ask",
            Some(0),
            fields([("config", "http=40".into())]),
        );
        let b = t.begin("tuner", "execute", Some(0), Fields::new());
        t.point(
            "tuner",
            "attempt",
            Some(0),
            fields([("attempt", 1u64.into())]),
        );
        t.point(
            "tuner",
            "attempt",
            Some(0),
            fields([("attempt", 2u64.into()), ("fault", "fail".into())]),
        );
        t.point(
            "tuner",
            "retry",
            Some(0),
            fields([("delay_ms", 100u64.into())]),
        );
        t.end(
            "tuner",
            "execute",
            Some(0),
            b,
            fields([("value", 3.25.into())]),
        );
        t.point(
            "searcher",
            "tell",
            Some(0),
            fields([("value", 3.25.into())]),
        );
        t.point(
            "scheduler",
            "report",
            Some(0),
            fields([("decision", "stop".into())]),
        );
        t.point_at(
            1_000_000,
            "sim",
            "queues",
            Some(0),
            fields([("http", 3u64.into())]),
        );
        t
    }

    #[test]
    fn computes_phase_and_trial_stats() {
        let t = sample_tracer();
        let s = TraceSummary::from_events(&t.snapshot());
        assert_eq!(s.total_events, 10);
        assert_eq!(s.phases["tuner"].spans, 1);
        assert!(s.phases["tuner"].span_vt > 0);
        assert_eq!(s.phases["sim"].events, 1);
        let path = &s.trials[&0];
        assert_eq!(path.attempts, 2);
        assert_eq!(path.retries, 1);
        assert_eq!(path.faults, 1);
        assert_eq!(path.value, Some(3.25));
        assert!(path.stopped);
        assert!(path.ask_tell_vt().unwrap() > 0);
        // Sim-side microsecond timestamps must not distort the tuner vt line.
        assert!(s.vt_end < 1_000_000);
    }

    #[test]
    fn render_contains_both_tables() {
        let t = sample_tracer();
        let s = TraceSummary::from_events(&t.snapshot());
        let text = s.render();
        assert!(text.contains("per-phase breakdown"), "{text}");
        assert!(text.contains("per-trial critical path"), "{text}");
        assert!(text.contains("tuner"), "{text}");
        assert!(text.contains("3.2500"), "{text}");
        assert!(text.contains("stopped"), "{text}");
    }

    #[test]
    fn render_is_deterministic() {
        let a = TraceSummary::from_events(&sample_tracer().snapshot()).render();
        let b = TraceSummary::from_events(&sample_tracer().snapshot()).render();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_renders_without_panicking() {
        let s = TraceSummary::from_events(&[]);
        let text = s.render();
        assert!(text.contains("total events: 0"), "{text}");
    }
}
