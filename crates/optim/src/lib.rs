//! # e2c-optim — the optimization toolkit
//!
//! A from-scratch reimplementation of the optimization machinery the paper
//! builds on (scikit-optimize-style Bayesian optimization plus the
//! metaheuristics listed for short-running applications):
//!
//! * [`space`] — search-space definition (integer/real/categorical
//!   dimensions, normalization, rounding);
//! * [`sampling`] — initial designs: random, Latin Hypercube, Halton,
//!   Sobol, full grid;
//! * [`surrogate`] — regression models with predictive uncertainty:
//!   CART trees, Random Forest, **Extra Trees** (the paper's
//!   `base_estimator='ET'`), gradient-boosted trees, Gaussian processes
//!   (RBF / Matérn 5/2), kernel ridge (the SVR stand-in) and polynomial
//!   least squares;
//! * [`acquisition`] — EI, PI, LCB and the `gp_hedge` portfolio;
//! * [`bayes`] — an ask/tell [`bayes::BayesOpt`] mirroring
//!   `skopt.Optimizer`, safe to drive asynchronously (constant-liar
//!   handling of in-flight points);
//! * [`metaheuristics`] — GA, Differential Evolution, Simulated Annealing,
//!   PSO behind one [`metaheuristics::Metaheuristic`] interface;
//! * [`pareto`] — multi-objective tooling: dominance, non-dominated
//!   sorting, crowding distance, NSGA-II (for the Fig. 4 placement
//!   problems);
//! * [`sensitivity`] — One-at-a-time (§IV-C) and Morris elementary
//!   effects;
//! * [`problem`] — the Eq. 1 formalization: objectives, inequality and
//!   equality constraints, bounds, penalty evaluation;
//! * [`linalg`] — the small dense linear algebra (Cholesky, QR) the
//!   surrogates need.

pub mod acquisition;
pub mod bayes;
pub mod linalg;
pub mod metaheuristics;
pub mod pareto;
pub mod problem;
pub mod sampling;
pub mod sensitivity;
pub mod space;
pub mod surrogate;

pub use acquisition::Acquisition;
pub use bayes::BayesOpt;
pub use sampling::InitialDesign;
pub use space::{Dimension, Point, Space};
pub use surrogate::SurrogateKind;
