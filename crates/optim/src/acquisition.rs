//! Acquisition functions for Bayesian optimization.
//!
//! All scores follow the convention **higher = more worth evaluating**, for
//! a *minimization* problem (the optimizer negates targets when maximizing,
//! like `tune.run(mode=...)` does).

/// Standard normal PDF.
pub fn norm_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max absolute error ≈ 1.5e-7 — far below acquisition-ranking needs).
pub fn norm_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// The acquisition strategies of scikit-optimize, including the `gp_hedge`
/// portfolio the paper's Listing 1 configures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Acquisition {
    /// Expected improvement over the incumbent.
    Ei,
    /// Probability of improvement.
    Pi,
    /// Lower confidence bound, `mean - kappa·std` (to minimize).
    Lcb {
        /// Exploration weight.
        kappa: f64,
    },
    /// Probability-matched portfolio over EI, PI and LCB (`gp_hedge`).
    GpHedge,
}

impl Acquisition {
    /// Parse a configuration name.
    pub fn from_name(name: &str) -> Option<Acquisition> {
        Some(match name {
            "ei" | "EI" => Acquisition::Ei,
            "pi" | "PI" => Acquisition::Pi,
            "lcb" | "LCB" => Acquisition::Lcb { kappa: 1.96 },
            "gp_hedge" => Acquisition::GpHedge,
            _ => return None,
        })
    }

    /// Score a candidate with predictive `(mean, std)` against the best
    /// observed value `best`. Must not be called on `GpHedge` (the
    /// portfolio scores through its members).
    pub fn score(&self, mean: f64, std: f64, best: f64) -> f64 {
        match *self {
            Acquisition::Ei => expected_improvement(mean, std, best),
            Acquisition::Pi => probability_of_improvement(mean, std, best),
            Acquisition::Lcb { kappa } => -(mean - kappa * std),
            Acquisition::GpHedge => {
                unreachable!("gp_hedge delegates to its portfolio members")
            }
        }
    }
}

/// Expected improvement for minimization.
pub fn expected_improvement(mean: f64, std: f64, best: f64) -> f64 {
    if std <= 1e-12 {
        return (best - mean).max(0.0);
    }
    let imp = best - mean;
    let z = imp / std;
    // EI is analytically non-negative; the erf approximation can push the
    // deep tail a few ulps below zero, so clamp.
    (imp * norm_cdf(z) + std * norm_pdf(z)).max(0.0)
}

/// Probability of improvement for minimization.
pub fn probability_of_improvement(mean: f64, std: f64, best: f64) -> f64 {
    if std <= 1e-12 {
        return if mean < best { 1.0 } else { 0.0 };
    }
    norm_cdf((best - mean) / std)
}

/// The `gp_hedge` portfolio state: per-member cumulative gains drive
/// probability matching (softmax) over which member's proposal is used.
#[derive(Debug, Clone)]
pub struct Hedge {
    members: Vec<Acquisition>,
    gains: Vec<f64>,
    eta: f64,
}

impl Default for Hedge {
    fn default() -> Self {
        Hedge::new(1.0)
    }
}

impl Hedge {
    /// Portfolio of EI, PI and LCB with softmax temperature `eta`.
    pub fn new(eta: f64) -> Self {
        Hedge {
            members: vec![
                Acquisition::Ei,
                Acquisition::Pi,
                Acquisition::Lcb { kappa: 1.96 },
            ],
            gains: vec![0.0; 3],
            eta,
        }
    }

    /// The portfolio members.
    pub fn members(&self) -> &[Acquisition] {
        &self.members
    }

    /// Selection probabilities (softmax of gains).
    pub fn probabilities(&self) -> Vec<f64> {
        let m = self.gains.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = self
            .gains
            .iter()
            .map(|g| ((g - m) * self.eta).exp())
            .collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// Pick a member index given a uniform draw in `[0, 1)`.
    pub fn choose(&self, u: f64) -> usize {
        let probs = self.probabilities();
        let mut acc = 0.0;
        for (i, p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        probs.len() - 1
    }

    /// Reward member `i` (scikit-optimize adds the *negative* posterior
    /// mean at the member's proposal, so members proposing low-mean points
    /// gain influence on a minimization problem).
    pub fn update(&mut self, i: usize, reward: f64) {
        self.gains[i] += reward;
    }

    /// Current gains, for diagnostics.
    pub fn gains(&self) -> &[f64] {
        &self.gains
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_reference_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((norm_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(norm_cdf(8.0) > 0.999999);
    }

    #[test]
    fn pdf_reference_values() {
        assert!((norm_pdf(0.0) - 0.39894228).abs() < 1e-7);
        assert!((norm_pdf(1.0) - 0.24197072).abs() < 1e-7);
    }

    #[test]
    fn ei_prefers_lower_mean_at_equal_std() {
        let best = 1.0;
        assert!(expected_improvement(0.5, 0.1, best) > expected_improvement(0.9, 0.1, best));
    }

    #[test]
    fn ei_prefers_higher_std_at_equal_mean() {
        let best = 1.0;
        assert!(expected_improvement(1.2, 0.5, best) > expected_improvement(1.2, 0.01, best));
    }

    #[test]
    fn ei_zero_std_is_plain_improvement() {
        assert_eq!(expected_improvement(0.4, 0.0, 1.0), 0.6);
        assert_eq!(expected_improvement(1.4, 0.0, 1.0), 0.0);
    }

    #[test]
    fn pi_is_a_probability() {
        for (m, s) in [(0.0, 1.0), (2.0, 0.5), (-3.0, 0.1)] {
            let p = probability_of_improvement(m, s, 0.5);
            assert!((0.0..=1.0).contains(&p));
        }
        assert_eq!(probability_of_improvement(0.0, 0.0, 1.0), 1.0);
        assert_eq!(probability_of_improvement(2.0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn lcb_trades_mean_against_std() {
        let lcb = Acquisition::Lcb { kappa: 2.0 };
        // (mean 1, std 1) scores -(1-2) = 1; (mean 0.5, std 0) scores -0.5.
        assert!(lcb.score(1.0, 1.0, 0.0) > lcb.score(0.5, 0.0, 0.0));
    }

    #[test]
    fn hedge_probability_matching_shifts_mass() {
        let mut h = Hedge::new(1.0);
        let p0 = h.probabilities();
        assert!((p0.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p0[0] - 1.0 / 3.0).abs() < 1e-12);
        // Reward EI heavily; it must now dominate.
        h.update(0, 5.0);
        let p1 = h.probabilities();
        assert!(p1[0] > 0.9, "{p1:?}");
        assert_eq!(h.choose(0.5), 0);
    }

    #[test]
    fn hedge_choose_covers_all_members() {
        let h = Hedge::new(1.0);
        assert_eq!(h.choose(0.0), 0);
        assert_eq!(h.choose(0.5), 1);
        assert_eq!(h.choose(0.99), 2);
    }

    #[test]
    fn names_parse() {
        assert_eq!(Acquisition::from_name("ei"), Some(Acquisition::Ei));
        assert_eq!(
            Acquisition::from_name("gp_hedge"),
            Some(Acquisition::GpHedge)
        );
        assert!(matches!(
            Acquisition::from_name("lcb"),
            Some(Acquisition::Lcb { .. })
        ));
        assert_eq!(Acquisition::from_name("zzz"), None);
    }
}
