//! Ask/tell Bayesian optimizer (the `skopt.Optimizer` analogue).
//!
//! The paper's Listing 1 configures `Optimizer(base_estimator='ET',
//! n_initial_points=45, initial_point_generator="lhs",
//! acq_func="gp_hedge")`. [`BayesOpt`] mirrors that interface:
//!
//! * the first `n_initial_points` asks come from the initial design;
//! * afterwards, a surrogate is fitted and candidates are ranked by the
//!   acquisition function;
//! * **asynchronous parallelism**: points that were asked but not yet told
//!   are treated with the *constant liar* strategy (they are assumed to
//!   return the worst observed value), so concurrent workers do not pile
//!   onto the same point — this is what makes the trial runner's
//!   "asynchronous model optimization" sound.

use crate::acquisition::{Acquisition, Hedge};
use crate::sampling::InitialDesign;
use crate::space::{Point, Space};
use crate::surrogate::SurrogateKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration + state of one Bayesian optimization run (minimization).
pub struct BayesOpt {
    space: Space,
    kind: SurrogateKind,
    acq: Acquisition,
    design: InitialDesign,
    n_initial: usize,
    n_candidates: usize,
    rng: StdRng,
    seed: u64,
    initial_queue: Vec<Point>,
    xs: Vec<Point>,
    ys: Vec<f64>,
    pending: Vec<Point>,
    hedge: Hedge,
    /// Member proposals from the last hedge ask, for gain updates.
    hedge_proposals: Vec<(usize, Point)>,
}

impl BayesOpt {
    /// Optimizer over `space` with the paper's defaults (Extra Trees,
    /// LHS initialization, `gp_hedge` acquisition).
    pub fn new(space: Space, seed: u64) -> Self {
        BayesOpt {
            space,
            kind: SurrogateKind::ExtraTrees,
            acq: Acquisition::GpHedge,
            design: InitialDesign::Lhs,
            n_initial: 10,
            n_candidates: 512,
            rng: StdRng::seed_from_u64(seed),
            seed,
            initial_queue: Vec::new(),
            xs: Vec::new(),
            ys: Vec::new(),
            pending: Vec::new(),
            hedge: Hedge::default(),
            hedge_proposals: Vec::new(),
        }
    }

    /// Choose the surrogate family (`base_estimator`).
    pub fn base_estimator(mut self, kind: SurrogateKind) -> Self {
        self.kind = kind;
        self
    }

    /// Choose the acquisition function.
    pub fn acq_func(mut self, acq: Acquisition) -> Self {
        self.acq = acq;
        self
    }

    /// Size of the initial design.
    pub fn n_initial_points(mut self, n: usize) -> Self {
        self.n_initial = n.max(1);
        self
    }

    /// Initial design generator.
    pub fn initial_point_generator(mut self, design: InitialDesign) -> Self {
        self.design = design;
        self
    }

    /// Candidate pool size per ask (acquisition optimization budget).
    pub fn n_candidate_points(mut self, n: usize) -> Self {
        self.n_candidates = n.max(8);
        self
    }

    /// The search space.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// Number of completed observations.
    pub fn n_observed(&self) -> usize {
        self.ys.len()
    }

    /// Points asked but not yet told.
    pub fn n_pending(&self) -> usize {
        self.pending.len()
    }

    /// All observations so far, in tell order.
    pub fn history(&self) -> impl Iterator<Item = (&Point, f64)> {
        self.xs.iter().zip(self.ys.iter().copied())
    }

    /// Best observation `(point, value)` so far.
    pub fn best(&self) -> Option<(Point, f64)> {
        let (mut bx, mut by): (Option<&Point>, f64) = (None, f64::INFINITY);
        for (x, &y) in self.xs.iter().zip(&self.ys) {
            if y < by {
                by = y;
                bx = Some(x);
            }
        }
        bx.map(|x| (x.clone(), by))
    }

    /// Request the next point to evaluate.
    pub fn ask(&mut self) -> Point {
        // Phase 1: serve (and lazily generate) the initial design.
        let served = self.xs.len() + self.pending.len();
        if served < self.n_initial {
            if self.initial_queue.is_empty() {
                self.initial_queue =
                    self.design
                        .generate(&self.space, self.n_initial, &mut self.rng);
                // Pop from the back; reverse to keep design order.
                self.initial_queue.reverse();
            }
            let point = self
                .initial_queue
                .pop()
                .unwrap_or_else(|| self.space.sample(&mut self.rng));
            self.pending.push(point.clone());
            return point;
        }

        // Phase 2: surrogate-guided.
        let point = self.suggest();
        self.pending.push(point.clone());
        point
    }

    /// Report the objective value for a previously asked point. Points
    /// never asked are accepted too (e.g. seeding with the baseline).
    pub fn tell(&mut self, point: Point, value: f64) {
        assert!(
            value.is_finite(),
            "objective value must be finite, got {value}"
        );
        let sanitized = self.space.sanitize(&point);
        if let Some(i) = self
            .pending
            .iter()
            .position(|p| points_equal(p, &sanitized))
        {
            self.pending.swap_remove(i);
        }
        self.xs.push(sanitized);
        self.ys.push(value);
    }

    /// Fit the configured surrogate on the observations plus constant-liar
    /// pending points, in unit coordinates.
    fn fit_model(&mut self) -> Box<dyn crate::surrogate::Surrogate> {
        let liar = self.ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut x_unit: Vec<Vec<f64>> = self.xs.iter().map(|p| self.space.to_unit(p)).collect();
        let mut y: Vec<f64> = self.ys.clone();
        for p in &self.pending {
            x_unit.push(self.space.to_unit(p));
            y.push(liar);
        }
        let mut model = self.kind.build(self.seed ^ self.xs.len() as u64);
        model.fit(&x_unit, &y);
        model
    }

    fn suggest(&mut self) -> Point {
        let model = self.fit_model();
        let best_y = self.ys.iter().cloned().fold(f64::INFINITY, f64::min);

        // Update hedge gains from the previous round's member proposals,
        // using the refreshed model (probability matching on estimated
        // outcome, as in scikit-optimize).
        if self.acq == Acquisition::GpHedge {
            let proposals = std::mem::take(&mut self.hedge_proposals);
            for (member, p) in proposals {
                let (mean, _) = model.predict(&self.space.to_unit(&p));
                self.hedge.update(member, -mean);
            }
        }

        // Candidate pool: global uniform + local perturbations of the best.
        let mut candidates: Vec<Point> = Vec::with_capacity(self.n_candidates);
        let n_local = self.n_candidates / 4;
        for _ in 0..(self.n_candidates - n_local) {
            candidates.push(self.space.sample(&mut self.rng));
        }
        if let Some((best_x, _)) = self.best() {
            let unit_best = self.space.to_unit(&best_x);
            for _ in 0..n_local {
                let perturbed: Vec<f64> = unit_best
                    .iter()
                    .map(|&u| {
                        let step = 0.1 * (self.rng.gen::<f64>() - 0.5) * 2.0;
                        (u + step).clamp(0.0, 1.0)
                    })
                    .collect();
                candidates.push(self.space.from_unit(&perturbed));
            }
        }
        // Drop duplicates of evaluated/pending points (integer spaces
        // collide often); keep at least one candidate.
        candidates.retain(|c| {
            !self.xs.iter().any(|x| points_equal(x, c))
                && !self.pending.iter().any(|p| points_equal(p, c))
        });
        if candidates.is_empty() {
            return self.space.sample(&mut self.rng);
        }

        // Predict the whole pool once: every acquisition member ranks the
        // same (mean, std) table, so under gp_hedge the surrogate runs one
        // batch prediction instead of one full pass per member.
        let units: Vec<Vec<f64>> = candidates.iter().map(|c| self.space.to_unit(c)).collect();
        let preds = model.predict_many(&units);

        let pick_best = |acq: &Acquisition| -> Point {
            let mut best_score = f64::NEG_INFINITY;
            let mut best_idx = 0;
            for (i, &(mean, std)) in preds.iter().enumerate() {
                let score = acq.score(mean, std, best_y);
                if score > best_score {
                    best_score = score;
                    best_idx = i;
                }
            }
            candidates[best_idx].clone()
        };

        match self.acq {
            Acquisition::GpHedge => {
                // Each member proposes; probability matching picks one.
                let members = self.hedge.members().to_vec();
                let proposals: Vec<Point> = members.iter().map(pick_best).collect();
                self.hedge_proposals = proposals.iter().cloned().enumerate().collect();
                let chosen = self.hedge.choose(self.rng.gen::<f64>());
                proposals[chosen].clone()
            }
            ref acq => pick_best(acq),
        }
    }
}

fn points_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shifted sphere on a mixed int/real space.
    fn objective(p: &[f64]) -> f64 {
        (p[0] - 7.0).powi(2) + (p[1] - 0.25).powi(2) * 16.0
    }

    fn space() -> Space {
        Space::new().int("i", 0, 20).real("r", 0.0, 1.0)
    }

    #[test]
    fn initial_points_follow_design() {
        let mut opt = BayesOpt::new(space(), 1)
            .n_initial_points(8)
            .initial_point_generator(InitialDesign::Lhs);
        let mut pts = Vec::new();
        for _ in 0..8 {
            let p = opt.ask();
            assert!(opt.space().contains(&p));
            pts.push(p.clone());
            opt.tell(p, 1.0);
        }
        // LHS over 8 samples in [0,20] ints: strata are 2.6 integers wide,
        // so adjacent strata may share a boundary integer — but most
        // samples must still land on distinct values (pure random sampling
        // collides far more).
        let distinct: std::collections::BTreeSet<i64> = pts.iter().map(|p| p[0] as i64).collect();
        assert!(distinct.len() >= 6, "{distinct:?}");
    }

    #[test]
    fn converges_near_optimum_on_sphere() {
        for acq in [
            Acquisition::Ei,
            Acquisition::Lcb { kappa: 1.96 },
            Acquisition::GpHedge,
        ] {
            let mut opt = BayesOpt::new(space(), 42)
                .base_estimator(SurrogateKind::ExtraTrees)
                .acq_func(acq)
                .n_initial_points(10);
            for _ in 0..40 {
                let p = opt.ask();
                let y = objective(&p);
                opt.tell(p, y);
            }
            let (bx, by) = opt.best().unwrap();
            assert!(
                by < 2.5,
                "{acq:?}: best {by} at {bx:?} — did not approach optimum"
            );
        }
    }

    #[test]
    fn async_asks_differ_under_constant_liar() {
        let mut opt = BayesOpt::new(space(), 7).n_initial_points(4);
        // Complete the initial phase.
        for _ in 0..4 {
            let p = opt.ask();
            let y = objective(&p);
            opt.tell(p, y);
        }
        // Ask several points without telling: they must not all collapse
        // onto the same candidate.
        let a = opt.ask();
        let b = opt.ask();
        let c = opt.ask();
        assert_eq!(opt.n_pending(), 3);
        assert!(
            !(points_equal(&a, &b) && points_equal(&b, &c)),
            "constant liar failed: {a:?} {b:?} {c:?}"
        );
        opt.tell(a, 1.0);
        opt.tell(b, 2.0);
        opt.tell(c, 3.0);
        assert_eq!(opt.n_pending(), 0);
        assert_eq!(opt.n_observed(), 7);
    }

    #[test]
    fn tell_accepts_unasked_seed_points() {
        let mut opt = BayesOpt::new(space(), 1);
        opt.tell(vec![7.0, 0.25], 0.0); // seed with the known optimum
        assert_eq!(opt.n_observed(), 1);
        assert_eq!(opt.best().unwrap().1, 0.0);
    }

    #[test]
    fn best_tracks_minimum() {
        let mut opt = BayesOpt::new(space(), 1);
        opt.tell(vec![1.0, 0.5], 5.0);
        opt.tell(vec![2.0, 0.5], 3.0);
        opt.tell(vec![3.0, 0.5], 4.0);
        let (bx, by) = opt.best().unwrap();
        assert_eq!(by, 3.0);
        assert_eq!(bx[0], 2.0);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed| {
            let mut opt = BayesOpt::new(space(), seed).n_initial_points(5);
            let mut trace = Vec::new();
            for _ in 0..12 {
                let p = opt.ask();
                let y = objective(&p);
                trace.push((p.clone(), y));
                opt.tell(p, y);
            }
            trace
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_tell_rejected() {
        let mut opt = BayesOpt::new(space(), 1);
        opt.tell(vec![1.0, 0.5], f64::NAN);
    }

    #[test]
    fn gp_surrogate_also_converges() {
        let mut opt = BayesOpt::new(space(), 5)
            .base_estimator(SurrogateKind::GpRbf)
            .acq_func(Acquisition::Ei)
            .n_initial_points(8);
        for _ in 0..25 {
            let p = opt.ask();
            let y = objective(&p);
            opt.tell(p, y);
        }
        assert!(opt.best().unwrap().1 < 4.0);
    }
}
