//! Simulated annealing with geometric cooling.

use super::{Metaheuristic, RunResult};
use crate::space::Space;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Single-chain simulated annealing: Gaussian proposals in the unit cube,
/// Metropolis acceptance, geometric temperature schedule scaled to the
/// evaluation budget.
pub struct SimulatedAnnealing {
    rng: StdRng,
    /// Initial temperature (relative to objective scale; adapted from the
    /// first proposals).
    pub t0: f64,
    /// Final temperature as a fraction of `t0`.
    pub t_final_frac: f64,
    /// Proposal step as a fraction of the unit range.
    pub step: f64,
}

impl SimulatedAnnealing {
    /// Default configuration.
    pub fn new(seed: u64) -> Self {
        SimulatedAnnealing {
            rng: StdRng::seed_from_u64(seed),
            t0: 1.0,
            t_final_frac: 1e-4,
            step: 0.15,
        }
    }

    fn gaussian(&mut self) -> f64 {
        // Box–Muller.
        let u1: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Metaheuristic for SimulatedAnnealing {
    fn minimize(
        &mut self,
        space: &Space,
        f: &mut dyn FnMut(&[f64]) -> f64,
        max_evals: usize,
    ) -> RunResult {
        let dims = space.len();
        let mut current: Vec<f64> = (0..dims).map(|_| self.rng.gen::<f64>()).collect();
        let x0 = space.from_unit(&current);
        let mut current_f = f(&x0);
        let mut evals = 1usize;
        let mut best_x = x0;
        let mut best_f = current_f;
        let mut history = vec![best_f];

        // Calibrate t0 to the objective scale with a few probing moves so
        // early acceptance is ~uphill-friendly regardless of units.
        let mut probe_deltas = Vec::new();
        for _ in 0..5.min(max_evals.saturating_sub(evals)) {
            let cand: Vec<f64> = current
                .iter()
                .map(|&u| (u + self.step * self.gaussian()).clamp(0.0, 1.0))
                .collect();
            let y = f(&space.from_unit(&cand));
            evals += 1;
            probe_deltas.push((y - current_f).abs());
            if y < best_f {
                best_f = y;
                best_x = space.from_unit(&cand);
            }
        }
        let scale = probe_deltas.iter().cloned().fold(0.0, f64::max).max(1e-9);
        let t0 = self.t0 * scale;
        let t_final = t0 * self.t_final_frac;
        let budget = max_evals.saturating_sub(evals).max(1);
        let cooling = (t_final / t0).powf(1.0 / budget as f64);

        let mut temp = t0;
        while evals < max_evals {
            let cand: Vec<f64> = current
                .iter()
                .map(|&u| (u + self.step * self.gaussian()).clamp(0.0, 1.0))
                .collect();
            let x = space.from_unit(&cand);
            let y = f(&x);
            evals += 1;
            let accept = y <= current_f || self.rng.gen::<f64>() < ((current_f - y) / temp).exp();
            if accept {
                current = cand;
                current_f = y;
                if y < best_f {
                    best_f = y;
                    best_x = x;
                }
            }
            temp *= cooling;
            if evals.is_multiple_of(50) {
                history.push(best_f);
            }
        }
        history.push(best_f);

        RunResult {
            best_x,
            best_f,
            evals,
            history,
        }
    }

    fn name(&self) -> &'static str {
        "simulated_annealing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_uphill_early_rejects_late() {
        // Indirect check through behaviour: on a deceptive function SA must
        // still end at a decent minimum because late-phase temp is tiny.
        let space = Space::new().real("x", -3.0, 3.0);
        let mut sa = SimulatedAnnealing::new(2);
        let mut f = |p: &[f64]| p[0].abs().sqrt() + (4.0 * p[0]).sin() * 0.3 + 0.3;
        let r = sa.minimize(&space, &mut f, 4000);
        assert!(r.best_f < 0.35, "best {}", r.best_f);
    }
}
