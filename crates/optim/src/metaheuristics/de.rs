//! Differential evolution (DE/rand/1/bin).

use super::{Metaheuristic, RunResult};
use crate::space::{Point, Space};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Classic DE/rand/1/bin with reflection at the unit-cube boundary.
pub struct DifferentialEvolution {
    rng: StdRng,
    /// Population size.
    pub pop_size: usize,
    /// Differential weight F.
    pub weight: f64,
    /// Crossover probability CR.
    pub crossover: f64,
}

impl DifferentialEvolution {
    /// Default configuration (population 30, F=0.7, CR=0.9).
    pub fn new(seed: u64) -> Self {
        DifferentialEvolution {
            rng: StdRng::seed_from_u64(seed),
            pop_size: 30,
            weight: 0.7,
            crossover: 0.9,
        }
    }
}

/// Reflect a coordinate into `[0, 1]`.
fn reflect(x: f64) -> f64 {
    let mut x = x;
    while !(0.0..=1.0).contains(&x) {
        if x < 0.0 {
            x = -x;
        } else {
            x = 2.0 - x;
        }
    }
    x
}

impl Metaheuristic for DifferentialEvolution {
    fn minimize(
        &mut self,
        space: &Space,
        f: &mut dyn FnMut(&[f64]) -> f64,
        max_evals: usize,
    ) -> RunResult {
        let dims = space.len();
        let pop_size = self.pop_size.max(4).min(max_evals.max(4));
        let mut pop: Vec<Vec<f64>> = (0..pop_size)
            .map(|_| (0..dims).map(|_| self.rng.gen::<f64>()).collect())
            .collect();
        let mut evals = 0usize;
        let mut fitness: Vec<f64> = Vec::with_capacity(pop_size);
        let mut best_x: Option<Point> = None;
        let mut best_f = f64::INFINITY;
        for ind in &pop {
            let x = space.from_unit(ind);
            let y = f(&x);
            evals += 1;
            if y < best_f {
                best_f = y;
                best_x = Some(x);
            }
            fitness.push(y);
        }
        let mut history = vec![best_f];

        'outer: loop {
            for i in 0..pop_size {
                if evals >= max_evals {
                    break 'outer;
                }
                // Pick three distinct partners != i.
                let mut pick = || loop {
                    let j = self.rng.gen_range(0..pop_size);
                    if j != i {
                        return j;
                    }
                };
                let (a, b, c) = (pick(), pick(), pick());
                let j_rand = self.rng.gen_range(0..dims);
                let mut trial = pop[i].clone();
                for j in 0..dims {
                    if j == j_rand || self.rng.gen::<f64>() < self.crossover {
                        trial[j] = reflect(pop[a][j] + self.weight * (pop[b][j] - pop[c][j]));
                    }
                }
                let x = space.from_unit(&trial);
                let y = f(&x);
                evals += 1;
                if y <= fitness[i] {
                    pop[i] = trial;
                    fitness[i] = y;
                    if y < best_f {
                        best_f = y;
                        best_x = Some(x);
                    }
                }
            }
            history.push(best_f);
        }
        history.push(best_f);

        RunResult {
            best_x: best_x.expect("at least one evaluation"),
            best_f,
            evals,
            history,
        }
    }

    fn name(&self) -> &'static str {
        "differential_evolution"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reflect_stays_in_unit() {
        for x in [-0.3, 1.4, 2.7, -1.9, 0.5] {
            let r = reflect(x);
            assert!((0.0..=1.0).contains(&r), "{x} -> {r}");
        }
        assert_eq!(reflect(0.0), 0.0);
        assert_eq!(reflect(1.0), 1.0);
        assert!((reflect(-0.25) - 0.25).abs() < 1e-12);
        assert!((reflect(1.25) - 0.75).abs() < 1e-12);
    }
}
