//! Particle swarm optimization (global-best topology).

use super::{Metaheuristic, RunResult};
use crate::space::{Point, Space};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Canonical PSO with inertia weight and velocity clamping in the unit
/// cube.
pub struct ParticleSwarm {
    rng: StdRng,
    /// Swarm size.
    pub swarm: usize,
    /// Inertia weight ω.
    pub inertia: f64,
    /// Cognitive coefficient c₁.
    pub cognitive: f64,
    /// Social coefficient c₂.
    pub social: f64,
    /// Max |velocity| per dimension (unit-range fraction).
    pub v_max: f64,
}

impl ParticleSwarm {
    /// Default configuration (swarm of 30, ω=0.72, c₁=c₂=1.49).
    pub fn new(seed: u64) -> Self {
        ParticleSwarm {
            rng: StdRng::seed_from_u64(seed),
            swarm: 30,
            inertia: 0.72,
            cognitive: 1.49,
            social: 1.49,
            v_max: 0.25,
        }
    }
}

impl Metaheuristic for ParticleSwarm {
    fn minimize(
        &mut self,
        space: &Space,
        f: &mut dyn FnMut(&[f64]) -> f64,
        max_evals: usize,
    ) -> RunResult {
        let dims = space.len();
        let swarm = self.swarm.max(2).min(max_evals.max(2));
        let mut pos: Vec<Vec<f64>> = (0..swarm)
            .map(|_| (0..dims).map(|_| self.rng.gen::<f64>()).collect())
            .collect();
        let mut vel: Vec<Vec<f64>> = (0..swarm)
            .map(|_| {
                (0..dims)
                    .map(|_| (self.rng.gen::<f64>() - 0.5) * self.v_max)
                    .collect()
            })
            .collect();
        let mut evals = 0usize;
        let mut pbest = pos.clone();
        let mut pbest_f = Vec::with_capacity(swarm);
        let mut gbest: Option<Vec<f64>> = None;
        let mut gbest_f = f64::INFINITY;
        let mut gbest_x: Option<Point> = None;
        for p in &pos {
            let x = space.from_unit(p);
            let y = f(&x);
            evals += 1;
            pbest_f.push(y);
            if y < gbest_f {
                gbest_f = y;
                gbest = Some(p.clone());
                gbest_x = Some(x);
            }
        }
        let mut history = vec![gbest_f];

        while evals + swarm <= max_evals {
            let g = gbest.clone().expect("swarm evaluated");
            for i in 0..swarm {
                for d in 0..dims {
                    let r1: f64 = self.rng.gen();
                    let r2: f64 = self.rng.gen();
                    let v = self.inertia * vel[i][d]
                        + self.cognitive * r1 * (pbest[i][d] - pos[i][d])
                        + self.social * r2 * (g[d] - pos[i][d]);
                    vel[i][d] = v.clamp(-self.v_max, self.v_max);
                    pos[i][d] = (pos[i][d] + vel[i][d]).clamp(0.0, 1.0);
                }
                let x = space.from_unit(&pos[i]);
                let y = f(&x);
                evals += 1;
                if y < pbest_f[i] {
                    pbest_f[i] = y;
                    pbest[i] = pos[i].clone();
                }
                if y < gbest_f {
                    gbest_f = y;
                    gbest = Some(pos[i].clone());
                    gbest_x = Some(x);
                }
            }
            history.push(gbest_f);
        }

        RunResult {
            best_x: gbest_x.expect("at least one evaluation"),
            best_f: gbest_f,
            evals,
            history,
        }
    }

    fn name(&self) -> &'static str {
        "particle_swarm"
    }
}
