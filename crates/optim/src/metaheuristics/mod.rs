//! Metaheuristics for short-running applications.
//!
//! Phase II distinguishes long-running workflows (Bayesian optimization)
//! from short-running ones, which "can use other optimization techniques
//! such as evolutionary algorithms and swarm intelligence": Genetic
//! Algorithm, Differential Evolution, Simulated Annealing and Particle
//! Swarm Optimization. All four live here behind [`Metaheuristic`].

mod de;
mod ga;
mod pso;
mod sa;

pub use de::DifferentialEvolution;
pub use ga::GeneticAlgorithm;
pub use pso::ParticleSwarm;
pub use sa::SimulatedAnnealing;

use crate::space::{Point, Space};

/// Result of a metaheuristic run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Best point found (external units).
    pub best_x: Point,
    /// Its objective value.
    pub best_f: f64,
    /// Total objective evaluations.
    pub evals: usize,
    /// Best-so-far value after each generation/iteration.
    pub history: Vec<f64>,
}

/// A derivative-free minimizer over a [`Space`].
pub trait Metaheuristic {
    /// Minimize `f` with an evaluation budget of (approximately)
    /// `max_evals` calls. Implementations are deterministic for a given
    /// seed (provided at construction).
    fn minimize(
        &mut self,
        space: &Space,
        f: &mut dyn FnMut(&[f64]) -> f64,
        max_evals: usize,
    ) -> RunResult;

    /// Human-readable algorithm name.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rastrigin-lite: multimodal but with a clear global minimum at the
    /// center of the space.
    fn rastrigin(p: &[f64]) -> f64 {
        p.iter()
            .map(|&x| x * x - 5.0 * (2.0 * std::f64::consts::PI * x).cos() + 5.0)
            .sum()
    }

    fn sphere(p: &[f64]) -> f64 {
        p.iter().map(|&x| (x - 1.0) * (x - 1.0)).sum()
    }

    fn space_2d() -> Space {
        Space::new().real("x", -5.0, 5.0).real("y", -5.0, 5.0)
    }

    fn all_algos(seed: u64) -> Vec<Box<dyn Metaheuristic>> {
        vec![
            Box::new(GeneticAlgorithm::new(seed)),
            Box::new(DifferentialEvolution::new(seed)),
            Box::new(SimulatedAnnealing::new(seed)),
            Box::new(ParticleSwarm::new(seed)),
        ]
    }

    #[test]
    fn all_algorithms_minimize_the_sphere() {
        let space = space_2d();
        for mut algo in all_algos(3) {
            let mut f = sphere;
            let result = algo.minimize(&space, &mut f, 3000);
            assert!(
                result.best_f < 0.05,
                "{}: best {} at {:?}",
                algo.name(),
                result.best_f,
                result.best_x
            );
            assert!(result.evals <= 3300, "{} overspent budget", algo.name());
            assert!(space.contains(&space.sanitize(&result.best_x)));
        }
    }

    #[test]
    fn all_algorithms_handle_multimodal() {
        let space = space_2d();
        for mut algo in all_algos(7) {
            let mut f = rastrigin;
            let result = algo.minimize(&space, &mut f, 6000);
            // Global minimum is 0 at origin; accept any good basin.
            assert!(
                result.best_f < 3.0,
                "{}: best {}",
                algo.name(),
                result.best_f
            );
        }
    }

    #[test]
    fn history_is_monotone_nonincreasing() {
        let space = space_2d();
        for mut algo in all_algos(11) {
            let mut f = sphere;
            let result = algo.minimize(&space, &mut f, 1500);
            for w in result.history.windows(2) {
                assert!(
                    w[1] <= w[0] + 1e-12,
                    "{}: history regressed {w:?}",
                    algo.name()
                );
            }
            assert_eq!(
                *result.history.last().unwrap(),
                result.best_f,
                "{}",
                algo.name()
            );
        }
    }

    #[test]
    fn integer_spaces_yield_integer_points() {
        let space = Space::new().int("a", 0, 10).int("b", -5, 5);
        for mut algo in all_algos(13) {
            let mut f = |p: &[f64]| (p[0] - 4.0).powi(2) + (p[1] - 1.0).powi(2);
            let result = algo.minimize(&space, &mut f, 800);
            assert!(
                space.contains(&result.best_x),
                "{}: {:?} not in space",
                algo.name(),
                result.best_x
            );
            assert_eq!(result.best_x[0].fract(), 0.0, "{}", algo.name());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let space = space_2d();
        for make in [
            |s| -> Box<dyn Metaheuristic> { Box::new(GeneticAlgorithm::new(s)) },
            |s| -> Box<dyn Metaheuristic> { Box::new(ParticleSwarm::new(s)) },
        ] {
            let mut f1 = sphere;
            let mut f2 = sphere;
            let r1 = make(5).minimize(&space, &mut f1, 1000);
            let r2 = make(5).minimize(&space, &mut f2, 1000);
            assert_eq!(r1.best_x, r2.best_x);
            assert_eq!(r1.best_f, r2.best_f);
        }
    }
}
