//! Real-coded genetic algorithm.

use super::{Metaheuristic, RunResult};
use crate::space::{Point, Space};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generational GA: tournament selection, blend crossover, Gaussian
/// mutation, elitism of one.
pub struct GeneticAlgorithm {
    rng: StdRng,
    /// Population size.
    pub pop_size: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Mutation step as a fraction of each dimension's unit range.
    pub mutation_sigma: f64,
    /// Probability of crossover (vs. cloning a parent).
    pub crossover_rate: f64,
    /// Tournament size.
    pub tournament: usize,
}

impl GeneticAlgorithm {
    /// Default configuration (population 40).
    pub fn new(seed: u64) -> Self {
        GeneticAlgorithm {
            rng: StdRng::seed_from_u64(seed),
            pop_size: 40,
            mutation_rate: 0.15,
            mutation_sigma: 0.1,
            crossover_rate: 0.9,
            tournament: 3,
        }
    }

    fn tournament_pick(&mut self, fitness: &[f64]) -> usize {
        let n = fitness.len();
        let mut best = self.rng.gen_range(0..n);
        for _ in 1..self.tournament {
            let c = self.rng.gen_range(0..n);
            if fitness[c] < fitness[best] {
                best = c;
            }
        }
        best
    }
}

impl Metaheuristic for GeneticAlgorithm {
    fn minimize(
        &mut self,
        space: &Space,
        f: &mut dyn FnMut(&[f64]) -> f64,
        max_evals: usize,
    ) -> RunResult {
        let dims = space.len();
        let pop_size = self.pop_size.min(max_evals.max(2));
        // Work in unit coordinates; evaluate in external units.
        let mut pop: Vec<Vec<f64>> = (0..pop_size)
            .map(|_| (0..dims).map(|_| self.rng.gen::<f64>()).collect())
            .collect();
        let eval = |unit: &[f64], f: &mut dyn FnMut(&[f64]) -> f64| -> (Point, f64) {
            let x = space.from_unit(unit);
            let y = f(&x);
            (x, y)
        };
        let mut evals = 0usize;
        let mut fitness = Vec::with_capacity(pop_size);
        let mut best_x: Option<Point> = None;
        let mut best_f = f64::INFINITY;
        for ind in &pop {
            let (x, y) = eval(ind, f);
            evals += 1;
            if y < best_f {
                best_f = y;
                best_x = Some(x);
            }
            fitness.push(y);
        }
        let mut history = vec![best_f];

        while evals + pop_size <= max_evals {
            let elite = fitness
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("NaN fitness"))
                .map(|(i, _)| i)
                .expect("non-empty population");
            let mut next = vec![pop[elite].clone()];
            while next.len() < pop_size {
                let p1 = self.tournament_pick(&fitness);
                let p2 = self.tournament_pick(&fitness);
                let mut child: Vec<f64> = if self.rng.gen::<f64>() < self.crossover_rate {
                    // BLX-style blend per gene.
                    pop[p1]
                        .iter()
                        .zip(&pop[p2])
                        .map(|(&a, &b)| {
                            let w = self.rng.gen::<f64>();
                            a * w + b * (1.0 - w)
                        })
                        .collect()
                } else {
                    pop[p1].clone()
                };
                for g in child.iter_mut() {
                    if self.rng.gen::<f64>() < self.mutation_rate {
                        let step = self.mutation_sigma * 2.0 * (self.rng.gen::<f64>() - 0.5);
                        *g = (*g + step).clamp(0.0, 1.0);
                    }
                }
                next.push(child);
            }
            pop = next;
            fitness.clear();
            for ind in &pop {
                let (x, y) = eval(ind, f);
                evals += 1;
                if y < best_f {
                    best_f = y;
                    best_x = Some(x);
                }
                fitness.push(y);
            }
            history.push(best_f);
        }

        RunResult {
            best_x: best_x.expect("at least one evaluation"),
            best_f,
            evals,
            history,
        }
    }

    fn name(&self) -> &'static str {
        "genetic_algorithm"
    }
}
