//! Small dense linear algebra for the surrogate models.
//!
//! Only what Gaussian processes, kernel ridge and polynomial least squares
//! need: a row-major matrix, Cholesky factorization/solves, and Householder
//! QR least squares. Sizes here are tiny (tens to low hundreds of training
//! points), so clarity wins over blocking/SIMD tricks.

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a row-major vector (length must equal `rows * cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// View a row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions differ");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "shape mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Error from a failed factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPositiveDefinite;

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite")
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Lower-triangular Cholesky factor `L` with `L Lᵀ = A`.
///
/// `A` must be symmetric positive definite; kernel matrices get a jitter
/// added by the caller before factorization.
pub fn cholesky(a: &Matrix) -> Result<Matrix, NotPositiveDefinite> {
    assert_eq!(a.rows, a.cols, "cholesky needs a square matrix");
    let n = a.rows;
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(NotPositiveDefinite);
                }
                l[(i, i)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solve `L y = b` (forward substitution) for lower-triangular `L`.
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows;
    assert_eq!(b.len(), n);
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
    y
}

/// Solve `Lᵀ x = y` (back substitution) for lower-triangular `L`.
pub fn solve_upper_t(l: &Matrix, y: &[f64]) -> Vec<f64> {
    let n = l.rows;
    assert_eq!(y.len(), n);
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    x
}

/// Solve `A x = b` given the Cholesky factor `L` of `A`.
pub fn cho_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    solve_upper_t(l, &solve_lower(l, b))
}

/// Least-squares solution of `A x ≈ b` via Householder QR with column
/// checks. `A` is `m × n` with `m ≥ n`; returns the `n`-vector `x`.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Vec<f64> {
    let m = a.rows;
    let n = a.cols;
    assert!(m >= n, "lstsq needs at least as many rows as columns");
    assert_eq!(b.len(), m);
    // Work on copies: R in `r`, transformed b in `qtb`.
    let mut r = a.clone();
    let mut qtb = b.to_vec();
    for k in 0..n {
        // Householder vector for column k below the diagonal.
        let mut norm = 0.0;
        for i in k..m {
            norm += r[(i, k)] * r[(i, k)];
        }
        let norm = norm.sqrt();
        if norm == 0.0 {
            continue; // zero column: leave as-is; diagonal will be ~0
        }
        let alpha = if r[(k, k)] > 0.0 { -norm } else { norm };
        let mut v: Vec<f64> = (k..m).map(|i| r[(i, k)]).collect();
        v[0] -= alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 < f64::MIN_POSITIVE {
            continue;
        }
        // Apply H = I - 2 v vᵀ / (vᵀv) to the remaining columns and to b.
        for j in k..n {
            let dot: f64 = (k..m).map(|i| v[i - k] * r[(i, j)]).sum();
            let scale = 2.0 * dot / vnorm2;
            for i in k..m {
                r[(i, j)] -= scale * v[i - k];
            }
        }
        let dot: f64 = (k..m).map(|i| v[i - k] * qtb[i]).sum();
        let scale = 2.0 * dot / vnorm2;
        for i in k..m {
            qtb[i] -= scale * v[i - k];
        }
    }
    // Back substitution on the upper-triangular R.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = qtb[i];
        for j in i + 1..n {
            sum -= r[(i, j)] * x[j];
        }
        let d = r[(i, i)];
        // Rank-deficient columns get a zero coefficient instead of NaN.
        x[i] = if d.abs() < 1e-12 { 0.0 } else { sum / d };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = a.transpose();
        let c = a.matmul(&b); // 2x2: [[14,32],[32,77]]
        assert_eq!(c[(0, 0)], 14.0);
        assert_eq!(c[(0, 1)], 32.0);
        assert_eq!(c[(1, 1)], 77.0);
    }

    #[test]
    fn matvec_works() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn eye_is_identity() {
        let i = Matrix::eye(3);
        let a = Matrix::from_vec(3, 3, (1..=9).map(|x| x as f64).collect());
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn cholesky_reconstructs() {
        // A = M Mᵀ is SPD for a full-rank M.
        let m = Matrix::from_vec(3, 3, vec![2.0, 0.0, 0.0, 1.0, 3.0, 0.0, 0.5, 1.0, 1.5]);
        let a = m.matmul(&m.transpose());
        let l = cholesky(&a).unwrap();
        let rebuilt = l.matmul(&l.transpose());
        for i in 0..3 {
            assert_close(rebuilt.row(i), a.row(i), 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert_eq!(cholesky(&a), Err(NotPositiveDefinite));
    }

    #[test]
    fn cho_solve_solves() {
        let m = Matrix::from_vec(3, 3, vec![2.0, 0.0, 0.0, 1.0, 3.0, 0.0, 0.5, 1.0, 1.5]);
        let a = m.matmul(&m.transpose());
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let l = cholesky(&a).unwrap();
        let x = cho_solve(&l, &b);
        assert_close(&x, &x_true, 1e-10);
    }

    #[test]
    fn lstsq_exact_system() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = lstsq(&a, &[5.0, 10.0]);
        assert_close(&x, &[1.0, 3.0], 1e-10);
    }

    #[test]
    fn lstsq_overdetermined_line_fit() {
        // Fit y = 2x + 1 with design matrix [1, x].
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let mut data = Vec::new();
        let mut b = Vec::new();
        for &x in &xs {
            data.push(1.0);
            data.push(x);
            b.push(2.0 * x + 1.0);
        }
        let a = Matrix::from_vec(xs.len(), 2, data);
        let x = lstsq(&a, &b);
        assert_close(&x, &[1.0, 2.0], 1e-10);
    }

    #[test]
    fn lstsq_rank_deficient_returns_finite() {
        // Duplicate column: coefficient split is ambiguous; just require a
        // finite solution reproducing b.
        let a = Matrix::from_vec(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let x = lstsq(&a, &[2.0, 4.0, 6.0]);
        assert!(x.iter().all(|v| v.is_finite()));
        let pred = a.matvec(&x);
        assert_close(&pred, &[2.0, 4.0, 6.0], 1e-8);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
