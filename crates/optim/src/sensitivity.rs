//! Sensitivity analysis: One-at-a-time (OAT) and Morris elementary
//! effects.
//!
//! §IV-C of the paper refines the preliminary optimum with OAT — varying
//! the `extract` pool ±2 and the `simsearch` pool ±3 around the optimum
//! and re-running the experiment for each variant. [`OatPlan`] generates
//! exactly those configurations; [`morris`] implements the screening
//! method the OAT literature (Hamby, ref. [43]) positions it against.

use crate::space::{Point, Space};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An OAT experiment plan around a center point.
#[derive(Debug, Clone)]
pub struct OatPlan {
    center: Point,
    /// `(dimension index, value)` for every variant, center excluded.
    variants: Vec<(usize, f64)>,
}

impl OatPlan {
    /// Vary each listed dimension over `center ± delta` in integer steps
    /// (for real dimensions, in `levels` evenly spaced offsets), keeping
    /// all other coordinates at the center. Values falling outside the
    /// space are dropped.
    pub fn around(space: &Space, center: &[f64], deltas: &[(usize, f64)]) -> OatPlan {
        assert!(space.contains(center), "center {center:?} not in space");
        let mut variants = Vec::new();
        for &(dim, delta) in deltas {
            assert!(dim < space.len(), "dimension {dim} out of range");
            assert!(delta > 0.0, "delta must be positive");
            let steps = delta.round() as i64;
            for off in -steps..=steps {
                if off == 0 {
                    continue;
                }
                let v = center[dim] + off as f64;
                let mut candidate = center.to_vec();
                candidate[dim] = v;
                if space.contains(&candidate) {
                    variants.push((dim, v));
                }
            }
        }
        OatPlan {
            center: center.to_vec(),
            variants,
        }
    }

    /// The unmodified center point.
    pub fn center(&self) -> &Point {
        &self.center
    }

    /// All configurations to evaluate: the center first, then each
    /// one-dimension variant.
    pub fn configurations(&self) -> Vec<Point> {
        let mut out = vec![self.center.clone()];
        for &(dim, v) in &self.variants {
            let mut p = self.center.clone();
            p[dim] = v;
            out.push(p);
        }
        out
    }

    /// Variants touching one dimension, as `(value, full point)` sorted by
    /// value — the rows of a Fig. 9/10-style sweep (includes the center).
    pub fn sweep_of(&self, dim: usize) -> Vec<(f64, Point)> {
        let mut rows: Vec<(f64, Point)> = self
            .variants
            .iter()
            .filter(|&&(d, _)| d == dim)
            .map(|&(_, v)| {
                let mut p = self.center.clone();
                p[dim] = v;
                (v, p)
            })
            .collect();
        rows.push((self.center[dim], self.center.clone()));
        rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN value"));
        rows
    }

    /// Number of evaluations the plan requires (center + variants).
    pub fn len(&self) -> usize {
        self.variants.len() + 1
    }

    /// True when the plan has no variants (degenerate).
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }
}

/// Effect of one variable from an OAT sweep: the spread of the output over
/// its variation.
#[derive(Debug, Clone, PartialEq)]
pub struct OatEffect {
    /// Dimension index.
    pub dim: usize,
    /// Output at the center.
    pub center_output: f64,
    /// Minimum output over the sweep (and the value achieving it).
    pub best: (f64, f64),
    /// max(output) − min(output) over the sweep.
    pub range: f64,
}

/// Summarize OAT results: `outputs` must align with
/// [`OatPlan::configurations`].
pub fn oat_effects(plan: &OatPlan, outputs: &[f64]) -> Vec<OatEffect> {
    assert_eq!(
        outputs.len(),
        plan.len(),
        "one output per configuration required"
    );
    let center_output = outputs[0];
    let mut dims: Vec<usize> = plan.variants.iter().map(|&(d, _)| d).collect();
    dims.sort_unstable();
    dims.dedup();
    dims.into_iter()
        .map(|dim| {
            let mut lo = center_output;
            let mut hi = center_output;
            let mut best = (plan.center[dim], center_output);
            for (i, &(d, v)) in plan.variants.iter().enumerate() {
                if d != dim {
                    continue;
                }
                let y = outputs[i + 1];
                lo = lo.min(y);
                hi = hi.max(y);
                if y < best.1 {
                    best = (v, y);
                }
            }
            OatEffect {
                dim,
                center_output,
                best,
                range: hi - lo,
            }
        })
        .collect()
}

/// Morris elementary-effects screening: `r` random trajectories, each
/// perturbing every dimension once by `delta` (in unit coordinates).
/// Returns `(mu_star, sigma)` per dimension — mean absolute effect and
/// effect standard deviation.
pub fn morris(
    space: &Space,
    f: &mut dyn FnMut(&[f64]) -> f64,
    r: usize,
    seed: u64,
) -> Vec<(f64, f64)> {
    assert!(r >= 2, "need at least two trajectories");
    let dims = space.len();
    let delta = 0.25; // quarter of the unit range, a common choice
    let mut rng = StdRng::seed_from_u64(seed);
    let mut effects: Vec<Vec<f64>> = vec![Vec::with_capacity(r); dims];
    for _ in 0..r {
        // Random base point leaving room for +delta.
        let mut unit: Vec<f64> = (0..dims)
            .map(|_| rng.gen::<f64>() * (1.0 - delta))
            .collect();
        let mut y = f(&space.from_unit(&unit));
        // Random dimension order per trajectory.
        let mut order: Vec<usize> = (0..dims).collect();
        for i in (1..dims).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for &d in &order {
            unit[d] += delta;
            let y2 = f(&space.from_unit(&unit));
            effects[d].push((y2 - y) / delta);
            y = y2;
        }
    }
    effects
        .into_iter()
        .map(|e| {
            let n = e.len() as f64;
            let mu_star = e.iter().map(|x| x.abs()).sum::<f64>() / n;
            let mean = e.iter().sum::<f64>() / n;
            let var = e.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            (mu_star, var.sqrt())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plantnet_space() -> Space {
        Space::plantnet()
    }

    #[test]
    fn oat_plan_matches_paper_counts() {
        // §IV-C: extract ±2 and simsearch ±3 around (54, 54, 53, 7) gives
        // 10 new configurations.
        let space = plantnet_space();
        let center = [54.0, 54.0, 53.0, 7.0];
        let plan = OatPlan::around(
            &space,
            &center,
            &[(3, 2.0), (2, 3.0)], // extract ±2, simsearch ±3
        );
        assert_eq!(plan.len() - 1, 10, "paper: 10 new configurations");
        // All configurations differ from the center in exactly one dim.
        for cfg in &plan.configurations()[1..] {
            let diffs = cfg
                .iter()
                .zip(center.iter())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diffs, 1, "{cfg:?}");
            assert!(space.contains(cfg));
        }
    }

    #[test]
    fn oat_plan_clips_at_bounds() {
        let space = plantnet_space();
        // extract center 8, ±2 would give 6,7,9,10 but 10 is out of bounds.
        let plan = OatPlan::around(&space, &[40.0, 40.0, 40.0, 8.0], &[(3, 2.0)]);
        let values: Vec<f64> = plan.sweep_of(3).iter().map(|(v, _)| *v).collect();
        assert_eq!(values, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn sweep_is_sorted_and_contains_center() {
        let space = plantnet_space();
        let plan = OatPlan::around(&space, &[54.0, 54.0, 53.0, 7.0], &[(3, 2.0)]);
        let sweep = plan.sweep_of(3);
        let values: Vec<f64> = sweep.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, vec![5.0, 6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn oat_effects_identify_the_sensitive_dimension() {
        let space = Space::new().int("a", 0, 10).int("b", 0, 10);
        let plan = OatPlan::around(&space, &[5.0, 5.0], &[(0, 2.0), (1, 2.0)]);
        // Output strongly depends on dim 0, weakly on dim 1.
        let outputs: Vec<f64> = plan
            .configurations()
            .iter()
            .map(|p| 10.0 * (p[0] - 3.0).powi(2) + 0.1 * p[1])
            .collect();
        let effects = oat_effects(&plan, &outputs);
        assert_eq!(effects.len(), 2);
        let e0 = effects.iter().find(|e| e.dim == 0).unwrap();
        let e1 = effects.iter().find(|e| e.dim == 1).unwrap();
        assert!(e0.range > e1.range * 10.0);
        assert_eq!(e0.best.0, 3.0, "best value of dim 0 is at a=3");
    }

    #[test]
    fn morris_ranks_variables_by_influence() {
        let space = Space::new()
            .real("strong", 0.0, 1.0)
            .real("weak", 0.0, 1.0)
            .real("inert", 0.0, 1.0);
        let mut f = |p: &[f64]| 10.0 * p[0] + 0.5 * p[1];
        let eff = morris(&space, &mut f, 8, 3);
        assert!(eff[0].0 > eff[1].0, "{eff:?}");
        assert!(eff[1].0 > eff[2].0, "{eff:?}");
        assert!(eff[2].0 < 1e-9);
        // Linear function: no interaction, sigma ~ 0.
        assert!(eff[0].1 < 1e-9, "{eff:?}");
    }

    #[test]
    fn morris_detects_interactions_via_sigma() {
        let space = Space::new().real("x", 0.0, 1.0).real("y", 0.0, 1.0);
        let mut f = |p: &[f64]| p[0] * p[1]; // pure interaction
        let eff = morris(&space, &mut f, 16, 5);
        assert!(eff[0].1 > 0.05, "interaction must show in sigma: {eff:?}");
    }

    #[test]
    #[should_panic(expected = "not in space")]
    fn center_outside_space_rejected() {
        let space = plantnet_space();
        OatPlan::around(&space, &[100.0, 40.0, 40.0, 7.0], &[(3, 1.0)]);
    }
}
