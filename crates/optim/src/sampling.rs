//! Initial experimental designs.
//!
//! Phase II of the methodology starts surrogate-model building by sampling
//! "a few sample points ... respecting the upper and lower limits of each
//! optimization variable", naming Latin Hypercube and low-discrepancy
//! sampling. All designs generate in the unit hypercube and map through the
//! [`Space`](crate::space::Space) so integer dimensions round correctly.

use crate::space::{Point, Space};
use rand::Rng;

/// The available initial designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitialDesign {
    /// i.i.d. uniform.
    Random,
    /// Latin Hypercube: one sample per stratum per dimension.
    Lhs,
    /// Halton low-discrepancy sequence (prime bases).
    Halton,
    /// Sobol low-discrepancy sequence (Joe–Kuo direction numbers, ≤ 8
    /// dimensions).
    Sobol,
    /// Full-factorial grid, truncated to the requested size.
    Grid,
}

impl InitialDesign {
    /// Parse a generator name as used in configuration files.
    pub fn from_name(name: &str) -> Option<InitialDesign> {
        Some(match name {
            "random" => InitialDesign::Random,
            "lhs" => InitialDesign::Lhs,
            "halton" => InitialDesign::Halton,
            "sobol" => InitialDesign::Sobol,
            "grid" => InitialDesign::Grid,
            _ => return None,
        })
    }

    /// Generate `n` points in external units.
    pub fn generate<R: Rng + ?Sized>(&self, space: &Space, n: usize, rng: &mut R) -> Vec<Point> {
        let unit = self.generate_unit(space.len(), n, rng);
        unit.into_iter().map(|u| space.from_unit(&u)).collect()
    }

    /// Generate `n` points in the unit hypercube.
    pub fn generate_unit<R: Rng + ?Sized>(
        &self,
        dims: usize,
        n: usize,
        rng: &mut R,
    ) -> Vec<Vec<f64>> {
        if n == 0 || dims == 0 {
            return Vec::new();
        }
        match self {
            InitialDesign::Random => (0..n)
                .map(|_| (0..dims).map(|_| rng.gen::<f64>()).collect())
                .collect(),
            InitialDesign::Lhs => lhs(dims, n, rng),
            InitialDesign::Halton => halton(dims, n),
            InitialDesign::Sobol => sobol(dims, n),
            InitialDesign::Grid => grid(dims, n),
        }
    }
}

/// Latin Hypercube: each dimension's `[0,1)` is split into `n` strata; a
/// random permutation assigns one stratum per sample, jittered within it.
fn lhs<R: Rng + ?Sized>(dims: usize, n: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let mut out = vec![vec![0.0; dims]; n];
    for d in 0..dims {
        let mut perm: Vec<usize> = (0..n).collect();
        // Fisher–Yates.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        for (i, row) in out.iter_mut().enumerate() {
            row[d] = (perm[i] as f64 + rng.gen::<f64>()) / n as f64;
        }
    }
    out
}

const PRIMES: [u32; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

/// Radical inverse of `i` in base `b`.
fn radical_inverse(mut i: u64, b: u64) -> f64 {
    let mut inv = 0.0;
    let mut frac = 1.0 / b as f64;
    while i > 0 {
        inv += (i % b) as f64 * frac;
        i /= b;
        frac /= b as f64;
    }
    inv
}

fn halton(dims: usize, n: usize) -> Vec<Vec<f64>> {
    assert!(
        dims <= PRIMES.len(),
        "Halton supports up to {} dimensions",
        PRIMES.len()
    );
    // Skip the first 20 points — the early Halton prefix is badly
    // correlated in higher bases.
    const SKIP: u64 = 20;
    (0..n as u64)
        .map(|i| {
            (0..dims)
                .map(|d| radical_inverse(i + 1 + SKIP, PRIMES[d] as u64))
                .collect()
        })
        .collect()
}

/// Joe–Kuo (new-joe-kuo-6) parameters for Sobol dimensions 2..=8:
/// (degree s, polynomial coefficient a, initial direction numbers m).
const SOBOL_PARAMS: [(u32, u32, &[u32]); 7] = [
    (1, 0, &[1]),
    (2, 1, &[1, 3]),
    (3, 1, &[1, 3, 1]),
    (3, 2, &[1, 1, 1]),
    (4, 1, &[1, 1, 3, 3]),
    (4, 4, &[1, 3, 5, 13]),
    (5, 2, &[1, 1, 5, 5, 17]),
];

const SOBOL_BITS: usize = 31;

/// Direction numbers `v[0..SOBOL_BITS]` for one dimension.
fn sobol_directions(dim: usize) -> Vec<u64> {
    let mut v = vec![0u64; SOBOL_BITS];
    if dim == 0 {
        // First dimension: van der Corput in base 2.
        for (k, slot) in v.iter_mut().enumerate() {
            *slot = 1 << (SOBOL_BITS - 1 - k);
        }
        return v;
    }
    let (s, a, m_init) = SOBOL_PARAMS[dim - 1];
    let s = s as usize;
    let mut m = vec![0u64; SOBOL_BITS];
    m[..s].copy_from_slice(&m_init.iter().map(|&x| x as u64).collect::<Vec<_>>()[..s]);
    for k in s..SOBOL_BITS {
        let mut val = m[k - s] ^ (m[k - s] << s);
        for i in 1..s {
            if (a >> (s - 1 - i)) & 1 == 1 {
                val ^= m[k - i] << i;
            }
        }
        m[k] = val;
    }
    for k in 0..SOBOL_BITS {
        v[k] = m[k] << (SOBOL_BITS - 1 - k);
    }
    v
}

fn sobol(dims: usize, n: usize) -> Vec<Vec<f64>> {
    assert!(
        dims <= SOBOL_PARAMS.len() + 1,
        "Sobol supports up to {} dimensions",
        SOBOL_PARAMS.len() + 1
    );
    let directions: Vec<Vec<u64>> = (0..dims).map(sobol_directions).collect();
    let scale = 1.0 / (1u64 << SOBOL_BITS) as f64;
    let mut x = vec![0u64; dims];
    let mut out = Vec::with_capacity(n);
    // Gray-code construction; skip the all-zeros first point.
    for i in 0..n as u64 {
        let c = (i + 1).trailing_zeros() as usize;
        for d in 0..dims {
            x[d] ^= directions[d][c];
        }
        out.push(x.iter().map(|&xi| xi as f64 * scale).collect());
    }
    out
}

fn grid(dims: usize, n: usize) -> Vec<Vec<f64>> {
    // Levels per dimension: smallest k with k^dims >= n.
    let mut levels = 1usize;
    while levels.pow(dims as u32) < n {
        levels += 1;
    }
    let mut out = Vec::with_capacity(n);
    let mut idx = vec![0usize; dims];
    'outer: loop {
        let point: Vec<f64> = idx
            .iter()
            .map(|&i| {
                if levels == 1 {
                    0.5
                } else {
                    // Cell centers, not edges, so Int dims hit distinct bins.
                    (i as f64 + 0.5) / levels as f64
                }
            })
            .collect();
        out.push(point);
        if out.len() == n {
            break;
        }
        // Odometer increment.
        for digit in idx.iter_mut() {
            *digit += 1;
            if *digit < levels {
                continue 'outer;
            }
            *digit = 0;
        }
        break; // full grid exhausted before n (possible when levels^dims == n)
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Space;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn in_unit(points: &[Vec<f64>]) -> bool {
        points
            .iter()
            .all(|p| p.iter().all(|&x| (0.0..1.0).contains(&x) || x == 0.0))
    }

    #[test]
    fn all_designs_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for design in [
            InitialDesign::Random,
            InitialDesign::Lhs,
            InitialDesign::Halton,
            InitialDesign::Sobol,
            InitialDesign::Grid,
        ] {
            let pts = design.generate_unit(4, 50, &mut rng);
            assert_eq!(pts.len(), 50, "{design:?}");
            assert!(in_unit(&pts), "{design:?} out of unit cube");
        }
    }

    #[test]
    fn lhs_stratification_holds() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 40;
        let pts = lhs(3, n, &mut rng);
        for d in 0..3 {
            let mut strata: Vec<usize> = pts.iter().map(|p| (p[d] * n as f64) as usize).collect();
            strata.sort_unstable();
            let expect: Vec<usize> = (0..n).collect();
            assert_eq!(strata, expect, "dimension {d} not stratified");
        }
    }

    #[test]
    fn halton_low_discrepancy_beats_clumping() {
        // First coordinate in base 2 fills dyadic intervals evenly: among
        // 2^k consecutive points every length-2^-k interval gets exactly 1.
        let pts = halton(1, 64);
        for chunk in pts.chunks(8) {
            let mut bins = [0; 8];
            for p in chunk {
                bins[(p[0] * 8.0) as usize] += 1;
            }
            assert!(bins.iter().all(|&b| b == 1), "{bins:?}");
        }
    }

    #[test]
    fn sobol_first_points_match_reference() {
        // Classic 2-D Sobol sequence beginning (after skipping 0):
        // (0.5, 0.5), (0.75, 0.25), (0.25, 0.75), (0.375, 0.375), ...
        let pts = sobol(2, 4);
        let expect = [[0.5, 0.5], [0.75, 0.25], [0.25, 0.75], [0.375, 0.375]];
        for (p, e) in pts.iter().zip(expect.iter()) {
            for (a, b) in p.iter().zip(e.iter()) {
                assert!((a - b).abs() < 1e-12, "{pts:?}");
            }
        }
    }

    #[test]
    fn sobol_balance_in_each_dimension() {
        // We skip the all-zeros point, so the first 128 generated points
        // are indices 1..=128 of the digital net: balanced to within one
        // point per half in every dimension.
        let pts = sobol(5, 128);
        for d in 0..5 {
            let low = pts.iter().filter(|p| p[d] < 0.5).count() as i64;
            assert!((low - 64).abs() <= 1, "dimension {d}: {low}/128 low");
        }
    }

    #[test]
    fn grid_covers_levels() {
        let pts = grid(2, 9); // 3x3 grid
        assert_eq!(pts.len(), 9);
        let mut xs: Vec<i32> = pts.iter().map(|p| (p[0] * 3.0) as i32).collect();
        xs.sort_unstable();
        assert_eq!(xs, vec![0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn external_units_respect_space() {
        let space = Space::plantnet();
        let mut rng = StdRng::seed_from_u64(3);
        for design in [
            InitialDesign::Lhs,
            InitialDesign::Sobol,
            InitialDesign::Halton,
        ] {
            for p in design.generate(&space, 30, &mut rng) {
                assert!(space.contains(&p), "{design:?}: {p:?}");
            }
        }
    }

    #[test]
    fn lhs_on_integer_space_spreads_values() {
        // 41 LHS samples over http ∈ [20, 60] must hit many distinct values
        // (random sampling would collide much more).
        let space = Space::new().int("http", 20, 60);
        let mut rng = StdRng::seed_from_u64(11);
        let pts = InitialDesign::Lhs.generate(&space, 41, &mut rng);
        let distinct: std::collections::BTreeSet<i64> = pts.iter().map(|p| p[0] as i64).collect();
        assert_eq!(distinct.len(), 41, "LHS must hit every integer once");
    }

    #[test]
    fn from_name_parses() {
        assert_eq!(InitialDesign::from_name("lhs"), Some(InitialDesign::Lhs));
        assert_eq!(
            InitialDesign::from_name("sobol"),
            Some(InitialDesign::Sobol)
        );
        assert_eq!(InitialDesign::from_name("bogus"), None);
    }

    #[test]
    fn zero_points_is_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(InitialDesign::Lhs.generate_unit(3, 0, &mut rng).is_empty());
    }
}
