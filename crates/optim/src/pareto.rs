//! Multi-objective optimization: Pareto tooling and NSGA-II.
//!
//! Fig. 4 (right) frames continuum placement as "a single multi-objective
//! optimization problem (minimizing communication costs and end-to-end
//! latency)". Weighted scalarization (see [`crate::problem`]) finds one
//! trade-off at a time; NSGA-II recovers the whole front in one run.

use crate::space::{Point, Space};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `a` Pareto-dominates `b` when it is no worse in every objective and
/// strictly better in at least one (minimization).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices of the non-dominated members of `objectives`.
pub fn pareto_front(objectives: &[Vec<f64>]) -> Vec<usize> {
    (0..objectives.len())
        .filter(|&i| {
            !objectives
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && dominates(other, &objectives[i]))
        })
        .collect()
}

/// Fast non-dominated sort (NSGA-II): partition indices into fronts,
/// best (rank 0) first.
pub fn non_dominated_sort(objectives: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = objectives.len();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n]; // i dominates these
    let mut domination_count = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if dominates(&objectives[i], &objectives[j]) {
                dominated_by[i].push(j);
            } else if dominates(&objectives[j], &objectives[i]) {
                domination_count[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| domination_count[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated_by[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
    }
    fronts
}

/// Crowding distance of each member of one front (NSGA-II's diversity
/// measure; boundary points get `f64::INFINITY`).
pub fn crowding_distance(front: &[usize], objectives: &[Vec<f64>]) -> Vec<f64> {
    let m = objectives.first().map(|o| o.len()).unwrap_or(0);
    let k = front.len();
    let mut dist = vec![0.0; k];
    if k <= 2 {
        return vec![f64::INFINITY; k];
    }
    // `obj` indexes the inner objective vectors through `front`, not
    // `objectives` itself, so an iterator rewrite would obscure the access.
    #[allow(clippy::needless_range_loop)]
    for obj in 0..m {
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| {
            objectives[front[a]][obj]
                .partial_cmp(&objectives[front[b]][obj])
                .expect("NaN objective")
        });
        let lo = objectives[front[order[0]]][obj];
        let hi = objectives[front[order[k - 1]]][obj];
        dist[order[0]] = f64::INFINITY;
        dist[order[k - 1]] = f64::INFINITY;
        let span = hi - lo;
        if span <= 0.0 {
            continue;
        }
        for w in 1..k - 1 {
            let prev = objectives[front[order[w - 1]]][obj];
            let next = objectives[front[order[w + 1]]][obj];
            dist[order[w]] += (next - prev) / span;
        }
    }
    dist
}

/// One evaluated solution on the final front.
#[derive(Debug, Clone)]
pub struct ParetoSolution {
    /// The decision vector (external units).
    pub x: Point,
    /// Its objective values (minimization orientation).
    pub objectives: Vec<f64>,
}

/// NSGA-II configuration.
pub struct Nsga2 {
    rng: StdRng,
    /// Population size (even).
    pub pop_size: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Mutation step (unit-range fraction).
    pub mutation_sigma: f64,
}

impl Nsga2 {
    /// Defaults: population 60.
    pub fn new(seed: u64) -> Self {
        Nsga2 {
            rng: StdRng::seed_from_u64(seed),
            pop_size: 60,
            mutation_rate: 0.2,
            mutation_sigma: 0.1,
        }
    }

    /// Minimize all components of `f` simultaneously for `generations`
    /// generations; returns the final non-dominated set (deduplicated).
    pub fn minimize(
        &mut self,
        space: &Space,
        f: &mut dyn FnMut(&[f64]) -> Vec<f64>,
        generations: usize,
    ) -> Vec<ParetoSolution> {
        let dims = space.len();
        let pop_size = self.pop_size.max(4) & !1; // even
                                                  // Unit-coordinate population.
        let mut pop: Vec<Vec<f64>> = (0..pop_size)
            .map(|_| (0..dims).map(|_| self.rng.gen::<f64>()).collect())
            .collect();
        let mut objs: Vec<Vec<f64>> = pop.iter().map(|u| f(&space.from_unit(u))).collect();
        let n_obj = objs.first().map(|o| o.len()).unwrap_or(0);
        assert!(n_obj >= 1, "objective function returned no objectives");

        for _ in 0..generations {
            // Rank + crowding of the current population.
            let fronts = non_dominated_sort(&objs);
            let mut rank = vec![0usize; pop.len()];
            let mut crowd = vec![0.0f64; pop.len()];
            for (r, front) in fronts.iter().enumerate() {
                let d = crowding_distance(front, &objs);
                for (slot, &i) in front.iter().enumerate() {
                    rank[i] = r;
                    crowd[i] = d[slot];
                }
            }
            // Binary crowded-tournament selection + blend crossover +
            // Gaussian mutation to produce pop_size children.
            let mut children = Vec::with_capacity(pop_size);
            while children.len() < pop_size {
                let pick = |rng: &mut StdRng| {
                    let a = rng.gen_range(0..pop.len());
                    let b = rng.gen_range(0..pop.len());
                    if rank[a] < rank[b] || (rank[a] == rank[b] && crowd[a] > crowd[b]) {
                        a
                    } else {
                        b
                    }
                };
                let p1 = pick(&mut self.rng);
                let p2 = pick(&mut self.rng);
                let mut child: Vec<f64> = pop[p1]
                    .iter()
                    .zip(&pop[p2])
                    .map(|(&a, &b)| {
                        let w = self.rng.gen::<f64>();
                        a * w + b * (1.0 - w)
                    })
                    .collect();
                for g in child.iter_mut() {
                    if self.rng.gen::<f64>() < self.mutation_rate {
                        let step = self.mutation_sigma * 2.0 * (self.rng.gen::<f64>() - 0.5);
                        *g = (*g + step).clamp(0.0, 1.0);
                    }
                }
                children.push(child);
            }
            let child_objs: Vec<Vec<f64>> =
                children.iter().map(|u| f(&space.from_unit(u))).collect();

            // Environmental selection over parents ∪ children.
            pop.extend(children);
            objs.extend(child_objs);
            let fronts = non_dominated_sort(&objs);
            let mut keep: Vec<usize> = Vec::with_capacity(pop_size);
            for front in &fronts {
                if keep.len() + front.len() <= pop_size {
                    keep.extend_from_slice(front);
                } else {
                    // Fill the remainder by descending crowding distance.
                    let d = crowding_distance(front, &objs);
                    let mut order: Vec<usize> = (0..front.len()).collect();
                    order.sort_by(|&a, &b| d[b].partial_cmp(&d[a]).expect("crowding is not NaN"));
                    for &slot in order.iter().take(pop_size - keep.len()) {
                        keep.push(front[slot]);
                    }
                    break;
                }
            }
            pop = keep.iter().map(|&i| pop[i].clone()).collect();
            objs = keep.iter().map(|&i| objs[i].clone()).collect();
        }

        // Final front, deduplicated on sanitized decision vectors.
        let front = pareto_front(&objs);
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for &i in &front {
            let x = space.sanitize(&space.from_unit(&pop[i]));
            let key: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
            if seen.insert(key) {
                out.push(ParetoSolution {
                    objectives: f(&x),
                    x,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_relation() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // trade-off
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0])); // equal
    }

    #[test]
    fn front_extraction() {
        let objs = vec![
            vec![1.0, 4.0],
            vec![2.0, 2.0],
            vec![4.0, 1.0],
            vec![3.0, 3.0], // dominated by (2,2)
        ];
        let front = pareto_front(&objs);
        assert_eq!(front, vec![0, 1, 2]);
    }

    #[test]
    fn sort_ranks_layers() {
        let objs = vec![
            vec![1.0, 1.0], // rank 0, dominates all
            vec![2.0, 2.0], // rank 1
            vec![3.0, 3.0], // rank 2
            vec![2.0, 3.0], // rank 1.. wait (2,2) dominates (2,3)? yes -> rank 2
        ];
        let fronts = non_dominated_sort(&objs);
        assert_eq!(fronts[0], vec![0]);
        assert!(fronts[1].contains(&1));
        assert!(fronts.concat().len() == 4);
    }

    #[test]
    fn crowding_rewards_spread() {
        let objs = vec![
            vec![0.0, 10.0],
            vec![1.0, 5.0], // closer to its neighbours
            vec![2.0, 4.9],
            vec![10.0, 0.0],
        ];
        let front: Vec<usize> = vec![0, 1, 2, 3];
        let d = crowding_distance(&front, &objs);
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[3], f64::INFINITY);
        assert!(d[1] > 0.0 && d[2] > 0.0);
    }

    #[test]
    fn nsga2_recovers_schaffer_front() {
        // Schaffer N.1: f1 = x², f2 = (x-2)²; Pareto set is x ∈ [0, 2]
        // with f1 + f2 >= 2 and the front satisfying √f1 + √f2 = 2.
        let space = Space::new().real("x", -5.0, 5.0);
        let mut nsga = Nsga2::new(7);
        let mut f = |p: &[f64]| vec![p[0] * p[0], (p[0] - 2.0) * (p[0] - 2.0)];
        let front = nsga.minimize(&space, &mut f, 40);
        assert!(front.len() >= 10, "front too sparse: {}", front.len());
        for sol in &front {
            let x = sol.x[0];
            assert!(
                (-0.1..=2.1).contains(&x),
                "solution off the Pareto set: x = {x}"
            );
            let check = sol.objectives[0].sqrt() + sol.objectives[1].sqrt();
            assert!((check - 2.0).abs() < 0.15, "off the front: {check}");
        }
        // The front must span the trade-off, not collapse to one corner.
        let f1_min = front
            .iter()
            .map(|s| s.objectives[0])
            .fold(f64::INFINITY, f64::min);
        let f1_max = front
            .iter()
            .map(|s| s.objectives[0])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(f1_min < 0.3, "missing the f1-optimal corner: {f1_min}");
        assert!(f1_max > 2.0, "missing the f2-optimal corner: {f1_max}");
    }

    #[test]
    fn nsga2_handles_integer_spaces() {
        // Two-objective knapsack-ish toy on an integer grid.
        let space = Space::new().int("a", 0, 10).int("b", 0, 10);
        let mut nsga = Nsga2::new(3);
        let mut f = |p: &[f64]| vec![p[0] + p[1], (10.0 - p[0]) + (10.0 - p[1])];
        let front = nsga.minimize(&space, &mut f, 15);
        for sol in &front {
            assert!(space.contains(&sol.x), "{:?}", sol.x);
        }
    }
}
