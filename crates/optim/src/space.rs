//! Search-space definition.
//!
//! A [`Space`] is an ordered list of named [`Dimension`]s. Points are
//! `Vec<f64>` in *external* units (integers appear as whole floats,
//! categoricals as choice indices); [`Space::to_unit`]/[`Space::from_unit`]
//! map to the normalized hypercube the samplers and surrogates work in.

use rand::Rng;

/// A candidate configuration: one `f64` per dimension, in external units.
pub type Point = Vec<f64>;

/// One search-space dimension.
#[derive(Debug, Clone, PartialEq)]
pub enum Dimension {
    /// Integer in `[lo, hi]`, both inclusive (the paper's `tune.randint`
    /// draws `[lo, hi)`; we use inclusive bounds like Eq. 2 states them).
    Int {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// Real in `[lo, hi]`.
    Real {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// One of a list of labels, encoded as its index.
    Categorical {
        /// The available choices.
        choices: Vec<String>,
    },
}

impl Dimension {
    /// Number of distinct values (`None` for a continuum).
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            Dimension::Int { lo, hi } => Some((hi - lo + 1) as usize),
            Dimension::Real { .. } => None,
            Dimension::Categorical { choices } => Some(choices.len()),
        }
    }

    /// Map a unit-interval coordinate to an external value.
    pub fn from_unit(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        match self {
            Dimension::Int { lo, hi } => {
                let span = (hi - lo + 1) as f64;
                let v = *lo as f64 + (u * span).floor();
                v.min(*hi as f64)
            }
            Dimension::Real { lo, hi } => lo + u * (hi - lo),
            Dimension::Categorical { choices } => {
                let span = choices.len() as f64;
                (u * span).floor().min(span - 1.0)
            }
        }
    }

    /// Map an external value to the unit interval (inverse of
    /// [`Dimension::from_unit`] up to within-bin position).
    pub fn to_unit(&self, v: f64) -> f64 {
        match self {
            Dimension::Int { lo, hi } => {
                if hi == lo {
                    return 0.5;
                }
                // Center of the value's bin.
                let span = (hi - lo + 1) as f64;
                ((v - *lo as f64) + 0.5) / span
            }
            Dimension::Real { lo, hi } => {
                if hi == lo {
                    0.5
                } else {
                    ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
                }
            }
            Dimension::Categorical { choices } => {
                let span = choices.len() as f64;
                (v + 0.5) / span
            }
        }
    }

    /// Clamp/round an external value into the dimension's domain.
    pub fn sanitize(&self, v: f64) -> f64 {
        match self {
            Dimension::Int { lo, hi } => (v.round()).clamp(*lo as f64, *hi as f64),
            Dimension::Real { lo, hi } => v.clamp(*lo, *hi),
            Dimension::Categorical { choices } => v.round().clamp(0.0, (choices.len() - 1) as f64),
        }
    }

    /// Whether an external value lies in the domain (integers must be
    /// whole).
    pub fn contains(&self, v: f64) -> bool {
        match self {
            Dimension::Int { lo, hi } => v.fract() == 0.0 && v >= *lo as f64 && v <= *hi as f64,
            Dimension::Real { lo, hi } => v >= *lo && v <= *hi,
            Dimension::Categorical { choices } => {
                v.fract() == 0.0 && v >= 0.0 && v < choices.len() as f64
            }
        }
    }
}

/// An ordered, named set of dimensions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Space {
    names: Vec<String>,
    dims: Vec<Dimension>,
}

impl Space {
    /// Empty space; add dimensions with the builder methods.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an integer dimension `[lo, hi]` (inclusive).
    pub fn int(mut self, name: &str, lo: i64, hi: i64) -> Self {
        assert!(hi >= lo, "{name}: hi < lo");
        self.push(name, Dimension::Int { lo, hi });
        self
    }

    /// Add a real dimension `[lo, hi]`.
    pub fn real(mut self, name: &str, lo: f64, hi: f64) -> Self {
        assert!(hi >= lo, "{name}: hi < lo");
        self.push(name, Dimension::Real { lo, hi });
        self
    }

    /// Add a categorical dimension.
    pub fn categorical(mut self, name: &str, choices: &[&str]) -> Self {
        assert!(!choices.is_empty(), "{name}: empty choices");
        self.push(
            name,
            Dimension::Categorical {
                choices: choices.iter().map(|s| s.to_string()).collect(),
            },
        );
        self
    }

    fn push(&mut self, name: &str, dim: Dimension) {
        assert!(
            !self.names.iter().any(|n| n == name),
            "duplicate dimension `{name}`"
        );
        self.names.push(name.to_string());
        self.dims.push(dim);
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// True when the space has no dimensions.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Dimension names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The dimensions in order.
    pub fn dims(&self) -> &[Dimension] {
        &self.dims
    }

    /// Index of a named dimension.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Value of a named dimension within a point.
    pub fn value_of(&self, point: &[f64], name: &str) -> Option<f64> {
        self.index_of(name).map(|i| point[i])
    }

    /// Uniform random point (external units).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        self.dims
            .iter()
            .map(|d| d.from_unit(rng.gen::<f64>()))
            .collect()
    }

    /// Map a unit-hypercube point to external units.
    pub fn from_unit(&self, unit: &[f64]) -> Point {
        assert_eq!(unit.len(), self.len(), "dimension mismatch");
        self.dims
            .iter()
            .zip(unit)
            .map(|(d, &u)| d.from_unit(u))
            .collect()
    }

    /// Map an external point to the unit hypercube.
    pub fn to_unit(&self, point: &[f64]) -> Vec<f64> {
        assert_eq!(point.len(), self.len(), "dimension mismatch");
        self.dims
            .iter()
            .zip(point)
            .map(|(d, &v)| d.to_unit(v))
            .collect()
    }

    /// Clamp/round a point into the space.
    pub fn sanitize(&self, point: &[f64]) -> Point {
        assert_eq!(point.len(), self.len(), "dimension mismatch");
        self.dims
            .iter()
            .zip(point)
            .map(|(d, &v)| d.sanitize(v))
            .collect()
    }

    /// Whether a point lies in the space.
    pub fn contains(&self, point: &[f64]) -> bool {
        point.len() == self.len() && self.dims.iter().zip(point).all(|(d, &v)| d.contains(v))
    }

    /// The Pl@ntNet search space of Eq. 2: `http`, `download`, `simsearch`
    /// in `[20, 60]` and `extract` in `[3, 9]`.
    pub fn plantnet() -> Space {
        Space::new()
            .int("http", 20, 60)
            .int("download", 20, 60)
            .int("simsearch", 20, 60)
            .int("extract", 3, 9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builder_and_lookup() {
        let s = Space::plantnet();
        assert_eq!(s.len(), 4);
        assert_eq!(s.index_of("extract"), Some(3));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.value_of(&[40.0, 40.0, 40.0, 7.0], "extract"), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "duplicate dimension")]
    fn duplicate_names_rejected() {
        let _ = Space::new().int("x", 0, 1).real("x", 0.0, 1.0);
    }

    #[test]
    fn int_unit_mapping_covers_all_values() {
        let d = Dimension::Int { lo: 3, hi: 9 };
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..700 {
            let u = i as f64 / 700.0;
            seen.insert(d.from_unit(u) as i64);
        }
        assert_eq!(
            seen.into_iter().collect::<Vec<_>>(),
            vec![3, 4, 5, 6, 7, 8, 9]
        );
        assert_eq!(d.from_unit(1.0), 9.0); // u = 1 stays in range
    }

    #[test]
    fn unit_roundtrip_int() {
        let d = Dimension::Int { lo: 20, hi: 60 };
        for v in [20.0, 37.0, 60.0] {
            let u = d.to_unit(v);
            assert_eq!(d.from_unit(u), v);
        }
    }

    #[test]
    fn unit_roundtrip_real() {
        let d = Dimension::Real { lo: -1.0, hi: 3.0 };
        for v in [-1.0, 0.0, 2.9, 3.0] {
            assert!((d.from_unit(d.to_unit(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn categorical_encoding() {
        let d = Dimension::Categorical {
            choices: vec!["a".into(), "b".into(), "c".into()],
        };
        assert_eq!(d.cardinality(), Some(3));
        assert_eq!(d.from_unit(0.0), 0.0);
        assert_eq!(d.from_unit(0.99), 2.0);
        assert!(d.contains(1.0));
        assert!(!d.contains(3.0));
        assert!(!d.contains(0.5));
    }

    #[test]
    fn sanitize_rounds_and_clamps() {
        let s = Space::plantnet();
        let p = s.sanitize(&[19.2, 60.7, 40.4, 9.9]);
        assert_eq!(p, vec![20.0, 60.0, 40.0, 9.0]);
        assert!(s.contains(&p));
    }

    #[test]
    fn samples_always_in_space() {
        let s = Space::new()
            .int("i", -5, 5)
            .real("r", 0.0, 2.0)
            .categorical("c", &["x", "y"]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let p = s.sample(&mut rng);
            assert!(s.contains(&p), "{p:?}");
        }
    }

    #[test]
    fn plantnet_space_matches_eq2() {
        let s = Space::plantnet();
        assert!(s.contains(&[20.0, 60.0, 20.0, 3.0]));
        assert!(s.contains(&[40.0, 40.0, 40.0, 7.0])); // baseline
        assert!(!s.contains(&[61.0, 40.0, 40.0, 7.0]));
        assert!(!s.contains(&[40.0, 40.0, 40.0, 2.0]));
    }
}
