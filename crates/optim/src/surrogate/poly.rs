//! Polynomial least-squares regression.
//!
//! Degree-2 with all pairwise interactions: features
//! `[1, xᵢ, xᵢ·xⱼ (i ≤ j)]`, solved by Householder QR. A classic cheap
//! surrogate for smooth response surfaces (and the one the paper lists as
//! "Polynomial Regression").

use super::Surrogate;
use crate::linalg::{lstsq, Matrix};

/// Quadratic response-surface model.
pub struct Polynomial {
    degree: u32,
    coeffs: Vec<f64>,
    dims: usize,
    residual_std: f64,
    fitted: bool,
}

impl Polynomial {
    /// Degree-1 (linear) model.
    pub fn linear() -> Self {
        Polynomial {
            degree: 1,
            coeffs: Vec::new(),
            dims: 0,
            residual_std: 0.0,
            fitted: false,
        }
    }

    /// Degree-2 model with interactions (the default surrogate).
    pub fn quadratic() -> Self {
        Polynomial {
            degree: 2,
            ..Polynomial::linear()
        }
    }

    /// Expand a point into the feature vector.
    fn features(&self, x: &[f64]) -> Vec<f64> {
        let mut f = Vec::with_capacity(1 + x.len() * (x.len() + 3) / 2);
        f.push(1.0);
        f.extend_from_slice(x);
        if self.degree >= 2 {
            for i in 0..x.len() {
                for j in i..x.len() {
                    f.push(x[i] * x[j]);
                }
            }
        }
        f
    }

    /// Number of model coefficients for `dims` inputs.
    pub fn n_coeffs(&self, dims: usize) -> usize {
        let base = 1 + dims;
        if self.degree >= 2 {
            base + dims * (dims + 1) / 2
        } else {
            base
        }
    }
}

impl Surrogate for Polynomial {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(!x.is_empty(), "cannot fit on empty data");
        self.dims = x[0].len();
        let p = self.n_coeffs(self.dims);
        if x.len() < p {
            // Under-determined: fall back to the constant model rather
            // than fabricating wiggles from too few points.
            let mean = y.iter().sum::<f64>() / y.len() as f64;
            self.coeffs = vec![0.0; p];
            self.coeffs[0] = mean;
            let mse = y.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / y.len() as f64;
            self.residual_std = mse.sqrt();
            self.fitted = true;
            return;
        }
        let mut data = Vec::with_capacity(x.len() * p);
        for xi in x {
            data.extend(self.features(xi));
        }
        let a = Matrix::from_vec(x.len(), p, data);
        self.coeffs = lstsq(&a, y);
        self.fitted = true;
        let sse: f64 = x
            .iter()
            .zip(y)
            .map(|(xi, &yi)| (self.predict(xi).0 - yi).powi(2))
            .sum();
        self.residual_std = (sse / x.len() as f64).sqrt();
    }

    fn predict(&self, x: &[f64]) -> (f64, f64) {
        assert!(self.fitted, "predict before fit");
        let f = self.features(x);
        let mean: f64 = f.iter().zip(&self.coeffs).map(|(a, b)| a * b).sum();
        (mean, self.residual_std)
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_exact_quadratic() {
        // y = 2 + 3x₀ - x₁ + 0.5x₀² + x₀x₁
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<Vec<f64>> = (0..50).map(|_| vec![rng.gen(), rng.gen()]).collect();
        let f = |p: &[f64]| 2.0 + 3.0 * p[0] - p[1] + 0.5 * p[0] * p[0] + p[0] * p[1];
        let y: Vec<f64> = x.iter().map(|p| f(p)).collect();
        let mut m = Polynomial::quadratic();
        m.fit(&x, &y);
        let (pred, std) = m.predict(&[0.3, 0.8]);
        assert!((pred - f(&[0.3, 0.8])).abs() < 1e-8, "{pred}");
        assert!(std < 1e-6);
    }

    #[test]
    fn linear_model_ignores_curvature_gracefully() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| p[0] * p[0]).collect();
        let mut m = Polynomial::linear();
        m.fit(&x, &y);
        // Best linear fit of x² on [0,1] has visible residual.
        assert!(m.predict(&[0.5]).1 > 0.01);
    }

    #[test]
    fn underdetermined_falls_back_to_mean() {
        // 3 points, quadratic in 2-D needs 6 coefficients.
        let x = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        let y = vec![1.0, 2.0, 3.0];
        let mut m = Polynomial::quadratic();
        m.fit(&x, &y);
        let (pred, _) = m.predict(&[0.5, 0.5]);
        assert!((pred - 2.0).abs() < 1e-9);
    }

    #[test]
    fn coeff_counts() {
        assert_eq!(Polynomial::linear().n_coeffs(4), 5);
        assert_eq!(Polynomial::quadratic().n_coeffs(4), 15);
        assert_eq!(Polynomial::quadratic().n_coeffs(1), 3);
    }
}
