//! Gradient-boosted regression trees (squared loss).
//!
//! Stage-wise fitting of shallow CART trees on the residuals. Uncertainty:
//! the residual standard deviation after the final stage — a cruder
//! estimate than the quantile-ensemble trick scikit-optimize uses, but
//! sufficient for acquisition ranking (documented substitution).

use super::tree::{RegressionTree, TreeParams};
use super::Surrogate;

/// Gradient boosting machine for regression.
pub struct Gbrt {
    n_estimators: usize,
    learning_rate: f64,
    seed: u64,
    base: f64,
    stages: Vec<RegressionTree>,
    residual_std: f64,
}

impl Gbrt {
    /// `n_estimators` depth-3 trees with the given shrinkage.
    pub fn new(n_estimators: usize, learning_rate: f64, seed: u64) -> Self {
        assert!(n_estimators > 0, "need at least one stage");
        assert!(
            learning_rate > 0.0 && learning_rate <= 1.0,
            "learning rate must be in (0, 1]"
        );
        Gbrt {
            n_estimators,
            learning_rate,
            seed,
            base: 0.0,
            stages: Vec::new(),
            residual_std: 0.0,
        }
    }

    fn raw_predict(&self, x: &[f64]) -> f64 {
        let mut acc = self.base;
        for tree in &self.stages {
            acc += self.learning_rate * tree.predict(x).0;
        }
        acc
    }
}

impl Surrogate for Gbrt {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(!x.is_empty(), "cannot fit on empty data");
        self.stages.clear();
        self.base = y.iter().sum::<f64>() / y.len() as f64;
        let mut residual: Vec<f64> = y.iter().map(|&v| v - self.base).collect();
        let params = TreeParams {
            max_depth: 3,
            min_samples_leaf: 2,
            ..TreeParams::cart()
        };
        for stage in 0..self.n_estimators {
            let mut tree = RegressionTree::new(params, self.seed ^ (stage as u64) << 1);
            tree.fit(x, &residual);
            for (r, xi) in residual.iter_mut().zip(x) {
                *r -= self.learning_rate * tree.predict(xi).0;
            }
            self.stages.push(tree);
            // Early stop once residuals vanish (pure training fit).
            let sse: f64 = residual.iter().map(|r| r * r).sum();
            if sse / x.len() as f64 <= 1e-12 {
                break;
            }
        }
        let mse: f64 = residual.iter().map(|r| r * r).sum::<f64>() / x.len() as f64;
        self.residual_std = mse.sqrt();
    }

    fn predict(&self, x: &[f64]) -> (f64, f64) {
        assert!(!self.stages.is_empty(), "predict before fit");
        (self.raw_predict(x), self.residual_std)
    }

    fn is_fitted(&self) -> bool {
        !self.stages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fits_linear_function_closely() {
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<Vec<f64>> = (0..200).map(|_| vec![rng.gen::<f64>()]).collect();
        let y: Vec<f64> = x.iter().map(|p| 3.0 * p[0] - 1.0).collect();
        let mut m = Gbrt::new(200, 0.1, 0);
        m.fit(&x, &y);
        for probe in [0.1, 0.5, 0.9] {
            let (pred, _) = m.predict(&[probe]);
            assert!((pred - (3.0 * probe - 1.0)).abs() < 0.1, "{probe}: {pred}");
        }
    }

    #[test]
    fn boosting_reduces_residuals_with_stages() {
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<Vec<f64>> = (0..150).map(|_| vec![rng.gen(), rng.gen()]).collect();
        let y: Vec<f64> = x.iter().map(|p| (p[0] * 4.0).sin() + p[1]).collect();
        let mut few = Gbrt::new(5, 0.1, 0);
        let mut many = Gbrt::new(150, 0.1, 0);
        few.fit(&x, &y);
        many.fit(&x, &y);
        assert!(
            many.predict(&[0.5, 0.5]).1 < few.predict(&[0.5, 0.5]).1,
            "more stages must shrink the residual std"
        );
    }

    #[test]
    fn constant_target_is_base_value() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![4.0; 10];
        let mut m = Gbrt::new(50, 0.1, 0);
        m.fit(&x, &y);
        let (pred, std) = m.predict(&[100.0]);
        assert!((pred - 4.0).abs() < 1e-9);
        assert!(std < 1e-6);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn invalid_learning_rate_rejected() {
        Gbrt::new(10, 0.0, 0);
    }
}
