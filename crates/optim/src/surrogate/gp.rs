//! Gaussian-process regression (Kriging).
//!
//! Zero-mean GP on standardized targets with an RBF or Matérn 5/2 kernel.
//! The length-scale is set by the median-heuristic at fit time (median
//! pairwise distance of the training inputs), which works well on the unit
//! hypercube the optimizer feeds us and avoids a hyperparameter search.

use super::Surrogate;
use crate::linalg::{cholesky, solve_lower, Matrix};

/// Covariance kernel family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Squared exponential: `exp(-r² / (2ℓ²))`.
    Rbf,
    /// Matérn ν=5/2: `(1 + √5 r/ℓ + 5r²/(3ℓ²)) exp(-√5 r/ℓ)`.
    Matern52,
}

impl Kernel {
    fn eval(&self, r: f64, lengthscale: f64) -> f64 {
        let s = r / lengthscale;
        match self {
            Kernel::Rbf => (-0.5 * s * s).exp(),
            Kernel::Matern52 => {
                let a = 5.0_f64.sqrt() * s;
                (1.0 + a + a * a / 3.0) * (-a).exp()
            }
        }
    }
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Gaussian-process surrogate.
pub struct GaussianProcess {
    kernel: Kernel,
    noise: f64,
    lengthscale: f64,
    x_train: Vec<Vec<f64>>,
    chol: Option<Matrix>,
    alpha: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

impl GaussianProcess {
    /// GP with the given kernel and observation-noise variance.
    pub fn new(kernel: Kernel, noise: f64) -> Self {
        assert!(noise >= 0.0, "noise must be non-negative");
        GaussianProcess {
            kernel,
            noise,
            lengthscale: 1.0,
            x_train: Vec::new(),
            chol: None,
            alpha: Vec::new(),
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    /// The length-scale chosen at fit time.
    pub fn lengthscale(&self) -> f64 {
        self.lengthscale
    }

    fn median_heuristic(x: &[Vec<f64>]) -> f64 {
        let mut dists = Vec::new();
        for i in 0..x.len() {
            for j in i + 1..x.len() {
                let d = dist(&x[i], &x[j]);
                if d > 0.0 {
                    dists.push(d);
                }
            }
        }
        if dists.is_empty() {
            return 1.0;
        }
        dists.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
        dists[dists.len() / 2]
    }
}

impl Surrogate for GaussianProcess {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(!x.is_empty(), "cannot fit on empty data");
        let n = x.len();
        self.x_train = x.to_vec();
        self.lengthscale = Self::median_heuristic(x);

        // Standardize targets so kernel amplitude 1 is appropriate.
        self.y_mean = y.iter().sum::<f64>() / n as f64;
        let var = y.iter().map(|v| (v - self.y_mean).powi(2)).sum::<f64>() / n as f64;
        self.y_std = if var > 1e-24 { var.sqrt() } else { 1.0 };
        let y_norm: Vec<f64> = y.iter().map(|v| (v - self.y_mean) / self.y_std).collect();

        // K + (noise + jitter) I, escalating jitter until SPD.
        let mut jitter = 1e-10;
        let l = loop {
            let mut k = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..=i {
                    let v = self.kernel.eval(dist(&x[i], &x[j]), self.lengthscale);
                    k[(i, j)] = v;
                    k[(j, i)] = v;
                }
                k[(i, i)] += self.noise + jitter;
            }
            match cholesky(&k) {
                Ok(l) => break l,
                Err(_) => {
                    jitter *= 100.0;
                    assert!(jitter < 1.0, "kernel matrix irreparably ill-conditioned");
                }
            }
        };
        // alpha = K⁻¹ y via the factor.
        let z = solve_lower(&l, &y_norm);
        self.alpha = crate::linalg::solve_upper_t(&l, &z);
        self.chol = Some(l);
    }

    fn predict(&self, x: &[f64]) -> (f64, f64) {
        let l = self.chol.as_ref().expect("predict before fit");
        let k_star: Vec<f64> = self
            .x_train
            .iter()
            .map(|xi| self.kernel.eval(dist(xi, x), self.lengthscale))
            .collect();
        let mean_norm: f64 = k_star.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        // var = k(x,x) - vᵀv with v = L⁻¹ k*.
        let v = solve_lower(l, &k_star);
        let var_norm = (1.0 - v.iter().map(|t| t * t).sum::<f64>()).max(0.0);
        (
            mean_norm * self.y_std + self.y_mean,
            var_norm.sqrt() * self.y_std,
        )
    }

    fn is_fitted(&self) -> bool {
        self.chol.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points() {
        let x = grid_1d(8);
        let y: Vec<f64> = x.iter().map(|p| (p[0] * 5.0).sin()).collect();
        for kernel in [Kernel::Rbf, Kernel::Matern52] {
            let mut gp = GaussianProcess::new(kernel, 1e-8);
            gp.fit(&x, &y);
            for (xi, &yi) in x.iter().zip(&y) {
                let (m, s) = gp.predict(xi);
                assert!((m - yi).abs() < 1e-3, "{kernel:?}: {m} vs {yi}");
                assert!(s < 0.05, "{kernel:?}: training std {s}");
            }
        }
    }

    #[test]
    fn uncertainty_grows_between_points() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0.0, 1.0];
        let mut gp = GaussianProcess::new(Kernel::Rbf, 1e-8);
        gp.fit(&x, &y);
        let (_, s_at) = gp.predict(&[0.0]);
        let (_, s_mid) = gp.predict(&[0.5]);
        assert!(s_mid > s_at, "mid {s_mid} <= at {s_at}");
    }

    #[test]
    fn mean_reverts_far_from_data() {
        let x = grid_1d(5);
        let y = vec![10.0, 10.2, 9.8, 10.1, 9.9];
        let mut gp = GaussianProcess::new(Kernel::Rbf, 1e-6);
        gp.fit(&x, &y);
        // Far away, prediction reverts to the target mean (~10).
        let (m, s) = gp.predict(&[100.0]);
        assert!((m - 10.0).abs() < 0.2, "far mean {m}");
        assert!(s > 0.1, "far std {s}");
    }

    #[test]
    fn duplicate_points_need_jitter_and_survive() {
        let x = vec![vec![0.5], vec![0.5], vec![0.7]];
        let y = vec![1.0, 1.0, 2.0];
        let mut gp = GaussianProcess::new(Kernel::Rbf, 0.0);
        gp.fit(&x, &y); // must not panic despite singular K
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 1.0).abs() < 0.3, "{m}");
    }

    #[test]
    fn matern_is_rougher_than_rbf() {
        // Matérn 5/2 at moderate distance has lower covariance than RBF
        // with the same lengthscale.
        let k_rbf = Kernel::Rbf.eval(1.0, 1.0);
        let k_mat = Kernel::Matern52.eval(1.0, 1.0);
        assert!(k_mat < k_rbf + 1e-9);
        // Both tend to 1 at distance 0.
        assert!((Kernel::Rbf.eval(0.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((Kernel::Matern52.eval(0.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lengthscale_uses_median_distance() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0.0, 1.0, 2.0, 3.0];
        let mut gp = GaussianProcess::new(Kernel::Rbf, 1e-6);
        gp.fit(&x, &y);
        // Pairwise distances: 1,1,1,2,2,3 -> median ~2.
        assert!((gp.lengthscale() - 2.0).abs() < 1e-9);
    }
}
